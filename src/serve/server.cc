#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>

#include "common/logging.h"
#include "common/threadname.h"
#include "serve/chaos.h"
#include "store/store.h"
#include "trace/tracer.h"

namespace mixgemm
{

namespace
{

/**
 * Dry-run backend for graph registration: produces all-zero
 * accumulators (enough to propagate shapes through the graph) while
 * summing a precision-weighted MAC count, m*n*k*bwa*bwb — narrower
 * operands pack more elements per μ-vector, so a coarser ladder rung
 * must model as proportionally *faster* in virtual time (that speedup
 * is the entire point of degrading). The unit is "8x8-equivalent MACs"
 * after dividing by 64.
 */
class MacCountingBackend final : public GemmBackend
{
  public:
    std::vector<int64_t> gemm(std::span<const int32_t>,
                              std::span<const int32_t>, uint64_t m,
                              uint64_t n, uint64_t k,
                              const DataSizeConfig &config) override
    {
        cost_ += m * n * k * config.bwa * config.bwb;
        raw_ += m * n * k;
        return std::vector<int64_t>(m * n, 0);
    }

    std::string name() const override { return "mac-counting"; }

    /** Modeled cost in 8x8-equivalent MACs. */
    uint64_t equivalentMacs() const { return cost_ / 64; }

    /** Unweighted m*n*k sum — the base the analytic lazy-rung cost
     * model scales by a_bits * w_bits / 64. */
    uint64_t rawMacs() const { return raw_; }

  private:
    uint64_t cost_ = 0;
    uint64_t raw_ = 0;
};

} // namespace

InferenceServer::InferenceServer(ServerOptions options)
    : options_(std::move(options)),
      clock_(options_.virtual_clock
                 ? static_cast<const Clock *>(options_.virtual_clock)
                 : (options_.clock ? options_.clock
                                   : &MonotonicClock::instance())),
      queue_(options_.queue_capacity),
      retry_budget_(options_.retry_budget)
{
    if (options_.virtual_clock && options_.workers != 0)
        fatal("InferenceServer: virtual-time mode requires workers = 0 "
              "(pump mode); threaded workers would race the scripted "
              "clock");
    // Pin the chaos window's origin to server start so a windowed
    // scenario measures run time, not absolute wall nanoseconds.
    if (options_.chaos)
        options_.chaos->armEpoch(clock_->nowNs());
    if (options_.tenancy.enabled) {
        tenants_ = std::make_unique<TenantRegistry>(options_.tenancy);
        sched_ = std::make_unique<TenantScheduler<Pending>>(
            options_.queue_capacity, options_.tenancy.quantum);
        // Configured tenants get their lanes up front, in registry id
        // order, so lane indices never depend on traffic order.
        for (uint32_t id = 0; id < tenants_->count(); ++id) {
            const TenantState &state = tenants_->state(id);
            sched_->ensureLane(id, state.policy.weight,
                               state.policy.max_queue);
        }
        stats_.tenant_count = tenants_->count();
    }
    if (options_.workers == 0) {
        pump_slot_ = std::make_unique<WorkerSlot>();
        return;
    }
    slots_.reserve(options_.workers);
    for (unsigned w = 0; w < options_.workers; ++w)
        slots_.push_back(std::make_unique<WorkerSlot>());
    workers_.reserve(options_.workers);
    for (unsigned w = 0; w < options_.workers; ++w)
        workers_.emplace_back([this, w] { workerMain(w); });
    if (options_.watchdog_timeout_ns > 0 && options_.watchdog_poll_ns > 0)
        watchdog_ = std::thread([this] { watchdogMain(); });
}

InferenceServer::~InferenceServer()
{
    shutdown();
}

std::unique_ptr<MixGemmBackend>
InferenceServer::makeBackend() const
{
    auto backend = std::make_unique<MixGemmBackend>(
        options_.backend_threads, options_.kernel_mode);
    backend->setFaultPolicy(options_.fault_policy);
    backend->setAbftMaxRetries(options_.abft_max_retries);
    backend->setFaultInjector(options_.fault_injector);
    backend->attachTraceSession(options_.session);
    return backend;
}

Expected<uint64_t>
InferenceServer::registerGraph(std::string name,
                               std::vector<TierSpec> ladder,
                               std::vector<size_t> input_shape)
{
    if (ladder.empty())
        return Status::invalidArgument(
            strCat("registerGraph('", name, "'): empty ladder"));
    if (input_shape.empty())
        return Status::invalidArgument(
            strCat("registerGraph('", name, "'): empty input shape"));
    for (const size_t dim : input_shape)
        if (dim == 0 || dim > (1u << 16))
            return Status::invalidArgument(
                strCat("registerGraph('", name, "'): input dimension ",
                       dim, " out of range"));

    if (ladder[0].lazy())
        return Status::invalidArgument(
            strCat("registerGraph('", name, "'): rung 0 must be eager "
                   "— it is the always-available fallback and "
                   "calibrates the virtual-time cost model"));
    for (size_t t = 0; t < ladder.size(); ++t) {
        if (ladder[t].lazy() &&
            (ladder[t].a_bits < 2 || ladder[t].a_bits > 8 ||
             ladder[t].w_bits < 2 || ladder[t].w_bits > 8))
            return Status::invalidArgument(
                strCat("registerGraph('", name, "') tier ", t,
                       ": lazy-rung precision a", ladder[t].a_bits,
                       "-w", ladder[t].w_bits,
                       " outside the supported [2, 8]"));
    }

    // Dry-run every *eager* rung once: catches a ladder/shape mismatch
    // at registration (where the operator can act on it) instead of at
    // the first request, and measures the per-rung MAC cost that
    // virtual-time mode turns into modeled service durations. Lazy
    // rungs deliberately run nothing here — not paying their build and
    // pack cost until first use is their whole point — and get the
    // analytic cost raw_macs * a_bits * w_bits / 64, fixed at
    // registration so virtual-time dynamics stay deterministic.
    auto graph = std::make_unique<RegisteredGraph>();
    graph->tier_macs.reserve(ladder.size());
    Tensor<double> probe(input_shape);
    for (size_t t = 0; t < ladder.size(); ++t) {
        if (ladder[t].lazy()) {
            graph->tier_macs.push_back(graph->raw_macs *
                                       ladder[t].a_bits *
                                       ladder[t].w_bits / 64);
            continue;
        }
        MacCountingBackend counter;
        try {
            Expected<std::vector<double>> out =
                ladder[t].graph.tryRun(probe, counter);
            if (!out.ok())
                return out.status();
        } catch (const std::exception &e) {
            return Status::invalidArgument(
                strCat("registerGraph('", name, "') tier ", t, " ('",
                       ladder[t].label, "') rejects the input shape: ",
                       e.what()));
        }
        graph->tier_macs.push_back(counter.equivalentMacs());
        if (t == 0)
            graph->raw_macs = counter.rawMacs();
    }
    graph->name = std::move(name);
    graph->ladder = std::move(ladder);
    graph->input_shape = std::move(input_shape);

    // Residency slots: eager rungs move in now (and get their packed
    // weights from the store, pack-once / mmap-thereafter); lazy slots
    // stay empty until first use.
    const size_t rung_count = graph->ladder.size();
    graph->rungs.resize(rung_count);
    graph->rung_packs.resize(rung_count);
    graph->rung_bytes.assign(rung_count, 0);
    graph->rung_last_use.assign(rung_count, 0);
    for (size_t t = 0; t < rung_count; ++t) {
        TierSpec &tier = graph->ladder[t];
        if (tier.lazy())
            continue;
        auto resident = std::make_shared<const QuantizedGraph>(
            std::move(tier.graph));
        tier.graph = QuantizedGraph();
        if (options_.weight_store) {
            auto model = options_.weight_store->load(*resident);
            if (model.ok()) {
                auto index = PackedModelIndex::build(*model, *resident);
                if (index.ok())
                    graph->rung_packs[t] = *index;
                else
                    warn(strCat("registerGraph('", graph->name,
                                "') tier ", t, ": ",
                                index.status().toString()));
            } else {
                warn(strCat("registerGraph('", graph->name, "') tier ",
                            t, ": ", model.status().toString()));
            }
        }
        graph->rungs[t] = std::move(resident);
    }

    {
        std::lock_guard<std::mutex> rung_lock(rung_mutex_);
        rung_registry_.push_back(graph.get());
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t id = graphs_.size();
    const unsigned deepest =
        static_cast<unsigned>(graph->ladder.size()) - 1;
    graphs_.push_back(std::move(graph));
    max_level_ = std::max(max_level_, deepest);
    stats_.completed_by_tier.resize(max_level_ + 1, 0);
    return id;
}

Expected<uint64_t>
InferenceServer::reloadGraph(uint64_t id, std::vector<TierSpec> ladder)
{
    RegisteredGraph *graph = nullptr;
    std::vector<size_t> input_shape;
    std::string name;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (id >= graphs_.size())
            return Status::notFound(
                strCat("reloadGraph: unknown graph id ", id));
        graph = graphs_[id].get();
        input_shape = graph->input_shape; // immutable after register
        name = graph->name;
    }

    // Validation and dry runs mirror registerGraph and happen outside
    // every server lock: building and packing the new ladder must not
    // stall admission or execution of in-flight traffic.
    if (ladder.empty())
        return Status::invalidArgument(
            strCat("reloadGraph('", name, "'): empty ladder"));
    if (ladder[0].lazy())
        return Status::invalidArgument(
            strCat("reloadGraph('", name, "'): rung 0 must be eager"));
    for (size_t t = 0; t < ladder.size(); ++t) {
        if (ladder[t].lazy() &&
            (ladder[t].a_bits < 2 || ladder[t].a_bits > 8 ||
             ladder[t].w_bits < 2 || ladder[t].w_bits > 8))
            return Status::invalidArgument(
                strCat("reloadGraph('", name, "') tier ", t,
                       ": lazy-rung precision a", ladder[t].a_bits,
                       "-w", ladder[t].w_bits,
                       " outside the supported [2, 8]"));
    }

    std::vector<uint64_t> tier_macs;
    tier_macs.reserve(ladder.size());
    uint64_t raw_macs = 0;
    Tensor<double> probe(input_shape);
    for (size_t t = 0; t < ladder.size(); ++t) {
        if (ladder[t].lazy()) {
            tier_macs.push_back(raw_macs * ladder[t].a_bits *
                                ladder[t].w_bits / 64);
            continue;
        }
        MacCountingBackend counter;
        try {
            Expected<std::vector<double>> out =
                ladder[t].graph.tryRun(probe, counter);
            if (!out.ok())
                return out.status();
        } catch (const std::exception &e) {
            return Status::invalidArgument(
                strCat("reloadGraph('", name, "') tier ", t, " ('",
                       ladder[t].label, "') rejects the input shape: ",
                       e.what()));
        }
        tier_macs.push_back(counter.equivalentMacs());
        if (t == 0)
            raw_macs = counter.rawMacs();
    }

    const size_t rung_count = ladder.size();
    std::vector<std::shared_ptr<const QuantizedGraph>> rungs(rung_count);
    std::vector<std::shared_ptr<const PackedModelIndex>> packs(
        rung_count);
    std::vector<uint64_t> bytes(rung_count, 0);
    std::vector<uint64_t> last_use(rung_count, 0);
    for (size_t t = 0; t < rung_count; ++t) {
        TierSpec &tier = ladder[t];
        if (tier.lazy())
            continue;
        auto resident = std::make_shared<const QuantizedGraph>(
            std::move(tier.graph));
        tier.graph = QuantizedGraph();
        if (options_.weight_store) {
            auto model = options_.weight_store->load(*resident);
            if (model.ok()) {
                auto index = PackedModelIndex::build(*model, *resident);
                if (index.ok())
                    packs[t] = *index;
                else
                    warn(strCat("reloadGraph('", name, "') tier ", t,
                                ": ", index.status().toString()));
            } else {
                warn(strCat("reloadGraph('", name, "') tier ", t, ": ",
                            model.status().toString()));
            }
        }
        rungs[t] = std::move(resident);
    }

    // Atomic flip. This is the one place both locks nest (rung_mutex_
    // then mutex_): the ladder is read under either lock, so the swap
    // must exclude both readers at once. No other path nests them, so
    // the single fixed order cannot deadlock. In-flight requests keep
    // the old rungs alive through their shared_ptrs; queued requests
    // clamp their tier at execution.
    uint64_t generation = 0;
    const uint64_t now = clock_->nowNs();
    {
        std::lock_guard<std::mutex> rung_lock(rung_mutex_);
        std::lock_guard<std::mutex> lock(mutex_);
        // Retire the old ladder's lazy-resident pool accounting; the
        // new eager rungs are not pool-tracked (same as registration).
        for (size_t t = 0; t < graph->ladder.size(); ++t) {
            if (graph->ladder[t].lazy() && graph->rungs[t]) {
                lazy_resident_bytes_ -= graph->rung_bytes[t];
                --lazy_resident_count_;
            }
        }
        graph->ladder = std::move(ladder);
        graph->tier_macs = std::move(tier_macs);
        graph->raw_macs = raw_macs;
        graph->rungs = std::move(rungs);
        graph->rung_packs = std::move(packs);
        graph->rung_bytes = std::move(bytes);
        graph->rung_last_use = std::move(last_use);
        stats_.lazy_resident_bytes = lazy_resident_bytes_;
        stats_.lazy_rungs_resident = lazy_resident_count_;

        generation = ++graph->generation;
        const unsigned deepest = static_cast<unsigned>(rung_count) - 1;
        max_level_ = std::max(max_level_, deepest);
        stats_.completed_by_tier.resize(max_level_ + 1, 0);
        ++stats_.graph_reloads;
        logLocked(strCat("t=", now, " reload graph=", name,
                         " generation=", generation,
                         " rungs=", rung_count));
    }
    return generation;
}

InferenceServer::RungRef
InferenceServer::resolveRung(RegisteredGraph &graph, unsigned tier,
                             uint64_t now)
{
    RungRef ref;
    std::vector<std::string> log_lines;
    bool materialized = false;
    uint64_t evictions = 0;
    uint64_t bytes_gauge = 0;
    uint64_t count_gauge = 0;
    {
        std::lock_guard<std::mutex> lock(rung_mutex_);
        // Re-clamp: a reload may have swapped in a shallower ladder
        // since the caller snapshotted its tier.
        tier = std::min<unsigned>(
            tier, static_cast<unsigned>(graph.ladder.size()) - 1);
        std::shared_ptr<const QuantizedGraph> &slot = graph.rungs[tier];
        if (!slot) {
            // First request at this precision (or a re-fault after
            // eviction): build the rung. The builder is deterministic,
            // so with a content-addressed store the rebuild re-derives
            // the same key and re-adopts the same artifact — results
            // are bitwise identical across evict/refault cycles.
            const TierSpec &spec = graph.ladder[tier];
            auto built = std::make_shared<const QuantizedGraph>(
                spec.build());
            uint64_t packed_bytes = 0;
            if (options_.weight_store) {
                auto model = options_.weight_store->load(*built);
                if (model.ok()) {
                    auto index =
                        PackedModelIndex::build(*model, *built);
                    if (index.ok()) {
                        graph.rung_packs[tier] = *index;
                        // Panel payload bytes, not mapping bytes: the
                        // value is identical for a cold pack and a warm
                        // mmap load, keeping decision logs reproducible
                        // across cache states.
                        packed_bytes = (*model)->packed_bytes;
                    } else {
                        warn(strCat("materialize '", graph.name,
                                    "' tier ", tier, ": ",
                                    index.status().toString()));
                    }
                } else {
                    warn(strCat("materialize '", graph.name, "' tier ",
                                tier, ": ",
                                model.status().toString()));
                }
            }
            slot = std::move(built);
            graph.rung_bytes[tier] =
                graphWeightBytes(*slot) + packed_bytes;
            lazy_resident_bytes_ += graph.rung_bytes[tier];
            ++lazy_resident_count_;
            materialized = true;
            log_lines.push_back(strCat(
                "t=", now, " materialize graph=", graph.name,
                " tier=", tier, " bytes=", graph.rung_bytes[tier]));
        }
        graph.rung_last_use[tier] = ++rung_use_tick_;
        ref.graph = slot;
        ref.pack = graph.rung_packs[tier];

        // Pooled LRU across every graph's lazy rungs. The rung just
        // resolved is explicitly protected: a budget smaller than one
        // rung must not evict the work in flight.
        while (options_.rung_budget_bytes != 0 &&
               lazy_resident_bytes_ > options_.rung_budget_bytes) {
            RegisteredGraph *victim_graph = nullptr;
            unsigned victim_tier = 0;
            uint64_t oldest = std::numeric_limits<uint64_t>::max();
            for (RegisteredGraph *g : rung_registry_) {
                for (unsigned t = 0;
                     t < static_cast<unsigned>(g->ladder.size()); ++t) {
                    if (!g->ladder[t].lazy() || !g->rungs[t])
                        continue;
                    if (g == &graph && t == tier)
                        continue;
                    if (g->rung_last_use[t] < oldest) {
                        oldest = g->rung_last_use[t];
                        victim_graph = g;
                        victim_tier = t;
                    }
                }
            }
            if (!victim_graph)
                break;
            // In-flight requests hold the graph via shared_ptr; this
            // only drops the residency reference.
            victim_graph->rungs[victim_tier].reset();
            victim_graph->rung_packs[victim_tier].reset();
            lazy_resident_bytes_ -=
                victim_graph->rung_bytes[victim_tier];
            --lazy_resident_count_;
            ++evictions;
            log_lines.push_back(strCat(
                "t=", now, " evict_rung graph=", victim_graph->name,
                " tier=", victim_tier,
                " bytes=", victim_graph->rung_bytes[victim_tier]));
            victim_graph->rung_bytes[victim_tier] = 0;
        }
        bytes_gauge = lazy_resident_bytes_;
        count_gauge = lazy_resident_count_;
    }
    if (!log_lines.empty()) {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::string &line : log_lines)
            logLocked(std::move(line));
        if (materialized)
            ++stats_.rung_materializations;
        stats_.rung_evictions += evictions;
        stats_.lazy_resident_bytes = bytes_gauge;
        stats_.lazy_rungs_resident = count_gauge;
    }
    return ref;
}

CircuitBreaker &
InferenceServer::breakerLocked(RegisteredGraph &graph, unsigned tier)
{
    // Grows on demand (register and reload can deepen a ladder); never
    // shrinks, so an in-flight request's breaker index stays valid
    // across a reload to a shallower ladder.
    while (graph.breakers.size() <= tier)
        graph.breakers.push_back(
            std::make_unique<CircuitBreaker>(options_.breaker));
    return *graph.breakers[tier];
}

void
InferenceServer::recordBreakerOutcomeLocked(const Pending &item,
                                            StatusCode code,
                                            uint64_t now_ns)
{
    if (!options_.breaker.enabled || item.graph == nullptr)
        return;
    CircuitBreaker &breaker = breakerLocked(*item.graph, item.tier);
    BreakerEvent event = BreakerEvent::kNone;
    switch (code) {
      case StatusCode::kOk:
        event = breaker.onSuccess(now_ns, item.breaker_probe);
        break;
      case StatusCode::kUnavailable:
      case StatusCode::kInternal:
        // The two codes that indicate the rung (backend) is sick;
        // deadline misses and cancellations say nothing about it.
        event = breaker.onFailure(now_ns, item.breaker_probe);
        break;
      default:
        breaker.abandonProbe(item.breaker_probe);
        break;
    }
    switch (event) {
      case BreakerEvent::kOpened:
        ++stats_.breaker_open_events;
        ++stats_.breakers_open;
        logLocked(strCat("t=", now_ns, " breaker_open graph=",
                         item.graph->name, " tier=", item.tier));
        break;
      case BreakerEvent::kClosed:
        ++stats_.breaker_close_events;
        if (stats_.breakers_open > 0)
            --stats_.breakers_open;
        logLocked(strCat("t=", now_ns, " breaker_close graph=",
                         item.graph->name, " tier=", item.tier));
        break;
      case BreakerEvent::kReopened:
        // Still open for the gauge's purposes (it tracks not-closed).
        ++stats_.breaker_reopen_events;
        logLocked(strCat("t=", now_ns, " breaker_reopen graph=",
                         item.graph->name, " tier=", item.tier));
        break;
      default:
        break;
    }
}

void
InferenceServer::logLocked(std::string entry)
{
    // Every entry gets a monotonic sequence prefix, so interleaved
    // multi-worker logs are totally ordered regardless of equal clock
    // stamps. The observer sees every entry — including those past the
    // retention cap — so a bounded flight recorder stays complete.
    const uint64_t seq = decision_seq_++;
    std::string line = strCat("#", seq, " ", std::move(entry));
    if (ServeObserver *obs = observer())
        obs->onDecision(seq, line);
    if (decisions_.size() >= options_.max_decision_log) {
        ++stats_.decisions_dropped;
        return;
    }
    decisions_.push_back(std::move(line));
}

void
InferenceServer::evaluateDegradationLocked(uint64_t now_ns)
{
    const DegradationPolicy &policy = options_.degradation;
    if (!policy.enabled || max_level_ == 0)
        return;
    if (now_ns - last_level_change_ns_ < policy.min_dwell_ns)
        return;
    const size_t depth = queueDepthLocked();
    const double fill = static_cast<double>(depth) /
                        static_cast<double>(queue_.capacity());
    const bool latency_high =
        policy.p95_high_ns > 0 && window_latency_.count() > 0 &&
        window_latency_.percentile(95.0) >
            static_cast<double>(policy.p95_high_ns);
    if (level_ < max_level_ &&
        (fill >= policy.high_watermark || latency_high)) {
        ++level_;
        ++stats_.degrade_steps;
        last_level_change_ns_ = now_ns;
        window_latency_ = LogHistogram();
        logLocked(strCat("t=", now_ns, " degrade level=", level_ - 1,
                         "->", level_, " depth=", depth));
    } else if (level_ > 0 && fill <= policy.low_watermark &&
               !latency_high) {
        --level_;
        ++stats_.recover_steps;
        last_level_change_ns_ = now_ns;
        window_latency_ = LogHistogram();
        logLocked(strCat("t=", now_ns, " recover level=", level_ + 1,
                         "->", level_, " depth=", depth));
    }
}

void
InferenceServer::recordTerminalLocked(const ServeResponse &response)
{
    PriorityClassStats &cls =
        classStatsLocked(response.report.priority);
    TenantStats &ten = tenantStatsLocked(response.report.tenant);
    switch (response.status.code()) {
      case StatusCode::kOk:
        ++stats_.completed_ok;
        ++cls.completed_ok;
        ++ten.completed_ok;
        if (response.report.tier < stats_.completed_by_tier.size())
            ++stats_.completed_by_tier[response.report.tier];
        break;
      case StatusCode::kDeadlineExceeded:
        ++stats_.deadline_exceeded;
        ++cls.deadline_exceeded;
        ++ten.deadline_exceeded;
        break;
      case StatusCode::kCancelled:
        ++stats_.cancelled;
        ++cls.cancelled;
        ++ten.cancelled;
        break;
      default:
        ++stats_.failed;
        ++cls.failed;
        ++ten.failed;
        break;
    }
    // "Degraded" = dispatched and executed above rung 0; informational
    // (overlaps the terminal buckets above).
    if (response.report.start_ns != 0 && response.report.tier > 0) {
        ++cls.degraded;
        ++ten.degraded;
    }
    if (response.report.attempts > 1) {
        stats_.retries += response.report.attempts - 1;
        ten.retries += response.report.attempts - 1;
    }
}

void
InferenceServer::releaseTenantLocked(const Pending &item)
{
    if (!tenants_)
        return;
    TenantState &state = tenants_->state(item.tenant_id);
    if (state.outstanding > 0)
        --state.outstanding;
}

void
InferenceServer::evaluateBrownoutLocked(uint64_t now_ns)
{
    if (!tenants_ || !sched_ || max_level_ == 0)
        return;
    const BrownoutPolicy &policy = tenants_->options().brownout;
    if (!policy.enabled)
        return;
    const std::vector<TenantScheduler<Pending>::LaneView> lanes =
        sched_->lanes();
    size_t total = 0;
    uint64_t active_weight = 0;
    for (const auto &lane : lanes) {
        total += lane.queued;
        if (lane.queued > 0)
            active_weight += lane.weight;
    }
    const double fill = static_cast<double>(total) /
                        static_cast<double>(sched_->capacity());
    // Dense-id iteration order: deterministic across same-seed runs.
    for (uint32_t id = 0;
         id < tenants_->count() && id < lanes.size(); ++id) {
        TenantState &state = tenants_->state(id);
        if (now_ns - state.last_brownout_ns < policy.min_dwell_ns)
            continue;
        // Over quota = holding more than over_share_factor times the
        // weight-fair share of the queued work.
        bool over = false;
        if (total > 0 && lanes[id].queued > 0 && active_weight > 0) {
            const double share = static_cast<double>(lanes[id].queued) /
                                 static_cast<double>(total);
            const double fair =
                static_cast<double>(lanes[id].weight) /
                static_cast<double>(active_weight);
            over = share > policy.over_share_factor * fair;
        }
        if (fill >= policy.high_watermark && over &&
            state.brownout_level < policy.max_steps) {
            ++state.brownout_level;
            state.last_brownout_ns = now_ns;
            ++stats_.brownout_steps;
            ++tenantStatsLocked(state.name).brownout_steps;
            logLocked(strCat("t=", now_ns, " brownout level=",
                             state.brownout_level - 1, "->",
                             state.brownout_level,
                             " depth=", lanes[id].queued,
                             " total=", total,
                             " tenant=", state.name));
        } else if (state.brownout_level > 0 &&
                   (fill <= policy.low_watermark || !over)) {
            --state.brownout_level;
            state.last_brownout_ns = now_ns;
            ++stats_.brownout_clears;
            ++tenantStatsLocked(state.name).brownout_clears;
            logLocked(strCat("t=", now_ns, " brownout_clear level=",
                             state.brownout_level + 1, "->",
                             state.brownout_level,
                             " depth=", lanes[id].queued,
                             " tenant=", state.name));
        }
    }
}

void
InferenceServer::notifyTerminal(const RequestReport &report,
                                StatusCode code)
{
    if (ServeObserver *obs = observer())
        obs->onTerminal(report, code);
}

void
InferenceServer::finishRejected(Pending &&item, Status status)
{
    ServeResponse response;
    response.report.seq = item.seq;
    response.report.submit_ns = item.submit_ns;
    response.report.tier = item.tier;
    response.report.priority = item.request.priority;
    response.report.tenant = item.request.tenant;
    response.status = std::move(status);
    notifyTerminal(response.report, response.status.code());
    item.promise.set_value(std::move(response));
}

std::future<ServeResponse>
InferenceServer::submit(ServeRequest request)
{
    Pending item;
    item.request = std::move(request);
    std::future<ServeResponse> future = item.promise.get_future();

    // Rejections are decided (and counted) under the lock, but their
    // promises are fulfilled and the observer notified only after the
    // lock is released, so observer callbacks may take their own locks
    // without ordering against mutex_.
    std::vector<std::pair<Pending, Status>> finished;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        uint64_t now = clock_->nowNs();
        item.seq = next_seq_++;
        // Chaos arrival perturbations (virtual-time only: wall time is
        // not ours to skew). Each applied event advances the scripted
        // clock and is decision-logged, so the perturbed schedule is
        // still a pure function of the seed.
        if (options_.chaos && options_.virtual_clock) {
            const ChaosSubmitPlan plan =
                options_.chaos->planSubmit(item.seq, now);
            if (plan.delay_ns > 0) {
                options_.chaos->noteArrivalDelay();
                ++stats_.chaos_events;
                logLocked(strCat("t=", now, " chaos kind=queue_delay",
                                 " seq=", item.seq,
                                 " ns=", plan.delay_ns));
                options_.virtual_clock->advanceNs(plan.delay_ns);
            }
            if (plan.skew_ns > 0) {
                options_.chaos->noteClockSkew();
                ++stats_.chaos_events;
                logLocked(strCat("t=", now, " chaos kind=clock_skew",
                                 " seq=", item.seq,
                                 " ns=", plan.skew_ns));
                options_.virtual_clock->advanceNs(plan.skew_ns);
            }
            now = clock_->nowNs();
        }
        item.submit_ns = now;

        // Tenancy admission prologue: resolve the tenant (registering
        // unknown names until the table cap) and apply its priority
        // ceiling *before* the submitted counters, so per-class
        // accounting is keyed by the clamped priority and over-cap
        // tenants land under the synthetic overflow key.
        std::string tenant_key = item.request.tenant;
        bool tenant_overflow = false;
        TenantState *tenant = nullptr;
        if (tenants_) {
            const std::optional<uint32_t> id =
                tenants_->resolve(item.request.tenant);
            if (!id) {
                tenant_overflow = true;
                tenant_key = TenantRegistry::kOverflowName;
            } else {
                item.tenant_id = *id;
                tenant = &tenants_->state(*id);
                stats_.tenant_count = tenants_->count();
                if (item.request.priority >
                    tenant->policy.priority_ceiling) {
                    ++stats_.priority_clamps;
                    ++tenantStatsLocked(tenant_key).priority_clamps;
                    logLocked(strCat(
                        "t=", now, " priority_clamp seq=", item.seq,
                        " prio=", item.request.priority, "->",
                        tenant->policy.priority_ceiling,
                        " tenant=", tenant_key));
                    item.request.priority =
                        tenant->policy.priority_ceiling;
                }
            }
        }
        ++stats_.submitted;
        ++classStatsLocked(item.request.priority).submitted;
        ++tenantStatsLocked(tenant_key).submitted;

        // Validation first: a request that can never execute must not
        // occupy a queue slot another request could use.
        Status invalid;
        if (item.request.graph_id >= graphs_.size())
            invalid = Status::notFound(
                strCat("unknown graph id ", item.request.graph_id));
        else if (item.request.input.shape() !=
                 graphs_[item.request.graph_id]->input_shape)
            invalid = Status::invalidArgument(
                strCat("input shape does not match graph '",
                       graphs_[item.request.graph_id]->name, "'"));
        if (tenant_overflow) {
            ++stats_.rejected_tenant_limit;
            ++classStatsLocked(item.request.priority).rejected_quota;
            ++tenantStatsLocked(tenant_key).rejected_limit;
            logLocked(strCat("t=", now, " reject_tenant_limit seq=",
                             item.seq, " tenant=", tenant_key));
            finished.emplace_back(
                std::move(item),
                Status::resourceExhausted(strCat(
                    "tenant_limit: tenant table is full (max_tenants=",
                    tenants_->options().max_tenants, ")")));
        } else if (draining_) {
            ++stats_.rejected_draining;
            ++classStatsLocked(item.request.priority).rejected_draining;
            ++tenantStatsLocked(tenant_key).rejected_draining;
            logLocked(strCat("t=", now, " reject_draining seq=",
                             item.seq, " tenant=", tenant_key));
            finished.emplace_back(
                std::move(item),
                Status::unavailable(
                    "tenant_drain: server is draining"));
        } else if (!invalid.ok()) {
            ++stats_.rejected_invalid;
            ++classStatsLocked(item.request.priority).rejected_invalid;
            ++tenantStatsLocked(tenant_key).rejected_invalid;
            logLocked(strCat("t=", now, " reject_invalid seq=",
                             item.seq, " code=",
                             statusCodeName(invalid.code()),
                             " tenant=", tenant_key));
            finished.emplace_back(std::move(item), std::move(invalid));
        } else if (item.request.deadline_ns != 0 &&
                   now >= item.request.deadline_ns) {
            ++stats_.expired_submit;
            ++classStatsLocked(item.request.priority).expired_submit;
            ++tenantStatsLocked(tenant_key).expired_submit;
            logLocked(strCat("t=", now, " expire_submit seq=",
                             item.seq, " tenant=", tenant_key));
            finished.emplace_back(
                std::move(item),
                Status::deadlineExceeded(
                    "deadline already passed at submission"));
        } else if (tenant && !tenants_->tryAcquireToken(*tenant, now)) {
            ++stats_.rejected_rate;
            ++classStatsLocked(item.request.priority).rejected_quota;
            ++tenantStatsLocked(tenant_key).rejected_rate;
            logLocked(strCat("t=", now, " reject_rate seq=", item.seq,
                             " tenant=", tenant_key));
            finished.emplace_back(
                std::move(item),
                Status::resourceExhausted(strCat(
                    "tenant_rate: tenant '", tenant_key,
                    "' exceeded its admission rate")));
        } else if (tenant && tenant->policy.max_in_flight != 0 &&
                   tenant->outstanding >=
                       tenant->policy.max_in_flight) {
            ++stats_.rejected_bulkhead;
            ++classStatsLocked(item.request.priority).rejected_quota;
            ++tenantStatsLocked(tenant_key).rejected_bulkhead;
            logLocked(strCat("t=", now, " reject_bulkhead seq=",
                             item.seq, " outstanding=",
                             tenant->outstanding,
                             " tenant=", tenant_key));
            finished.emplace_back(
                std::move(item),
                Status::resourceExhausted(strCat(
                    "tenant_bulkhead: tenant '", tenant_key, "' has ",
                    tenant->outstanding,
                    " outstanding requests (max_in_flight=",
                    tenant->policy.max_in_flight, ")")));
        } else {
            evaluateDegradationLocked(now);
            evaluateBrownoutLocked(now);
            item.graph = graphs_[item.request.graph_id].get();
            // Effective precision: the global degradation level plus
            // the tenant's brownout penalty, clamped to the ladder and
            // then to the tenant's accuracy floor.
            unsigned level = level_;
            if (tenant)
                level += tenant->brownout_level;
            item.tier = std::min<unsigned>(
                level,
                static_cast<unsigned>(item.graph->ladder.size()) - 1);
            if (tenant && tenant->policy.tier_floor >= 0)
                item.tier = std::min<unsigned>(
                    item.tier,
                    static_cast<unsigned>(tenant->policy.tier_floor));

            const uint64_t seq = item.seq;
            const unsigned tier = item.tier;
            const int priority = item.request.priority;
            const std::string &graph_name = item.graph->name;

            // Circuit breaker: an open rung fast-fails here, at
            // admission, so nothing queues behind a dead rung. A
            // half-open admit tags the request as a probe; the probe
            // slot is released by exactly one terminal outcome (or an
            // explicit abandon on the reject/shed paths below).
            bool fast_failed = false;
            if (options_.breaker.enabled) {
                CircuitBreaker &breaker =
                    breakerLocked(*item.graph, tier);
                const CircuitBreaker::Decision decision =
                    breaker.admit(now);
                if (decision.event == BreakerEvent::kHalfOpened)
                    logLocked(strCat("t=", now, " breaker_half_open",
                                     " graph=", graph_name,
                                     " tier=", tier));
                if (!decision.allow) {
                    fast_failed = true;
                    ++stats_.breaker_fast_fails;
                    ++stats_.failed;
                    ++classStatsLocked(priority).failed;
                    ++tenantStatsLocked(tenant_key).failed;
                    logLocked(strCat("t=", now, " breaker_fast_fail",
                                     " seq=", seq, " graph=",
                                     graph_name, " tier=", tier,
                                     " prio=", priority,
                                     " tenant=", tenant_key));
                    finished.emplace_back(
                        std::move(item),
                        Status::unavailable(strCat(
                            "circuit breaker open for '", graph_name,
                            "' tier ", tier)));
                } else if (decision.probe) {
                    item.breaker_probe = true;
                    ++stats_.breaker_probes;
                    logLocked(strCat("t=", now, " breaker_probe seq=",
                                     seq, " graph=", graph_name,
                                     " tier=", tier));
                }
            }
            if (fast_failed) {
                // fall through to fulfilment outside the lock
            } else {
            // Retention order: higher priority wins; within a priority
            // the older request wins (so an equal-priority arrival can
            // never shed queued work — admission stays FIFO per
            // priority class).
            auto retain_less = [](const Pending &a, const Pending &b) {
                if (a.request.priority != b.request.priority)
                    return a.request.priority < b.request.priority;
                return a.seq > b.seq;
            };
            RegisteredGraph *graph_ptr = item.graph;
            const bool was_probe = item.breaker_probe;
            const uint32_t tenant_id = item.tenant_id;
            std::optional<Pending> evicted;
            QueuePush outcome;
            if (sched_) {
                // Per-tenant lane: overload evicts strictly within the
                // submitting tenant's own sub-queue.
                sched_->ensureLane(tenant_id, tenant->policy.weight,
                                   tenant->policy.max_queue);
                outcome = sched_->push(tenant_id, std::move(item),
                                       retain_less, evicted);
            } else {
                outcome = queue_.pushEvicting(std::move(item),
                                              retain_less, evicted);
            }
            switch (outcome) {
              case QueuePush::kPushed:
              case QueuePush::kPushedEvicted:
                // `admitted` counts entries that reached the queue; a
                // shed victim stays counted there and additionally
                // under `shed`.
                ++stats_.admitted;
                ++tenantStatsLocked(tenant_key).admitted;
                if (tenant)
                    ++tenant->outstanding;
                if (evicted) {
                    ++stats_.shed;
                    ++classStatsLocked(evicted->request.priority).shed;
                    ++tenantStatsLocked(evicted->request.tenant).shed;
                    releaseTenantLocked(*evicted);
                    if (evicted->breaker_probe && evicted->graph)
                        breakerLocked(*evicted->graph, evicted->tier)
                            .abandonProbe(true);
                    logLocked(strCat("t=", now, " shed seq=",
                                     evicted->seq, " prio=",
                                     evicted->request.priority,
                                     " by=", seq, " tenant=",
                                     evicted->request.tenant));
                    finished.emplace_back(
                        std::move(*evicted),
                        Status::resourceExhausted(
                            "shed for higher-priority work"));
                }
                logLocked(strCat("t=", now, " admit seq=", seq,
                                 " graph=", graph_name, " tier=", tier,
                                 " prio=", priority,
                                 " depth=", queueDepthLocked(),
                                 " tenant=", tenant_key));
                break;
              case QueuePush::kRejected:
                ++stats_.rejected_full;
                ++classStatsLocked(priority).rejected_full;
                ++tenantStatsLocked(tenant_key).rejected_full;
                if (was_probe)
                    breakerLocked(*graph_ptr, tier).abandonProbe(true);
                logLocked(strCat("t=", now, " reject_full seq=", seq,
                                 " prio=", priority,
                                 " tenant=", tenant_key));
                finished.emplace_back(
                    std::move(item),
                    Status::resourceExhausted(
                        "admission queue is full"));
                break;
              case QueuePush::kClosed:
                ++stats_.rejected_closed;
                ++classStatsLocked(priority).rejected_closed;
                ++tenantStatsLocked(tenant_key).rejected_closed;
                if (was_probe)
                    breakerLocked(*graph_ptr, tier).abandonProbe(true);
                logLocked(strCat("t=", now, " reject_closed seq=",
                                 seq, " tenant=", tenant_key));
                finished.emplace_back(
                    std::move(item),
                    Status::unavailable("server is shut down"));
                break;
            }
            }
        }
    }
    for (auto &[pending, status] : finished)
        finishRejected(std::move(pending), std::move(status));
    return future;
}

unsigned
InferenceServer::pump(unsigned max_requests)
{
    if (options_.workers != 0)
        fatal("InferenceServer::pump: server is running worker threads");
    if (currentThreadName() != "pump")
        Tracer::nameCurrentThread("pump");
    if (!pump_backend_)
        pump_backend_ = makeBackend();
    unsigned executed = 0;
    while (executed < max_requests) {
        std::optional<Pending> item;
        if (sched_) {
            std::optional<TenantScheduler<Pending>::Popped> popped =
                sched_->tryPop();
            if (!popped)
                break;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                logLocked(strCat("t=", clock_->nowNs(),
                                 " dispatch seq=", popped->item.seq,
                                 " deficit=", popped->deficit,
                                 " tenant=",
                                 popped->item.request.tenant));
            }
            item = std::move(popped->item);
        } else {
            item = queue_.tryPop();
            if (!item)
                break;
        }
        execute(std::move(*item), *pump_slot_, *pump_backend_, 0);
        ++executed;
        // Chaos worker-crash injection can taint the pump backend just
        // as a real throw taints a threaded worker's; rebuild it.
        if (pump_slot_->recycle.exchange(false))
            pump_backend_ = makeBackend();
    }
    return executed;
}

void
InferenceServer::workerMain(unsigned index)
{
    Tracer::nameCurrentThread(strCat("serve-worker", index));
    WorkerSlot &slot = *slots_[index];
    std::unique_ptr<MixGemmBackend> backend = makeBackend();
    if (sched_) {
        while (std::optional<TenantScheduler<Pending>::Popped> popped =
                   sched_->popWait()) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                logLocked(strCat("t=", clock_->nowNs(),
                                 " dispatch seq=", popped->item.seq,
                                 " deficit=", popped->deficit,
                                 " tenant=",
                                 popped->item.request.tenant));
            }
            execute(std::move(popped->item), slot, *backend,
                    static_cast<int>(index));
            if (slot.recycle.exchange(false))
                backend = makeBackend();
        }
        return;
    }
    while (std::optional<Pending> item = queue_.popWait()) {
        execute(std::move(*item), slot, *backend,
                static_cast<int>(index));
        if (slot.recycle.exchange(false))
            backend = makeBackend();
    }
}

void
InferenceServer::execute(Pending item, WorkerSlot &slot,
                         MixGemmBackend &backend, int worker_index)
{
    RegisteredGraph &graph = *item.graph;
    const uint64_t deadline = item.request.deadline_ns;

    // A quarantined worker sits out its penalty before taking the next
    // request (its backend was already marked for recycling when the
    // quarantine was imposed).
    if (options_.health.enabled && slot.quarantined) {
        const uint64_t now = clock_->nowNs();
        if (now < slot.quarantined_until_ns) {
            if (options_.virtual_clock)
                options_.virtual_clock->advanceToNs(
                    slot.quarantined_until_ns);
            else
                std::this_thread::sleep_for(std::chrono::nanoseconds(
                    slot.quarantined_until_ns - now));
        }
        slot.quarantined = false;
        slot.health_failures = 0;
        const uint64_t resumed = clock_->nowNs();
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.backend_recoveries;
        if (stats_.backends_quarantined > 0)
            --stats_.backends_quarantined;
        logLocked(strCat("t=", resumed, " quarantine_recover worker=",
                         worker_index));
    }

    // Snapshot the rung under rung_mutex_: a concurrent reloadGraph()
    // may swap the ladder out from under us, and a request admitted
    // against a deeper old ladder clamps to the new depth.
    std::string tier_label;
    uint64_t tier_service_macs = 0;
    {
        std::lock_guard<std::mutex> rung_lock(rung_mutex_);
        item.tier = std::min<unsigned>(
            item.tier,
            static_cast<unsigned>(graph.ladder.size()) - 1);
        tier_label = graph.ladder[item.tier].label;
        tier_service_macs = graph.tier_macs[item.tier];
    }

    ServeResponse response;
    response.report.seq = item.seq;
    response.report.submit_ns = item.submit_ns;
    response.report.tier = item.tier;
    response.report.tier_label = tier_label;
    response.report.worker = worker_index;
    response.report.priority = item.request.priority;
    response.report.tenant = item.request.tenant;

    const uint64_t start = clock_->nowNs();
    response.report.start_ns = start;
    if (deadline != 0 && start >= deadline) {
        response.status = Status::deadlineExceeded(
            "deadline passed while queued");
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.expired_queue;
            ++classStatsLocked(item.request.priority).expired_queue;
            ++tenantStatsLocked(item.request.tenant).expired_queue;
            releaseTenantLocked(item);
            logLocked(strCat("t=", start, " expire_queue seq=",
                             item.seq, " tenant=",
                             item.request.tenant));
            // Releases the breaker probe slot, if this request held one.
            recordBreakerOutcomeLocked(item, response.status.code(),
                                       start);
            recordTerminalLocked(response);
        }
        notifyTerminal(response.report, response.status.code());
        item.promise.set_value(std::move(response));
        return;
    }

    // Resolve (and if needed materialize) the rung *after* the queue
    // deadline check: a request that expired waiting must not trigger
    // a build it will never use.
    const RungRef rung = resolveRung(graph, item.tier, start);

    auto source = std::make_shared<CancelSource>();
    if (deadline != 0)
        source->setDeadline(deadline, *clock_);
    source->setProgressCounter(&slot.progress);
    const CancelToken token = source->token();
    {
        std::lock_guard<std::mutex> lock(slot.mutex);
        slot.active = source;
    }
    slot.busy_since.store(start, std::memory_order_release);
    slot.busy_seq.store(item.seq + 1, std::memory_order_release);

    backend.setCancelToken(&token);
    backend.setPrepacked(rung.pack.get());
    backend.setTraceLabel(strCat(graph.name, "/", tier_label, "/req",
                                 item.seq));
    backend.setRequestContext(
        {item.seq, item.request.tenant, item.tier});

    // One span per request execution, so a request's attempts, retries
    // and GEMM spans stitch into a single Perfetto track segment.
    TRACE_SCOPE("serve", [&] {
        return strCat("req", item.seq, "/", graph.name, "/",
                      tier_label);
    });

    const unsigned max_retries =
        item.request.max_retries >= 0
            ? static_cast<unsigned>(item.request.max_retries)
            : options_.max_retries;
    Status status;
    std::vector<double> output;
    unsigned attempts = 0;
    uint64_t hedges_launched = 0;
    uint64_t hedge_wins = 0;
    for (;;) {
        ++attempts;
        status = Status();
        // Chaos plan for this attempt: a pure function of
        // (seed, seq, attempt), so the injected fault schedule is
        // identical across same-seed runs regardless of interleaving.
        ChaosAttemptPlan plan;
        if (options_.chaos)
            plan = options_.chaos->planAttempt(item.seq, attempts,
                                               item.tier,
                                               clock_->nowNs());
        using ChaosAction = ChaosAttemptPlan::Action;
        bool modeled_hedge = false;
        try {
            if (options_.execution_hook)
                status = options_.execution_hook(item.seq, attempts,
                                                 token);
            if (status.ok() && plan.action == ChaosAction::kThrow) {
                options_.chaos->noteThrow();
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    ++stats_.chaos_events;
                    logLocked(strCat("t=", clock_->nowNs(),
                                     " chaos kind=throw seq=", item.seq,
                                     " attempt=", attempts));
                }
                throw std::runtime_error(
                    "chaos: injected worker crash");
            }
            if (status.ok() && plan.action == ChaosAction::kTransient) {
                options_.chaos->noteTransient();
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    ++stats_.chaos_events;
                    logLocked(strCat("t=", clock_->nowNs(),
                                     " chaos kind=transient seq=",
                                     item.seq, " attempt=", attempts));
                }
                status = Status::unavailable(
                    "chaos: injected transient backend error");
            }
            if (status.ok() && plan.action == ChaosAction::kStall) {
                options_.chaos->noteStall();
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    ++stats_.chaos_events;
                    logLocked(strCat("t=", clock_->nowNs(),
                                     " chaos kind=stall seq=", item.seq,
                                     " attempt=", attempts,
                                     " ns=", plan.stall_ns));
                }
                if (options_.virtual_clock) {
                    if (options_.hedge.enabled &&
                        options_.hedge.delay_ns < plan.stall_ns) {
                        // Modeled hedge: the primary would stall past
                        // the hedge delay, so the request is charged
                        // the delay plus a normal service time and the
                        // hedge's result is used.
                        options_.virtual_clock->advanceNs(
                            options_.hedge.delay_ns);
                        ++hedges_launched;
                        modeled_hedge = true;
                        std::lock_guard<std::mutex> lock(mutex_);
                        logLocked(strCat("t=", clock_->nowNs(),
                                         " hedge_launch seq=", item.seq,
                                         " attempt=", attempts));
                    } else {
                        options_.virtual_clock->advanceNs(
                            plan.stall_ns);
                        status = Status::unavailable(
                            "chaos: stalled attempt");
                    }
                } else if (!options_.hedge.enabled) {
                    // Wall mode without hedging: spin with no heartbeat
                    // so the watchdog sees a genuinely stuck worker.
                    const auto until =
                        std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(plan.stall_ns);
                    while (!token.cancelled() &&
                           std::chrono::steady_clock::now() < until)
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                    status = token.cancelled()
                                 ? token.status()
                                 : Status::unavailable(
                                       "chaos: stalled attempt");
                }
                // Wall mode *with* hedging folds the stall into the
                // hedged race below.
            }
            if (status.ok()) {
                if (!options_.virtual_clock && options_.hedge.enabled) {
                    // Hedged execution: the primary runs on a helper
                    // thread (including any chaos-planned stall); if
                    // it has not finished after delay_ns, a duplicate
                    // launches on the slot's lazily created second
                    // backend. First result wins, the loser is
                    // cancelled, and both threads complete before this
                    // scope exits (declaration order guarantees the
                    // futures are destroyed before their tokens).
                    const bool stall =
                        plan.action == ChaosAction::kStall;
                    auto hedge_source = std::make_shared<CancelSource>();
                    if (deadline != 0)
                        hedge_source->setDeadline(deadline, *clock_);
                    const CancelToken hedge_token =
                        hedge_source->token();
                    std::future<Expected<std::vector<double>>> primary =
                        std::async(std::launch::async,
                                   [&]() -> Expected<std::vector<double>> {
                            if (stall) {
                                const auto until =
                                    std::chrono::steady_clock::now() +
                                    std::chrono::nanoseconds(
                                        plan.stall_ns);
                                while (!token.cancelled() &&
                                       std::chrono::steady_clock::now() <
                                           until)
                                    std::this_thread::sleep_for(
                                        std::chrono::milliseconds(1));
                                if (token.cancelled())
                                    return token.status();
                            }
                            return rung.graph->tryRun(
                                item.request.input, backend);
                        });
                    std::future<Expected<std::vector<double>>> hedged;
                    if (primary.wait_for(std::chrono::nanoseconds(
                            options_.hedge.delay_ns)) !=
                        std::future_status::ready) {
                        if (!slot.hedge_backend)
                            slot.hedge_backend = makeBackend();
                        MixGemmBackend &spare = *slot.hedge_backend;
                        spare.setCancelToken(&hedge_token);
                        spare.setPrepacked(rung.pack.get());
                        spare.setRequestContext({item.seq,
                                                 item.request.tenant,
                                                 item.tier});
                        ++hedges_launched;
                        {
                            std::lock_guard<std::mutex> lock(mutex_);
                            logLocked(strCat("t=", clock_->nowNs(),
                                             " hedge_launch seq=",
                                             item.seq, " attempt=",
                                             attempts));
                        }
                        hedged = std::async(
                            std::launch::async,
                            [&]() -> Expected<std::vector<double>> {
                                return rung.graph->tryRun(
                                    item.request.input, spare);
                            });
                    }
                    std::optional<Expected<std::vector<double>>> result;
                    bool hedge_won = false;
                    if (!hedged.valid()) {
                        result.emplace(primary.get());
                    } else {
                        for (;;) {
                            if (primary.wait_for(
                                    std::chrono::milliseconds(1)) ==
                                std::future_status::ready) {
                                result.emplace(primary.get());
                                break;
                            }
                            if (hedged.wait_for(
                                    std::chrono::seconds(0)) ==
                                std::future_status::ready) {
                                result.emplace(hedged.get());
                                hedge_won = true;
                                break;
                            }
                        }
                        if (hedge_won) {
                            source->cancel(Status::cancelled(
                                "hedge won the race"));
                            primary.wait();
                        } else {
                            hedge_source->cancel(Status::cancelled(
                                "primary won the race"));
                            hedged.wait();
                        }
                        slot.hedge_backend->setCancelToken(nullptr);
                        slot.hedge_backend->setPrepacked(nullptr);
                        slot.hedge_backend->clearRequestContext();
                    }
                    if (hedge_won) {
                        ++hedge_wins;
                        std::lock_guard<std::mutex> lock(mutex_);
                        logLocked(strCat("t=", clock_->nowNs(),
                                         " hedge_win seq=", item.seq,
                                         " attempt=", attempts));
                    }
                    if (result->ok())
                        output = std::move(**result);
                    else
                        status = result->status();
                } else {
                    Expected<std::vector<double>> result =
                        rung.graph->tryRun(item.request.input, backend);
                    if (result.ok())
                        output = std::move(*result);
                    else
                        status = result.status();
                }
            }
        } catch (const std::exception &e) {
            status = Status::internal(
                strCat("serve worker: ", e.what()));
        }
        if (modeled_hedge && status.ok()) {
            ++hedge_wins;
            std::lock_guard<std::mutex> lock(mutex_);
            logLocked(strCat("t=", clock_->nowNs(), " hedge_win seq=",
                             item.seq, " attempt=", attempts));
        }
        // Virtual-time mode: the GEMMs above completed instantly in
        // scripted time, so charge the rung's modeled service cost now
        // — this is what makes queueing dynamics (and thus every
        // degradation decision) reproducible under a fixed seed.
        if (options_.virtual_clock)
            options_.virtual_clock->advanceNs(
                tier_service_macs * options_.virtual_ns_per_mac);
        if (status.ok() || !statusCodeIsRetriable(status.code()) ||
            attempts > max_retries || token.cancelled())
            break;
        const uint64_t backoff = options_.retry_backoff_ns
                                 << (attempts - 1);
        const uint64_t now = clock_->nowNs();
        if (deadline != 0 && now + backoff >= deadline)
            break; // no room left for another attempt
        // Global retry budget: a denied token makes this failure final
        // — under a correlated failure burst, retries stay bounded
        // instead of amplifying the load.
        if (!retry_budget_.tryAcquire(now)) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.retry_budget_denied;
            logLocked(strCat("t=", now, " retry_denied_budget seq=",
                             item.seq, " attempt=", attempts + 1,
                             " tenant=", item.request.tenant));
            break;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            logLocked(strCat("t=", now, " retry seq=", item.seq,
                             " attempt=", attempts + 1, " code=",
                             statusCodeName(status.code()),
                             " tenant=", item.request.tenant));
        }
        if (options_.virtual_clock)
            options_.virtual_clock->advanceNs(backoff);
        else
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(backoff));
    }
    backend.setCancelToken(nullptr);
    backend.setPrepacked(nullptr);
    backend.clearRequestContext();
    const uint64_t abft_uncorrected =
        backend.lastAbft().tiles_uncorrected;

    slot.busy_seq.store(0, std::memory_order_release);
    slot.busy_since.store(0, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(slot.mutex);
        slot.active.reset();
    }

    const uint64_t done = clock_->nowNs();
    // A response that arrives after its deadline is as useless as one
    // that never arrives: count it as a miss and discard the output,
    // even though the compute finished.
    if (status.ok() && deadline != 0 && done > deadline) {
        status = Status::deadlineExceeded(
            "completed after the deadline; output discarded");
        output.clear();
    }
    if (!status.ok())
        output.clear();
    response.status = std::move(status);
    response.output = std::move(output);
    response.report.attempts = attempts;
    response.report.done_ns = done;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        metrics_.addNs("serve/queue_ns", start - item.submit_ns);
        metrics_.addNs("serve/exec_ns", done - start);
        metrics_.addNs("serve/total_ns", done - item.submit_ns);
        window_latency_.add(done - item.submit_ns);
        logLocked(strCat("t=", done, " done seq=", item.seq, " code=",
                         statusCodeName(response.status.code()),
                         " tier=", item.tier, " attempts=", attempts,
                         " tenant=", item.request.tenant));
        releaseTenantLocked(item);
        recordBreakerOutcomeLocked(item, response.status.code(), done);
        stats_.hedges_launched += hedges_launched;
        stats_.hedge_wins += hedge_wins;
        // Per-backend health scoring: consecutive kUnavailable /
        // kInternal outcomes quarantine the worker — its backend is
        // recycled and it sits out quarantine_ns before the next
        // request (see the top of this function). The slot's health
        // fields are owned by this thread; only the stats need mutex_.
        if (options_.health.enabled) {
            const StatusCode code = response.status.code();
            if (code == StatusCode::kUnavailable ||
                code == StatusCode::kInternal) {
                if (++slot.health_failures >=
                        options_.health.quarantine_after &&
                    !slot.quarantined) {
                    slot.quarantined = true;
                    slot.quarantined_until_ns =
                        done + options_.health.quarantine_ns;
                    slot.recycle.store(true,
                                       std::memory_order_release);
                    ++stats_.backend_quarantines;
                    ++stats_.backends_quarantined;
                    logLocked(strCat("t=", done, " quarantine worker=",
                                     worker_index, " until=",
                                     slot.quarantined_until_ns));
                }
            } else if (code == StatusCode::kOk) {
                slot.health_failures = 0;
            }
        }
        recordTerminalLocked(response);
        evaluateDegradationLocked(done);
    }
    if (abft_uncorrected > 0) {
        if (ServeObserver *obs = observer())
            obs->onAbftUncorrectable(item.seq, abft_uncorrected, done);
    }
    notifyTerminal(response.report, response.status.code());
    item.promise.set_value(std::move(response));
}

void
InferenceServer::watchdogMain()
{
    Tracer::nameCurrentThread("watchdog");
    struct Track
    {
        uint64_t seq = 0;
        uint64_t progress = 0;
        uint64_t last_change_ns = 0;
    };
    std::vector<Track> tracks(slots_.size());
    std::unique_lock<std::mutex> lock(watchdog_mutex_);
    while (!stopping_) {
        watchdog_cv_.wait_for(
            lock, std::chrono::nanoseconds(options_.watchdog_poll_ns),
            [this] { return stopping_; });
        if (stopping_)
            break;
        const uint64_t now = clock_->nowNs();
        for (size_t w = 0; w < slots_.size(); ++w) {
            WorkerSlot &slot = *slots_[w];
            Track &track = tracks[w];
            const uint64_t seq =
                slot.busy_seq.load(std::memory_order_acquire);
            if (seq == 0) {
                track.seq = 0;
                continue;
            }
            const uint64_t progress =
                slot.progress.load(std::memory_order_acquire);
            if (seq != track.seq || progress != track.progress) {
                track.seq = seq;
                track.progress = progress;
                track.last_change_ns = now;
                continue;
            }
            const uint64_t busy_since =
                slot.busy_since.load(std::memory_order_acquire);
            const uint64_t idle_since =
                std::max(track.last_change_ns, busy_since);
            if (now - idle_since < options_.watchdog_timeout_ns)
                continue;
            // No heartbeat for a full timeout: cancel the request and
            // mark the worker's backend for replacement — whatever
            // wedged it must not leak into the next request.
            std::shared_ptr<CancelSource> active;
            {
                std::lock_guard<std::mutex> slot_lock(slot.mutex);
                if (slot.busy_seq.load(std::memory_order_acquire) == seq)
                    active = slot.active;
            }
            if (!active)
                continue;
            active->cancel(Status::unavailable(strCat(
                "watchdog: worker ", w, " made no progress for ",
                now - idle_since, " ns")));
            slot.recycle.store(true, std::memory_order_release);
            track.last_change_ns = now; // one cancel per timeout window
            {
                std::lock_guard<std::mutex> stats_lock(mutex_);
                ++stats_.watchdog_cancels;
                logLocked(strCat("t=", now, " watchdog_cancel worker=",
                                 w, " seq=", seq - 1));
            }
            // Outside mutex_: the observer may snapshot server state
            // (e.g. to dump a postmortem bundle).
            if (ServeObserver *obs = observer())
                obs->onWatchdogCancel(static_cast<unsigned>(w), seq - 1,
                                      now);
        }
    }
}

void
InferenceServer::beginDrain()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_)
        return;
    draining_ = true;
    stats_.draining = true;
    const uint64_t now = clock_->nowNs();
    logLocked(strCat("t=", now, " drain_begin depth=",
                     queueDepthLocked()));
    if (tenants_ && sched_) {
        const std::vector<TenantScheduler<Pending>::LaneView> lanes =
            sched_->lanes();
        for (uint32_t id = 0; id < tenants_->count(); ++id) {
            const size_t queued =
                id < lanes.size() ? lanes[id].queued : 0;
            const uint64_t deficit =
                id < lanes.size() ? lanes[id].deficit : 0;
            logLocked(strCat("t=", now, " drain_tenant queued=",
                             queued, " deficit=", deficit,
                             " outstanding=",
                             tenants_->state(id).outstanding,
                             " tenant=", tenants_->state(id).name));
        }
    }
}

bool
InferenceServer::drained() const
{
    if (queueDepth() != 0)
        return false;
    for (const std::unique_ptr<WorkerSlot> &slot : slots_)
        if (slot->busy_seq.load(std::memory_order_acquire) != 0)
            return false;
    if (pump_slot_ &&
        pump_slot_->busy_seq.load(std::memory_order_acquire) != 0)
        return false;
    return true;
}

bool
InferenceServer::awaitDrained(uint64_t timeout_ns)
{
    // Pump / virtual-time mode: time only advances when the caller
    // pumps, so waiting here could never make progress.
    if (options_.workers == 0 || options_.virtual_clock)
        return drained();
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::nanoseconds(timeout_ns);
    while (!drained()) {
        if (std::chrono::steady_clock::now() >= deadline)
            return drained();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
}

void
InferenceServer::shutdown()
{
    if (shut_down_.exchange(true))
        return;
    {
        std::lock_guard<std::mutex> lock(watchdog_mutex_);
        stopping_ = true;
    }
    watchdog_cv_.notify_all();
    if (sched_)
        sched_->close();
    else
        queue_.close();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();
    if (watchdog_.joinable())
        watchdog_.join();
    // Threaded workers drained the queue before exiting (popWait only
    // returns empty once closed *and* drained). In pump mode — or if a
    // worker died — whatever is left must still get a terminal status.
    // With tenancy on, leftovers come out in DWRR order, so even the
    // cancellations at shutdown are weight-fair across tenants.
    for (;;) {
        std::optional<Pending> item;
        if (sched_) {
            std::optional<TenantScheduler<Pending>::Popped> popped =
                sched_->tryPop();
            if (!popped)
                break;
            item = std::move(popped->item);
        } else {
            item = queue_.tryPop();
            if (!item)
                break;
        }
        ServeResponse response;
        response.report.seq = item->seq;
        response.report.submit_ns = item->submit_ns;
        response.report.tier = item->tier;
        response.report.priority = item->request.priority;
        response.report.tenant = item->request.tenant;
        response.status = Status::unavailable("server shut down");
        {
            std::lock_guard<std::mutex> lock(mutex_);
            logLocked(strCat("t=", clock_->nowNs(),
                             " drop_shutdown seq=", item->seq,
                             " tenant=", item->request.tenant));
            // A drop at shutdown says nothing about the rung's health:
            // release the probe slot without judging the outcome.
            if (item->breaker_probe && item->graph)
                breakerLocked(*item->graph, item->tier)
                    .abandonProbe(true);
            releaseTenantLocked(*item);
            if (draining_) {
                // Cut-short drain: fair cancellation with per-tenant
                // accounting.
                ++stats_.drain_cancelled;
                ++tenantStatsLocked(item->request.tenant)
                      .drain_cancelled;
            }
            recordTerminalLocked(response);
        }
        notifyTerminal(response.report, response.status.code());
        item->promise.set_value(std::move(response));
    }
}

ServerStats
InferenceServer::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ServerStats snapshot = stats_;
    snapshot.degradation_level = level_;
    snapshot.queue_depth = queueDepthLocked();
    snapshot.retry_budget_level = retry_budget_.level(clock_->nowNs());
    snapshot.draining = draining_;
    if (tenants_ && sched_) {
        snapshot.tenant_count = tenants_->count();
        const std::vector<TenantScheduler<Pending>::LaneView> lanes =
            sched_->lanes();
        for (uint32_t id = 0; id < tenants_->count(); ++id) {
            const TenantState &state = tenants_->state(id);
            TenantStats &ten = snapshot.by_tenant[state.name];
            ten.brownout_level = state.brownout_level;
            ten.in_flight = state.outstanding;
            ten.tokens = state.tokens;
            ten.weight = state.policy.weight;
            if (id < lanes.size()) {
                ten.queue_depth = lanes[id].queued;
                ten.deficit = lanes[id].deficit;
                ten.weight = lanes[id].weight;
            }
        }
    }
    return snapshot;
}

std::vector<std::string>
InferenceServer::decisionLog() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return decisions_;
}

MetricSet
InferenceServer::latencyMetrics() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return metrics_;
}

} // namespace mixgemm
