/**
 * @file
 * Resilience primitives for the inference server: per-rung circuit
 * breakers, a global retry-budget token bucket, and the option structs
 * for hedged requests and backend health quarantine.
 *
 * All of these read time from the caller (a Clock-derived now_ns), so
 * under VirtualClock pump mode every state transition is a pure
 * function of the request schedule — two same-seed soaks drive the
 * breakers and the budget through byte-identical histories. Every
 * option struct defaults to *disabled*: a server built with default
 * options takes none of these code paths, keeping the default serving
 * path bitwise-identical to a build without them.
 *
 * CircuitBreaker implements the classic three-state machine:
 *
 *   Closed    all requests pass; outcomes feed a sliding failure-rate
 *             window. When the window holds at least min_samples and
 *             the failure fraction reaches failure_threshold, the
 *             breaker opens.
 *   Open      requests fast-fail (the server rejects at admission, so
 *             nothing queues behind a dead rung) until open_ns has
 *             elapsed.
 *   HalfOpen  up to half_open_probes requests are admitted as probes;
 *             close_after consecutive probe successes close the
 *             breaker, any probe failure re-opens it.
 *
 * RetryBudget is a token bucket shared by every request: each retry
 * consumes one token, tokens refill at tokens_per_s up to burst. A
 * denied acquisition suppresses the retry (the attempt's failure is
 * final), which is what turns a correlated failure burst into bounded
 * extra load instead of a retry storm.
 */

#ifndef MIXGEMM_SERVE_RESILIENCE_H
#define MIXGEMM_SERVE_RESILIENCE_H

#include <cstdint>
#include <deque>
#include <mutex>

namespace mixgemm
{

/** Circuit-breaker knobs (per model rung). Disabled by default. */
struct BreakerOptions
{
    bool enabled = false;
    uint64_t window_ns = 1'000'000'000; ///< failure-rate window
    unsigned min_samples = 8;           ///< don't judge a cold window
    double failure_threshold = 0.5;     ///< open at this failure rate
    uint64_t open_ns = 500'000'000;     ///< cooldown before half-open
    unsigned half_open_probes = 2;      ///< concurrent probes allowed
    unsigned close_after = 2;           ///< probe successes to close
};

/** State transition produced by a breaker call; the server logs it. */
enum class BreakerEvent
{
    kNone,
    kOpened,    ///< closed -> open (window tripped)
    kHalfOpened,///< open -> half-open (cooldown elapsed)
    kClosed,    ///< half-open -> closed (probes succeeded)
    kReopened,  ///< half-open -> open (a probe failed)
};

/** See the file comment. Thread-safe (internal leaf mutex). */
class CircuitBreaker
{
  public:
    enum class State
    {
        kClosed,
        kOpen,
        kHalfOpen
    };

    /** Admission verdict for one request. */
    struct Decision
    {
        bool allow = true;
        bool probe = false; ///< admitted as a half-open probe
        BreakerEvent event = BreakerEvent::kNone;
    };

    explicit CircuitBreaker(BreakerOptions options = {})
        : options_(options)
    {
    }

    /**
     * Gate one request at @p now_ns. May transition open -> half-open
     * when the cooldown has elapsed; a half-open admit reserves one of
     * the bounded probe slots. An admitted probe MUST be resolved by
     * exactly one of onSuccess/onFailure/abandonProbe(probe = true).
     */
    Decision admit(uint64_t now_ns);

    /** Record a successful outcome. */
    BreakerEvent onSuccess(uint64_t now_ns, bool probe);

    /** Record a failed outcome (retriable or internal error). */
    BreakerEvent onFailure(uint64_t now_ns, bool probe);

    /** Release a probe slot whose request never produced an outcome
     * the breaker should judge (expired in queue, cancelled). */
    void abandonProbe(bool probe);

    State state() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return state_;
    }

    /** Probe slots currently reserved (tests pin <= half_open_probes). */
    unsigned probesInFlight() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return probes_in_flight_;
    }

    const BreakerOptions &options() const { return options_; }

  private:
    struct Sample
    {
        uint64_t at_ns = 0;
        bool ok = false;
    };

    void pruneLocked(uint64_t now_ns);
    BreakerEvent recordClosedLocked(uint64_t now_ns, bool ok);

    BreakerOptions options_;
    mutable std::mutex mutex_;
    State state_ = State::kClosed;
    std::deque<Sample> window_;
    unsigned window_failures_ = 0;
    uint64_t opened_at_ns_ = 0;
    unsigned probes_in_flight_ = 0;
    unsigned probe_successes_ = 0;
};

/** Global retry token bucket. Disabled by default. */
struct RetryBudgetOptions
{
    bool enabled = false;
    double tokens_per_s = 10.0; ///< refill rate
    double burst = 10.0;        ///< bucket capacity (starts full)
};

/**
 * Token bucket over the caller's clock. Refill is monotonic: a now_ns
 * that goes backwards (clock skew) refills nothing rather than
 * debiting the bucket. Thread-safe.
 */
class RetryBudget
{
  public:
    explicit RetryBudget(RetryBudgetOptions options = {})
        : options_(options), tokens_(options.burst)
    {
    }

    /** Consume one token; false when the budget is exhausted. */
    bool tryAcquire(uint64_t now_ns);

    /** Current token level (refilled to @p now_ns). */
    double level(uint64_t now_ns) const;

    uint64_t granted() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return granted_;
    }

    uint64_t denied() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return denied_;
    }

    const RetryBudgetOptions &options() const { return options_; }

  private:
    void refillLocked(uint64_t now_ns) const;

    RetryBudgetOptions options_;
    mutable std::mutex mutex_;
    mutable double tokens_ = 0.0;
    mutable uint64_t last_refill_ns_ = 0;
    uint64_t granted_ = 0;
    uint64_t denied_ = 0;
};

/** Hedged-request knobs. Disabled by default. */
struct HedgeOptions
{
    bool enabled = false;
    /** Launch a duplicate attempt when the primary has not completed
     * after this long; the first result wins and the loser is
     * cancelled. In virtual-time mode hedging is *modeled*: a
     * chaos-stalled attempt whose stall exceeds the delay is charged
     * delay + service time and logged as a hedge win. */
    uint64_t delay_ns = 50'000'000;
};

/** Per-backend health scoring / quarantine knobs. Disabled by default. */
struct HealthOptions
{
    bool enabled = false;
    /** Consecutive failed attempts on one worker that quarantine it:
     * its backend is recycled and it sits out quarantine_ns before
     * taking the next request. */
    unsigned quarantine_after = 3;
    uint64_t quarantine_ns = 500'000'000;
};

} // namespace mixgemm

#endif // MIXGEMM_SERVE_RESILIENCE_H
