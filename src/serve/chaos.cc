#include "serve/chaos.h"

#include "common/random.h"

namespace mixgemm
{

namespace
{

/// Mix one coordinate into a seed (splitmix-style; the Rng's own
/// splitmix seeding diffuses the result further).
uint64_t
mixSeed(uint64_t seed, uint64_t value)
{
    seed ^= value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
    return seed;
}

// Domain tags keep the three decision families statistically
// independent even for colliding coordinates.
constexpr uint64_t kAttemptDomain = 0xa77e3u;
constexpr uint64_t kSubmitDomain = 0x5ab31u;
constexpr uint64_t kStoreDomain = 0x57093u;

} // namespace

ChaosEngine::ChaosEngine(uint64_t seed, ChaosScenario scenario)
    : seed_(seed), scenario_(std::move(scenario))
{
}

bool
ChaosEngine::enabled() const
{
    return scenario_.throw_prob > 0.0 || scenario_.stall_prob > 0.0 ||
           scenario_.transient_prob > 0.0 ||
           scenario_.queue_delay_prob > 0.0 ||
           scenario_.clock_skew_prob > 0.0 ||
           scenario_.store_fault_prob > 0.0;
}

bool
ChaosEngine::active(uint64_t now_ns) const
{
    if (scenario_.inject_until_ns == 0)
        return true;
    const uint64_t elapsed =
        now_ns > epoch_ns_ ? now_ns - epoch_ns_ : 0;
    return elapsed < scenario_.inject_until_ns;
}

void
ChaosEngine::armEpoch(uint64_t now_ns)
{
    if (epoch_armed_)
        return;
    epoch_armed_ = true;
    epoch_ns_ = now_ns;
}

ChaosAttemptPlan
ChaosEngine::planAttempt(uint64_t seq, unsigned attempt, unsigned tier,
                         uint64_t now_ns) const
{
    ChaosAttemptPlan plan;
    if (!active(now_ns))
        return plan;
    if (scenario_.target_tier >= 0 &&
        tier != static_cast<unsigned>(scenario_.target_tier))
        return plan;
    // Private Rng per (seq, attempt); draws in fixed order, so the plan
    // never depends on which thread asks or in what order.
    Rng rng(mixSeed(mixSeed(mixSeed(seed_, kAttemptDomain), seq),
                    attempt));
    const double u_throw = rng.uniformReal();
    const double u_stall = rng.uniformReal();
    const double u_transient = rng.uniformReal();
    if (u_throw < scenario_.throw_prob) {
        plan.action = ChaosAttemptPlan::Action::kThrow;
    } else if (u_stall < scenario_.stall_prob) {
        plan.action = ChaosAttemptPlan::Action::kStall;
        plan.stall_ns = scenario_.stall_ns;
    } else if (u_transient < scenario_.transient_prob) {
        plan.action = ChaosAttemptPlan::Action::kTransient;
    }
    return plan;
}

ChaosSubmitPlan
ChaosEngine::planSubmit(uint64_t seq, uint64_t now_ns) const
{
    ChaosSubmitPlan plan;
    if (!active(now_ns))
        return plan;
    Rng rng(mixSeed(mixSeed(seed_, kSubmitDomain), seq));
    const double u_delay = rng.uniformReal();
    const double u_skew = rng.uniformReal();
    if (u_delay < scenario_.queue_delay_prob)
        plan.delay_ns = scenario_.queue_delay_ns;
    if (u_skew < scenario_.clock_skew_prob)
        plan.skew_ns = scenario_.clock_skew_ns;
    return plan;
}

bool
ChaosEngine::planStoreFault(uint64_t load_index) const
{
    if (scenario_.store_fault_prob <= 0.0)
        return false;
    Rng rng(mixSeed(mixSeed(seed_, kStoreDomain), load_index));
    return rng.uniformReal() < scenario_.store_fault_prob;
}

ChaosCounts
ChaosEngine::counts() const
{
    ChaosCounts counts;
    counts.throws = throws_.load(std::memory_order_relaxed);
    counts.stalls = stalls_.load(std::memory_order_relaxed);
    counts.transients = transients_.load(std::memory_order_relaxed);
    counts.arrival_delays =
        arrival_delays_.load(std::memory_order_relaxed);
    counts.clock_skews = clock_skews_.load(std::memory_order_relaxed);
    counts.store_faults = store_faults_.load(std::memory_order_relaxed);
    return counts;
}

Expected<ChaosProfile>
chaosProfileByName(const std::string &name, uint64_t duration_ns)
{
    ChaosProfile profile;
    ChaosScenario &s = profile.scenario;
    s.name = name;

    // Every profile arms the breaker and the retry budget — they are
    // the mechanisms the scenarios exist to exercise.
    profile.breaker.enabled = true;
    profile.breaker.window_ns = duration_ns / 10;
    profile.breaker.min_samples = 8;
    profile.breaker.failure_threshold = 0.5;
    profile.breaker.open_ns = duration_ns / 20;
    profile.breaker.half_open_probes = 2;
    profile.breaker.close_after = 2;
    profile.retry_budget.enabled = true;
    profile.retry_budget.tokens_per_s = 50.0;
    profile.retry_budget.burst = 20.0;

    if (name == "rung-failure") {
        // Rung 0 fails every attempt for the first 40 % of the run:
        // the breaker must open (fast-fail instead of queueing behind
        // the dead rung) and half-open probes must close it once the
        // injection window ends.
        s.transient_prob = 1.0;
        s.target_tier = 0;
        s.inject_until_ns = duration_ns * 2 / 5;
    } else if (name == "flaky-backend") {
        s.transient_prob = 0.05;
        s.throw_prob = 0.01;
    } else if (name == "storm") {
        s.queue_delay_prob = 0.3;
        s.queue_delay_ns = 2'000'000;
        s.clock_skew_prob = 0.1;
        s.clock_skew_ns = 500'000;
        s.transient_prob = 0.05;
    } else if (name == "stall-hedge") {
        s.stall_prob = 0.05;
        s.stall_ns = 20'000'000;
        profile.hedge.enabled = true;
        profile.hedge.delay_ns = 2'000'000;
    } else if (name == "stall-crash") {
        s.stall_prob = 0.03;
        s.stall_ns = 10'000'000;
        s.throw_prob = 0.03;
        profile.health.enabled = true;
        profile.health.quarantine_after = 3;
        profile.health.quarantine_ns = duration_ns / 20;
    } else {
        return Status::invalidArgument(
            strCat("unknown chaos scenario '", name, "' (expected one "
                   "of ", chaosScenarioNames(), ")"));
    }
    return profile;
}

std::string
chaosScenarioNames()
{
    return "rung-failure, flaky-backend, storm, stall-hedge, "
           "stall-crash";
}

} // namespace mixgemm
