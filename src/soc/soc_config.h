/**
 * @file
 * SoC configuration presets (Section IV-A).
 *
 * The evaluation platform is an edge RISC-V SoC: a single-core, 7-stage,
 * in-order, single-issue RV64G pipeline at 1.2 GHz with 32 KB L1d and
 * 512 KB L2, hosting the μ-engine in its execution stage. Presets are
 * also provided for the two commercial comparison processors the paper
 * measures baselines on (SiFive U740 for OpenBLAS FP32, Arm Cortex-A53
 * for GEMMLowp); those two are used only by the coarse baseline models
 * in src/baselines.
 */

#ifndef MIXGEMM_SOC_SOC_CONFIG_H
#define MIXGEMM_SOC_SOC_CONFIG_H

#include <cstdint>
#include <string>

namespace mixgemm
{

/** One cache level. */
struct CacheConfig
{
    uint64_t size_bytes = 32 * 1024;
    unsigned line_bytes = 64;
    unsigned associativity = 8;
    unsigned hit_latency = 2; ///< load-use latency on a hit, cycles

    /** Number of sets; size must divide evenly. */
    uint64_t sets() const;

    /** @throws FatalError on non-power-of-two or inconsistent geometry. */
    void validate() const;
};

/** Functional-unit and pipeline timing of the in-order core. */
struct CoreTimings
{
    unsigned alu_latency = 1;
    unsigned mul_latency = 3;   ///< 64-bit integer multiply
    // The edge core's FP64 units are modelled as not fully pipelined
    // (initiation interval > 1), typical of area-constrained in-order
    // cores; this is what prices the DGEMM baseline of Fig. 6.
    unsigned fmul_latency = 5;  ///< FP64 multiply result latency
    unsigned fmul_interval = 4; ///< FP64 multiply initiation interval
    unsigned fadd_latency = 4;
    unsigned fadd_interval = 2;
    unsigned branch_penalty = 1; ///< taken-branch bubble, cycles
};

/** μ-engine structural parameters (Table I). */
struct UEngineConfig
{
    unsigned srcbuf_depth = 16; ///< Source Buffer entries (μ-vectors)
    unsigned accmem_slots = 16; ///< AccMem capacity (mr * nr)
    unsigned pipeline_depth = 4; ///< DSU/DCU/MUL/DFU stages before AccMem
    /**
     * Multipliers driven in parallel (Section III-B scalability: on
     * SIMD-capable cores the DSU/DCU select and convert a wider
     * cluster, partitioning it across all the FU multipliers; Source
     * Buffers then hold correspondingly wider μ-vector bundles).
     */
    unsigned multipliers = 1;
};

/** Full SoC description. */
struct SoCConfig
{
    std::string name = "sargantana-mixgemm";
    double freq_ghz = 1.2;
    CacheConfig l1d{32 * 1024, 64, 8, 2};
    CacheConfig l2{512 * 1024, 64, 8, 12};
    unsigned mem_latency = 80; ///< DRAM access latency, cycles
    CoreTimings core;
    UEngineConfig uengine;

    void validate() const;

    /** The paper's evaluation SoC (Sargantana-like RV64 + μ-engine). */
    static SoCConfig sargantana();

    /**
     * The reduced-cache variant explored in Section IV-B
     * (16 KB L1 / 64 KB L2, -53 % SoC area).
     */
    static SoCConfig sargantanaSmallCaches();

    /** SiFive U740-like preset (FP32 OpenBLAS baseline host). */
    static SoCConfig sifiveU740();

    /** Arm Cortex-A53-like preset (GEMMLowp baseline host). */
    static SoCConfig cortexA53();
};

} // namespace mixgemm

#endif // MIXGEMM_SOC_SOC_CONFIG_H
