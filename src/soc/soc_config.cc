#include "soc/soc_config.h"

#include "common/bitutils.h"
#include "common/logging.h"

namespace mixgemm
{

namespace
{

bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

uint64_t
CacheConfig::sets() const
{
    return size_bytes / (uint64_t{line_bytes} * associativity);
}

void
CacheConfig::validate() const
{
    if (!isPowerOfTwo(size_bytes) || !isPowerOfTwo(line_bytes))
        fatal("CacheConfig: size and line must be powers of two");
    if (associativity == 0 ||
        size_bytes % (uint64_t{line_bytes} * associativity) != 0)
        fatal("CacheConfig: size not divisible by line * associativity");
    if (!isPowerOfTwo(sets()))
        fatal("CacheConfig: set count must be a power of two");
}

void
SoCConfig::validate() const
{
    l1d.validate();
    l2.validate();
    if (freq_ghz <= 0.0)
        fatal("SoCConfig: frequency must be positive");
    if (uengine.srcbuf_depth == 0 || uengine.accmem_slots == 0)
        fatal("SoCConfig: μ-engine structures must be non-empty");
}

SoCConfig
SoCConfig::sargantana()
{
    return SoCConfig{};
}

SoCConfig
SoCConfig::sargantanaSmallCaches()
{
    SoCConfig c;
    c.name = "sargantana-mixgemm-small";
    c.l1d.size_bytes = 16 * 1024;
    c.l2.size_bytes = 64 * 1024;
    return c;
}

SoCConfig
SoCConfig::sifiveU740()
{
    SoCConfig c;
    c.name = "sifive-u740";
    c.freq_ghz = 1.2;
    c.l1d = CacheConfig{32 * 1024, 64, 8, 2};
    c.l2 = CacheConfig{2 * 1024 * 1024, 64, 16, 14};
    c.mem_latency = 90;
    return c;
}

SoCConfig
SoCConfig::cortexA53()
{
    SoCConfig c;
    c.name = "cortex-a53";
    c.freq_ghz = 1.2;
    c.l1d = CacheConfig{32 * 1024, 64, 4, 2};
    c.l2 = CacheConfig{512 * 1024, 64, 16, 12};
    c.mem_latency = 90;
    return c;
}

} // namespace mixgemm
