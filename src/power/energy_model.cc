#include "power/energy_model.h"

#include "common/bitutils.h"
#include "common/logging.h"
#include "tensor/packing.h"

namespace mixgemm
{

EnergyModel::EnergyModel(const SoCConfig &soc, EnergyParams params)
    : soc_(soc), params_(params)
{
    soc.validate();
}

EnergyReport
EnergyModel::mixGemmEnergy(const BsGeometry &geometry,
                           uint64_t engine_cycles, uint64_t pairs,
                           uint64_t total_cycles,
                           uint64_t total_ops) const
{
    if (total_cycles == 0)
        fatal("EnergyModel: zero execution time");
    // Elements processed: the DSU/DCU touch every narrow element, so
    // their energy scales with MACs while the multiplier/DFU/adder
    // toggle once per engine cycle — which is why efficiency rises
    // sub-linearly as data sizes shrink.
    const double macs = static_cast<double>(engine_cycles) *
                        geometry.macsPerCycle();
    const double dynamic_pj =
        static_cast<double>(engine_cycles) *
            (params_.mul64_pj + params_.pipeline_pj + params_.accmem_pj) +
        macs * params_.per_mac_pj +
        static_cast<double>(pairs) * params_.srcbuf_pj;
    const double leakage_pj =
        static_cast<double>(total_cycles) * params_.leakage_pj_per_cycle;
    const double energy_pj = dynamic_pj + leakage_pj;

    EnergyReport r;
    r.energy_uj = energy_pj * 1e-6;
    const double seconds =
        static_cast<double>(total_cycles) / (soc_.freq_ghz * 1e9);
    r.avg_power_mw = energy_pj * 1e-12 / seconds * 1e3;
    // GOPS/W == ops per nanojoule.
    r.gops_per_watt = static_cast<double>(total_ops) / energy_pj * 1e3;
    return r;
}

EnergyReport
EnergyModel::mixGemmEnergyFromShape(const BsGeometry &geometry,
                                    uint64_t m, uint64_t n, uint64_t k,
                                    uint64_t total_cycles) const
{
    // Accumulation groups: one per (k group, output cell) with the
    // default 4 x 4 register tiles (edge tiles issue the full walk).
    const uint64_t cell_groups = uint64_t{kGroupCount(k, geometry)} *
                                 divCeil(m, 4) * divCeil(n, 4) * 16;
    const uint64_t engine_cycles = cell_groups * geometry.group_cycles;
    const uint64_t pairs = cell_groups * geometry.group_pairs;
    return mixGemmEnergy(geometry, engine_cycles, pairs, total_cycles,
                         2 * m * n * k);
}

} // namespace mixgemm
