/**
 * @file
 * Parametric area model of the μ-engine and SoC (Section IV-C,
 * Table II, Fig. 8).
 *
 * The paper implements the SoC in GF 22FDX and reports post-PnR areas;
 * we substitute a parametric model calibrated so the default
 * configuration (16-entry Source Buffers, 16-slot AccMem, 64-bit
 * datapath) reproduces Table II exactly:
 *
 *   Source Buffers 4934.63 μm², DSU 1094.45, DCU 2832.46, DFU 1842.25,
 *   Adder 741.58, AccMem 1214.35, Control Unit 981.43
 *   -> μ-engine total 13641.14 μm² = 1.00 % of the 1.96 mm² SoC.
 *
 * Scaling rules: buffer-like structures (Source Buffers, AccMem) scale
 * with capacity; the Source Buffers additionally carry a selection
 * network that grows superlinearly with depth, calibrated to the
 * paper's measured +67.6 % μ-engine area from depth 16 to 32.
 * Datapath units (DSU/DCU/DFU/Adder) scale with multiplier width.
 */

#ifndef MIXGEMM_POWER_AREA_MODEL_H
#define MIXGEMM_POWER_AREA_MODEL_H

#include <string>
#include <vector>

#include "soc/soc_config.h"

namespace mixgemm
{

/** Area of one μ-engine component. */
struct ComponentArea
{
    std::string name;
    double um2 = 0.0;          ///< area in μm²
    double soc_overhead = 0.0; ///< fraction of total SoC area
};

/** μ-engine and SoC area breakdown. */
class AreaModel
{
  public:
    /**
     * @param uengine μ-engine structural parameters
     * @param mul_width datapath (multiplier) width in bits
     */
    explicit AreaModel(const UEngineConfig &uengine = UEngineConfig{},
                       unsigned mul_width = 64);

    /** Per-component breakdown in Table II order. */
    std::vector<ComponentArea> breakdown() const;

    /** Total μ-engine area in μm². */
    double uengineArea() const;

    /** Total SoC area in mm² (core + caches + uncore + IO pads). */
    double socArea() const;

    /**
     * SoC logic area in mm² (without the IO pad ring) — the
     * denominator of Table II's overhead percentages.
     */
    double socLogicArea() const;

    /** μ-engine share of the SoC logic area (Table II: 1.00 %). */
    double uengineOverhead() const;

    /**
     * SoC area in mm² for reduced caches (Section IV-B reports -53 %
     * when moving to 16 KB L1 + 64 KB L2).
     */
    static double socAreaForCaches(uint64_t l1_bytes, uint64_t l2_bytes);

  private:
    UEngineConfig uengine_;
    unsigned mul_width_;
};

} // namespace mixgemm

#endif // MIXGEMM_POWER_AREA_MODEL_H
