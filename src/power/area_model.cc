#include "power/area_model.h"

#include <cmath>

#include "common/logging.h"

namespace mixgemm
{

namespace
{

// Table II reference areas (μm²) at the default configuration:
// 16-entry Source Buffers, 16-slot AccMem, 64-bit datapath.
constexpr double kSrcBufRef = 4934.63;
constexpr double kDsuRef = 1094.45;
constexpr double kDcuRef = 2832.46;
constexpr double kDfuRef = 1842.25;
constexpr double kAdderRef = 741.58;
constexpr double kAccMemRef = 1214.35;
constexpr double kControlRef = 981.43;

// Source-Buffer depth exponent, fit to the paper's +67.6 % μ-engine
// area from depth 16 to 32 (the operand selection network grows faster
// than the storage itself).
constexpr double kSrcBufDepthExp = 1.5205;

// SoC composition in mm² (GF 22FDX, Fig. 8): cache SRAM is priced per
// byte and the remainder (core logic, pad ring, uncore) is fixed,
// calibrated to the 1.96 mm² total and the -53 % small-cache variant.
constexpr double kSocBaseMm2 = 0.705;
constexpr double kSramMm2PerByte = 2.24e-3 / 1024.0;
constexpr double kL1iBytes = 16.0 * 1024.0;
// IO pad ring share of kSocBaseMm2; Table II's overhead percentages
// are computed against the SoC *logic* area (1.364 mm²), which is how
// 13641 μm² reads as 1.00 %.
constexpr double kPadRingMm2 = 0.596;

} // namespace

AreaModel::AreaModel(const UEngineConfig &uengine, unsigned mul_width)
    : uengine_(uengine), mul_width_(mul_width)
{
    if (mul_width < 8 || mul_width > 512)
        fatal("AreaModel: implausible multiplier width");
}

std::vector<ComponentArea>
AreaModel::breakdown() const
{
    const double width_scale = mul_width_ / 64.0;
    const double srcbuf =
        kSrcBufRef *
        std::pow(uengine_.srcbuf_depth / 16.0, kSrcBufDepthExp) *
        width_scale;
    const double accmem = kAccMemRef * (uengine_.accmem_slots / 16.0);
    const double soc_um2 = socLogicArea() * 1e6;

    std::vector<ComponentArea> parts{
        {"Src Buffers", srcbuf, 0.0},
        {"DSU", kDsuRef * width_scale, 0.0},
        {"DCU", kDcuRef * width_scale, 0.0},
        {"DFU", kDfuRef * width_scale, 0.0},
        {"Adder", kAdderRef * width_scale, 0.0},
        {"AccMem", accmem, 0.0},
        {"Control Unit", kControlRef, 0.0},
    };
    for (auto &p : parts)
        p.soc_overhead = p.um2 / soc_um2;
    return parts;
}

double
AreaModel::uengineArea() const
{
    double total = 0.0;
    for (const auto &p : breakdown())
        total += p.um2;
    return total;
}

double
AreaModel::socArea() const
{
    const SoCConfig soc = SoCConfig::sargantana();
    return socAreaForCaches(soc.l1d.size_bytes, soc.l2.size_bytes);
}

double
AreaModel::socLogicArea() const
{
    return socArea() - kPadRingMm2;
}

double
AreaModel::uengineOverhead() const
{
    return uengineArea() / (socLogicArea() * 1e6);
}

double
AreaModel::socAreaForCaches(uint64_t l1_bytes, uint64_t l2_bytes)
{
    return kSocBaseMm2 +
           (static_cast<double>(l1_bytes) + kL1iBytes +
            static_cast<double>(l2_bytes)) *
               kSramMm2PerByte;
}

} // namespace mixgemm
