/**
 * @file
 * Technology-node area scaling in the spirit of DeepScaleTool [61],
 * used by the Table III comparison to normalize related-work areas
 * (e.g., Eyeriss at 65 nm, UNPU at 65 nm) to the paper's 22 nm node.
 */

#ifndef MIXGEMM_POWER_TECH_SCALING_H
#define MIXGEMM_POWER_TECH_SCALING_H

namespace mixgemm
{

/**
 * Area scaling factor from @p from_nm to @p to_nm: multiply an area at
 * from_nm by the returned factor to estimate it at to_nm. Factors
 * follow published dense-logic scaling data between the supported
 * nodes {65, 45, 32, 22, 16} nm.
 * @throws FatalError for unsupported nodes.
 */
double areaScaleFactor(unsigned from_nm, unsigned to_nm);

/** Scale an area in mm² between nodes. */
double scaleArea(double area_mm2, unsigned from_nm, unsigned to_nm);

} // namespace mixgemm

#endif // MIXGEMM_POWER_TECH_SCALING_H
