/**
 * @file
 * Energy/power model of Mix-GEMM execution (Section IV-C).
 *
 * The paper computes energy efficiency from post-PnR gate-level
 * simulation, "considering the total power consumption of the μ-engine
 * and the processor multiplier". We substitute an activity-based model:
 * every μ-engine cycle toggles the 64-bit multiplier plus the
 * DSU/DCU/DFU/adder pipeline and an AccMem access, and Source Buffer
 * reads/writes are charged per bs.ip. Per-event energies are typical
 * GF22 values calibrated so the six CNNs land in the paper's
 * 477.5 GOPS/W - 1.3 TOPS/W band, with efficiency rising as data sizes
 * shrink (more MACs per multiplier activation).
 */

#ifndef MIXGEMM_POWER_ENERGY_MODEL_H
#define MIXGEMM_POWER_ENERGY_MODEL_H

#include <cstdint>

#include "bs/geometry.h"
#include "soc/soc_config.h"

namespace mixgemm
{

/** Per-event energies in picojoules (22 nm class). */
struct EnergyParams
{
    double mul64_pj = 4.5;     ///< 64-bit multiply
    double pipeline_pj = 1.6;  ///< DFU + adder + control, per cycle
    double accmem_pj = 0.5;    ///< AccMem read-modify-write
    double srcbuf_pj = 0.6;    ///< Source Buffer write + read, per pair
    double per_mac_pj = 0.7;   ///< DSU select + DCU convert, per element
    double leakage_pj_per_cycle = 0.4; ///< μ-engine + multiplier leakage
};

/** Energy/power/efficiency of one (portion of a) GEMM execution. */
struct EnergyReport
{
    double energy_uj = 0.0;   ///< total energy in μJ
    double avg_power_mw = 0.0;///< over the execution interval
    double gops_per_watt = 0.0;
};

/** Activity-based energy model. */
class EnergyModel
{
  public:
    explicit EnergyModel(const SoCConfig &soc,
                         EnergyParams params = EnergyParams{});

    /**
     * Energy of a Mix-GEMM execution.
     *
     * @param geometry     data-size geometry (sets MACs per activation)
     * @param engine_cycles μ-engine busy cycles (multiplier activations)
     * @param pairs        bs.ip count (Source Buffer activity)
     * @param total_cycles end-to-end execution cycles (leakage interval)
     * @param total_ops    2 * m * n * k
     */
    EnergyReport mixGemmEnergy(const BsGeometry &geometry,
                               uint64_t engine_cycles, uint64_t pairs,
                               uint64_t total_cycles,
                               uint64_t total_ops) const;

    /**
     * Convenience: derive engine cycles and pair counts from a GEMM's
     * shape, then price it.
     */
    EnergyReport mixGemmEnergyFromShape(const BsGeometry &geometry,
                                        uint64_t m, uint64_t n,
                                        uint64_t k,
                                        uint64_t total_cycles) const;

    const EnergyParams &params() const { return params_; }

  private:
    SoCConfig soc_;
    EnergyParams params_;
};

} // namespace mixgemm

#endif // MIXGEMM_POWER_ENERGY_MODEL_H
