#include "power/tech_scaling.h"

#include <map>

#include "common/logging.h"

namespace mixgemm
{

namespace
{

/**
 * Relative dense-logic area per gate, normalized to 65 nm = 1.0.
 * Derived from published foundry density data (the deep-submicron
 * scaling DeepScaleTool tabulates): each step scales by roughly the
 * lithographic factor squared, with sub-28 nm nodes gaining less than
 * ideal.
 */
const std::map<unsigned, double> kRelativeArea{
    {65, 1.0}, {45, 0.48}, {32, 0.25}, {28, 0.19},
    {22, 0.115}, {16, 0.062},
};

} // namespace

double
areaScaleFactor(unsigned from_nm, unsigned to_nm)
{
    const auto from = kRelativeArea.find(from_nm);
    const auto to = kRelativeArea.find(to_nm);
    if (from == kRelativeArea.end() || to == kRelativeArea.end())
        fatal(strCat("areaScaleFactor: unsupported node ", from_nm,
                     " -> ", to_nm));
    return to->second / from->second;
}

double
scaleArea(double area_mm2, unsigned from_nm, unsigned to_nm)
{
    return area_mm2 * areaScaleFactor(from_nm, to_nm);
}

} // namespace mixgemm
