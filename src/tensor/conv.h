/**
 * @file
 * Convolution lowering to GEMM (Section II-A).
 *
 * The paper follows the im2row/im2col family: each output pixel of a
 * convolution becomes one row of the GEMM A operand (the flattened
 * receptive field), and each output channel's flattened filter becomes
 * one column of B, so conv == A(m x k) * B(k x n) with
 *   m = batch * out_h * out_w, k = (in_c / groups) * kh * kw, n = out_c.
 * Grouped convolutions (MobileNet/EfficientNet depthwise layers) lower
 * to `groups` independent GEMMs over channel slices.
 *
 * A direct nested-loop convolution is provided as the correctness
 * reference for the lowering.
 */

#ifndef MIXGEMM_TENSOR_CONV_H
#define MIXGEMM_TENSOR_CONV_H

#include <cstdint>
#include <string>

#include "tensor/tensor.h"

namespace mixgemm
{

/** Static description of one convolution layer. */
struct ConvSpec
{
    unsigned in_c = 1;
    unsigned in_h = 1;
    unsigned in_w = 1;
    unsigned out_c = 1;
    unsigned kh = 1;
    unsigned kw = 1;
    unsigned stride = 1;
    unsigned pad = 0;
    unsigned groups = 1;

    unsigned outH() const { return (in_h + 2 * pad - kh) / stride + 1; }
    unsigned outW() const { return (in_w + 2 * pad - kw) / stride + 1; }

    /** GEMM m dimension for one image (rows = output pixels). */
    uint64_t gemmM() const { return uint64_t{outH()} * outW(); }
    /** GEMM k dimension (per group). */
    uint64_t gemmK() const { return uint64_t{in_c / groups} * kh * kw; }
    /** GEMM n dimension (per group). */
    uint64_t gemmN() const { return out_c / groups; }

    /** Multiply-accumulate count for one image (all groups). */
    uint64_t macs() const { return gemmM() * gemmK() * gemmN() * groups; }

    /** Validate divisibility and kernel-fits-input constraints. */
    void validate() const;

    std::string toString() const;
};

/**
 * im2row lowering for one group: builds the A operand of the GEMM.
 *
 * @param input  [in_c x in_h x in_w] single-image activation tensor
 * @param spec   layer description (validated)
 * @param group  group index in [0, spec.groups)
 * @return       [gemmM() x gemmK()] matrix; padded taps read as 0
 */
Tensor<double> im2row(const Tensor<double> &input, const ConvSpec &spec,
                      unsigned group = 0);

/**
 * im2col lowering for one group: the column-major sibling of im2row
 * (each *column* is one output pixel's flattened receptive field).
 * Returns the [gemmK() x gemmM()] transpose of im2row(); kept for
 * libraries that multiply W(n x k) * im2col(k x m) instead.
 */
Tensor<double> im2col(const Tensor<double> &input, const ConvSpec &spec,
                      unsigned group = 0);

/**
 * Flatten the weights of one group into the B operand of the GEMM.
 *
 * @param weights [out_c x (in_c/groups) x kh x kw] filter tensor
 * @return        [gemmK() x gemmN()] matrix (column per output channel)
 */
Tensor<double> weightsToGemmB(const Tensor<double> &weights,
                              const ConvSpec &spec, unsigned group = 0);

/**
 * Direct convolution reference (single image, NCHW, no dilation).
 *
 * @param input   [in_c x in_h x in_w]
 * @param weights [out_c x (in_c/groups) x kh x kw]
 * @return        [out_c x outH() x outW()]
 */
Tensor<double> directConv(const Tensor<double> &input,
                          const Tensor<double> &weights,
                          const ConvSpec &spec);

/**
 * Fold a GEMM output back into the [out_c x outH() x outW()] layout for
 * one group. C is [gemmM() x gemmN()] with rows in row-major pixel order.
 */
void gemmOutputToConv(const Tensor<double> &c, const ConvSpec &spec,
                      unsigned group, Tensor<double> &output);

} // namespace mixgemm

#endif // MIXGEMM_TENSOR_CONV_H
