#include "tensor/conv.h"

#include "common/logging.h"

namespace mixgemm
{

void
ConvSpec::validate() const
{
    if (groups == 0 || in_c % groups != 0 || out_c % groups != 0)
        fatal(strCat("ConvSpec: channels not divisible by groups in ",
                     toString()));
    if (stride == 0)
        fatal("ConvSpec: stride must be positive");
    if (in_h + 2 * pad < kh || in_w + 2 * pad < kw)
        fatal(strCat("ConvSpec: kernel larger than padded input in ",
                     toString()));
}

std::string
ConvSpec::toString() const
{
    return strCat("conv ", in_c, "x", in_h, "x", in_w, " -> ", out_c, " k",
                  kh, "x", kw, " s", stride, " p", pad, " g", groups);
}

Tensor<double>
im2row(const Tensor<double> &input, const ConvSpec &spec, unsigned group)
{
    spec.validate();
    if (group >= spec.groups)
        fatal("im2row: group index out of range");
    const unsigned cg = spec.in_c / spec.groups;
    const unsigned c0 = group * cg;
    const unsigned oh = spec.outH();
    const unsigned ow = spec.outW();
    Tensor<double> a({uint64_t{oh} * ow, spec.gemmK()});

    size_t row = 0;
    for (unsigned y = 0; y < oh; ++y) {
        for (unsigned x = 0; x < ow; ++x, ++row) {
            size_t col = 0;
            for (unsigned c = 0; c < cg; ++c) {
                for (unsigned ky = 0; ky < spec.kh; ++ky) {
                    for (unsigned kx = 0; kx < spec.kw; ++kx, ++col) {
                        const long iy = static_cast<long>(y) * spec.stride +
                                        ky - spec.pad;
                        const long ix = static_cast<long>(x) * spec.stride +
                                        kx - spec.pad;
                        double v = 0.0;
                        if (iy >= 0 && iy < static_cast<long>(spec.in_h) &&
                            ix >= 0 && ix < static_cast<long>(spec.in_w)) {
                            v = input.at(0, c0 + c,
                                         static_cast<size_t>(iy),
                                         static_cast<size_t>(ix));
                        }
                        a.at(row, col) = v;
                    }
                }
            }
        }
    }
    return a;
}

Tensor<double>
im2col(const Tensor<double> &input, const ConvSpec &spec, unsigned group)
{
    const auto rows = im2row(input, spec, group);
    Tensor<double> cols({rows.dim(1), rows.dim(0)});
    for (size_t r = 0; r < rows.dim(0); ++r)
        for (size_t c = 0; c < rows.dim(1); ++c)
            cols.at(c, r) = rows.at(r, c);
    return cols;
}

Tensor<double>
weightsToGemmB(const Tensor<double> &weights, const ConvSpec &spec,
               unsigned group)
{
    spec.validate();
    if (group >= spec.groups)
        fatal("weightsToGemmB: group index out of range");
    const unsigned cg = spec.in_c / spec.groups;
    const unsigned og = spec.out_c / spec.groups;
    const unsigned o0 = group * og;
    Tensor<double> b({spec.gemmK(), spec.gemmN()});
    for (unsigned o = 0; o < og; ++o) {
        size_t row = 0;
        for (unsigned c = 0; c < cg; ++c)
            for (unsigned ky = 0; ky < spec.kh; ++ky)
                for (unsigned kx = 0; kx < spec.kw; ++kx, ++row)
                    b.at(row, o) = weights.at(o0 + o, c, ky, kx);
    }
    return b;
}

Tensor<double>
directConv(const Tensor<double> &input, const Tensor<double> &weights,
           const ConvSpec &spec)
{
    spec.validate();
    const unsigned cg = spec.in_c / spec.groups;
    const unsigned og = spec.out_c / spec.groups;
    const unsigned oh = spec.outH();
    const unsigned ow = spec.outW();
    Tensor<double> out({1, spec.out_c, oh, ow});
    for (unsigned g = 0; g < spec.groups; ++g) {
        for (unsigned o = 0; o < og; ++o) {
            const unsigned oc = g * og + o;
            for (unsigned y = 0; y < oh; ++y) {
                for (unsigned x = 0; x < ow; ++x) {
                    double acc = 0.0;
                    for (unsigned c = 0; c < cg; ++c) {
                        for (unsigned ky = 0; ky < spec.kh; ++ky) {
                            for (unsigned kx = 0; kx < spec.kw; ++kx) {
                                const long iy =
                                    static_cast<long>(y) * spec.stride +
                                    ky - spec.pad;
                                const long ix =
                                    static_cast<long>(x) * spec.stride +
                                    kx - spec.pad;
                                if (iy < 0 ||
                                    iy >= static_cast<long>(spec.in_h) ||
                                    ix < 0 ||
                                    ix >= static_cast<long>(spec.in_w))
                                    continue;
                                acc += input.at(0, g * cg + c,
                                                static_cast<size_t>(iy),
                                                static_cast<size_t>(ix)) *
                                       weights.at(oc, c, ky, kx);
                            }
                        }
                    }
                    out.at(0, oc, y, x) = acc;
                }
            }
        }
    }
    return out;
}

void
gemmOutputToConv(const Tensor<double> &c, const ConvSpec &spec,
                 unsigned group, Tensor<double> &output)
{
    const unsigned og = spec.out_c / spec.groups;
    const unsigned oh = spec.outH();
    const unsigned ow = spec.outW();
    size_t row = 0;
    for (unsigned y = 0; y < oh; ++y)
        for (unsigned x = 0; x < ow; ++x, ++row)
            for (unsigned o = 0; o < og; ++o)
                output.at(0, group * og + o, y, x) = c.at(row, o);
}

} // namespace mixgemm
