#include "tensor/packing.h"

#include <algorithm>
#include <limits>

#include "bs/expand.h"
#include "bs/microvector.h"
#include "common/bitutils.h"
#include "common/logging.h"
#include "trace/tracer.h"

namespace mixgemm
{

namespace
{

/**
 * Pack the k-run of one row/column into group-of-μ-vector format.
 *
 * @param fetch    fetch(k_index) returns the element at logical position
 *                 k_index (row-major A row or strided B column)
 * @param k        logical run length
 * @param words    output span of kGroupCount(k) * ku words
 */
template <typename Fetch>
void
packRun(Fetch fetch, uint64_t k, unsigned elems_per_vec, unsigned ku,
        unsigned extent, unsigned bw, bool is_signed,
        std::span<uint64_t> words)
{
    const unsigned groups = static_cast<unsigned>(divCeil(k, extent));
    std::vector<int32_t> vec_elems;
    vec_elems.reserve(elems_per_vec);
    size_t out = 0;
    for (unsigned g = 0; g < groups; ++g) {
        const uint64_t g0 = uint64_t{g} * extent;
        const unsigned real = static_cast<unsigned>(
            std::min<uint64_t>(extent, k - g0));
        for (unsigned w = 0; w < ku; ++w) {
            vec_elems.clear();
            const unsigned e0 = w * elems_per_vec;
            for (unsigned e = e0;
                 e < std::min(e0 + elems_per_vec, real); ++e)
                vec_elems.push_back(fetch(g0 + e));
            words[out++] = packMicroVector(vec_elems, bw, is_signed);
        }
    }
}

/** Process-wide packing-work counters (see packCounters()). */
std::atomic<uint64_t> g_a_packs{0};
std::atomic<uint64_t> g_b_packs{0};
std::atomic<uint64_t> g_cluster_builds{0};
std::atomic<uint64_t> g_adoptions{0};

} // namespace

PackCounters
packCounters()
{
    PackCounters snapshot;
    snapshot.a_packs = g_a_packs.load(std::memory_order_relaxed);
    snapshot.b_packs = g_b_packs.load(std::memory_order_relaxed);
    snapshot.cluster_builds =
        g_cluster_builds.load(std::memory_order_relaxed);
    snapshot.adoptions = g_adoptions.load(std::memory_order_relaxed);
    return snapshot;
}

void
WordStore::adopt(std::span<const uint64_t> words,
                 std::shared_ptr<const void> keepalive)
{
    if (!keepalive)
        fatal("WordStore::adopt: null keepalive");
    owned_.clear();
    owned_.shrink_to_fit();
    borrowed_ = words;
    keepalive_ = std::move(keepalive);
}

unsigned
kGroupCount(uint64_t k, const BsGeometry &geometry)
{
    return static_cast<unsigned>(divCeil(k, geometry.group_extent));
}

CompressedA::CompressedA(uint64_t m, uint64_t k,
                         const BsGeometry &geometry)
    : m_(m), k_(k), k_groups_(kGroupCount(k, geometry)),
      geometry_(geometry), panels_(std::make_shared<ClusterPanels>()),
      abft_(std::make_shared<AbftChecksums>())
{
    if (m == 0 || k == 0)
        fatal("CompressedA: empty matrix");
}

void
CompressedA::ensureClusterPanels() const
{
    if (panels_->built.load(std::memory_order_acquire))
        return;
    std::call_once(panels_->once, [this] {
        TRACE_SCOPE("pack", "cluster_panels_a");
        const auto plan = makeExpansionPlan(geometry_);
        panels_->words_per_group = plan.chunkCount();
        panels_->words.resize(uint64_t{m_} * k_groups_ *
                              plan.chunkCount());
        uint64_t *out = panels_->words.mutableData();
        for (uint64_t row = 0; row < m_; ++row)
            for (unsigned g = 0; g < k_groups_; ++g)
                expandGroupA(words_.data() + wordIndex(row, g, 0),
                             geometry_, plan,
                             out + (row * k_groups_ + g) *
                                       plan.chunkCount());
        g_cluster_builds.fetch_add(1, std::memory_order_relaxed);
        panels_->built.store(true, std::memory_order_release);
    });
}

CompressedA::CompressedA(std::span<const int32_t> data, uint64_t m,
                         uint64_t k, const BsGeometry &geometry)
    : CompressedA(m, k, geometry)
{
    if (data.size() != m * k)
        fatal("CompressedA: data size does not match m x k");
    TRACE_SCOPE("pack", "pack_a");
    words_.resize(uint64_t{m} * k_groups_ * geometry.kua);
    const std::span<uint64_t> out(words_.mutableData(), words_.size());
    for (uint64_t row = 0; row < m; ++row) {
        const int32_t *row_data = data.data() + row * k;
        packRun([row_data](uint64_t i) { return row_data[i]; }, k,
                geometry.elems_per_avec, geometry.kua,
                geometry.group_extent, geometry.config.bwa,
                geometry.config.a_signed,
                out.subspan(row * k_groups_ * geometry.kua,
                            uint64_t{k_groups_} * geometry.kua));
    }
    g_a_packs.fetch_add(1, std::memory_order_relaxed);
}

CompressedA
CompressedA::fromColumnMajor(std::span<const int32_t> data, uint64_t m,
                             uint64_t k, const BsGeometry &geometry)
{
    CompressedA a(m, k, geometry);
    if (data.size() != m * k)
        fatal("CompressedA: data size does not match m x k");
    TRACE_SCOPE("pack", "pack_a");
    a.words_.resize(uint64_t{m} * a.k_groups_ * geometry.kua);
    const std::span<uint64_t> out(a.words_.mutableData(),
                                  a.words_.size());
    for (uint64_t row = 0; row < m; ++row) {
        const int32_t *base = data.data() + row;
        packRun([base, m](uint64_t i) { return base[i * m]; }, k,
                geometry.elems_per_avec, geometry.kua,
                geometry.group_extent, geometry.config.bwa,
                geometry.config.a_signed,
                out.subspan(row * a.k_groups_ * geometry.kua,
                            uint64_t{a.k_groups_} * geometry.kua));
    }
    g_a_packs.fetch_add(1, std::memory_order_relaxed);
    return a;
}

uint64_t
CompressedA::wordIndex(uint64_t row, unsigned g, unsigned w) const
{
    return (row * k_groups_ + g) * geometry_.kua + w;
}

uint64_t
CompressedA::word(uint64_t row, unsigned g, unsigned w) const
{
    return words_[wordIndex(row, g, w)];
}

int32_t
CompressedA::element(uint64_t row, uint64_t k_index) const
{
    const unsigned g =
        static_cast<unsigned>(k_index / geometry_.group_extent);
    const unsigned e =
        static_cast<unsigned>(k_index - uint64_t{g} *
                                            geometry_.group_extent);
    const unsigned w = e / geometry_.elems_per_avec;
    return microVectorElement(word(row, g, w), geometry_.config.bwa,
                              geometry_.config.a_signed,
                              e % geometry_.elems_per_avec);
}

void
CompressedA::setWord(uint64_t index, uint64_t word)
{
    if (index >= words_.size())
        fatal(strCat("CompressedA::setWord: index ", index,
                     " out of range ", words_.size()));
    words_.mutableData()[index] = word;
}

void
CompressedA::resetClusterPanels()
{
    panels_ = std::make_shared<ClusterPanels>();
}

void
CompressedA::setClusterPanelWord(uint64_t index, uint64_t word)
{
    if (index >= panels_->words.size())
        fatal(strCat("CompressedA::setClusterPanelWord: index ", index,
                     " out of range ", panels_->words.size()));
    panels_->words.mutableData()[index] = word;
}

void
CompressedA::ensureAbftChecksums() const
{
    std::call_once(abft_->once, [this] {
        TRACE_SCOPE("abft", "checksums_a");
        abft_->ksums.assign(k_, 0);
        for (uint64_t row = 0; row < m_; ++row)
            for (uint64_t kk = 0; kk < k_; ++kk)
                abft_->ksums[kk] += element(row, kk);
    });
}

uint64_t
CompressedA::idealBytes() const
{
    // Fully-packed μ-vector reference: 8 bytes per elems_per_avec
    // k positions, per row.
    return static_cast<uint64_t>(
        static_cast<double>(m_) * k_ * 8.0 / geometry_.elems_per_avec);
}

CompressedB::CompressedB(uint64_t k, uint64_t n,
                         const BsGeometry &geometry)
    : k_(k), n_(n), k_groups_(kGroupCount(k, geometry)),
      geometry_(geometry), panels_(std::make_shared<ClusterPanels>()),
      abft_(std::make_shared<AbftChecksums>())
{
    if (k == 0 || n == 0)
        fatal("CompressedB: empty matrix");
}

void
CompressedB::ensureClusterPanels() const
{
    if (panels_->built.load(std::memory_order_acquire))
        return;
    std::call_once(panels_->once, [this] {
        TRACE_SCOPE("pack", "cluster_panels_b");
        const auto plan = makeExpansionPlan(geometry_);
        panels_->words_per_group = plan.chunkCount();
        panels_->words.resize(uint64_t{n_} * k_groups_ *
                              plan.chunkCount());
        uint64_t *out = panels_->words.mutableData();
        for (uint64_t col = 0; col < n_; ++col)
            for (unsigned g = 0; g < k_groups_; ++g)
                expandGroupB(words_.data() + wordIndex(col, g, 0),
                             geometry_, plan,
                             out + (col * k_groups_ + g) *
                                       plan.chunkCount());
        g_cluster_builds.fetch_add(1, std::memory_order_relaxed);
        panels_->built.store(true, std::memory_order_release);
    });
}

CompressedB
CompressedB::fromTransposed(std::span<const int32_t> data, uint64_t k,
                            uint64_t n, const BsGeometry &geometry)
{
    CompressedB b(k, n, geometry);
    if (data.size() != k * n)
        fatal("CompressedB: data size does not match k x n");
    TRACE_SCOPE("pack", "pack_b");
    b.words_.resize(uint64_t{n} * b.k_groups_ * geometry.kub);
    const std::span<uint64_t> out(b.words_.mutableData(),
                                  b.words_.size());
    for (uint64_t col = 0; col < n; ++col) {
        const int32_t *row_data = data.data() + col * k;
        packRun([row_data](uint64_t i) { return row_data[i]; }, k,
                geometry.elems_per_bvec, geometry.kub,
                geometry.group_extent, geometry.config.bwb,
                geometry.config.b_signed,
                out.subspan(col * b.k_groups_ * geometry.kub,
                            uint64_t{b.k_groups_} * geometry.kub));
    }
    g_b_packs.fetch_add(1, std::memory_order_relaxed);
    return b;
}

CompressedB::CompressedB(std::span<const int32_t> data, uint64_t k,
                         uint64_t n, const BsGeometry &geometry)
    : CompressedB(k, n, geometry)
{
    if (data.size() != k * n)
        fatal("CompressedB: data size does not match k x n");
    TRACE_SCOPE("pack", "pack_b");
    words_.resize(uint64_t{n} * k_groups_ * geometry.kub);
    const std::span<uint64_t> out(words_.mutableData(), words_.size());
    for (uint64_t col = 0; col < n; ++col) {
        const int32_t *base = data.data() + col;
        packRun([base, n](uint64_t i) { return base[i * n]; }, k,
                geometry.elems_per_bvec, geometry.kub,
                geometry.group_extent, geometry.config.bwb,
                geometry.config.b_signed,
                out.subspan(col * k_groups_ * geometry.kub,
                            uint64_t{k_groups_} * geometry.kub));
    }
    g_b_packs.fetch_add(1, std::memory_order_relaxed);
}

Expected<CompressedB>
CompressedB::adopt(uint64_t k, uint64_t n, const BsGeometry &geometry,
                   std::span<const uint64_t> words,
                   std::shared_ptr<const void> keepalive,
                   std::span<const uint64_t> panel_words,
                   unsigned panel_words_per_group)
{
    if (k == 0 || n == 0)
        return Status::invalidArgument(
            strCat("CompressedB::adopt: empty matrix (", k, " x ", n,
                   ")"));
    if (!keepalive)
        return Status::invalidArgument(
            "CompressedB::adopt: null keepalive");
    const uint64_t groups = kGroupCount(k, geometry);
    const uint64_t per_col = groups * geometry.kub;
    if (per_col == 0 ||
        n > std::numeric_limits<uint64_t>::max() / per_col)
        return Status::invalidArgument(
            strCat("CompressedB::adopt: word count overflows for n=", n,
                   " groups=", groups));
    if (words.size() != n * per_col)
        return Status::dataLoss(
            strCat("CompressedB::adopt: ", words.size(),
                   " packed words, expected ", n * per_col));
    const auto plan = makeExpansionPlan(geometry);
    if (!panel_words.empty()) {
        if (panel_words_per_group != plan.chunkCount())
            return Status::dataLoss(
                strCat("CompressedB::adopt: ", panel_words_per_group,
                       " panel words per group, geometry expands to ",
                       plan.chunkCount()));
        const uint64_t per_col_panels = groups * plan.chunkCount();
        if (per_col_panels == 0 ||
            n > std::numeric_limits<uint64_t>::max() / per_col_panels ||
            panel_words.size() != n * per_col_panels)
            return Status::dataLoss(
                strCat("CompressedB::adopt: ", panel_words.size(),
                       " panel words, expected ", n * per_col_panels));
    }
    CompressedB b(k, n, geometry);
    b.words_.adopt(words, keepalive);
    if (!panel_words.empty()) {
        b.panels_->words_per_group = panel_words_per_group;
        b.panels_->words.adopt(panel_words, std::move(keepalive));
        b.panels_->built.store(true, std::memory_order_release);
    }
    g_adoptions.fetch_add(1, std::memory_order_relaxed);
    return b;
}

uint64_t
CompressedB::wordIndex(uint64_t col, unsigned g, unsigned w) const
{
    return (col * k_groups_ + g) * geometry_.kub + w;
}

uint64_t
CompressedB::word(uint64_t col, unsigned g, unsigned w) const
{
    return words_[wordIndex(col, g, w)];
}

int32_t
CompressedB::element(uint64_t col, uint64_t k_index) const
{
    const unsigned g =
        static_cast<unsigned>(k_index / geometry_.group_extent);
    const unsigned e =
        static_cast<unsigned>(k_index - uint64_t{g} *
                                            geometry_.group_extent);
    const unsigned w = e / geometry_.elems_per_bvec;
    return microVectorElement(word(col, g, w), geometry_.config.bwb,
                              geometry_.config.b_signed,
                              e % geometry_.elems_per_bvec);
}

void
CompressedB::setWord(uint64_t index, uint64_t word)
{
    if (index >= words_.size())
        fatal(strCat("CompressedB::setWord: index ", index,
                     " out of range ", words_.size()));
    words_.mutableData()[index] = word;
}

void
CompressedB::resetClusterPanels()
{
    panels_ = std::make_shared<ClusterPanels>();
}

void
CompressedB::setClusterPanelWord(uint64_t index, uint64_t word)
{
    if (index >= panels_->words.size())
        fatal(strCat("CompressedB::setClusterPanelWord: index ", index,
                     " out of range ", panels_->words.size()));
    panels_->words.mutableData()[index] = word;
}

void
CompressedB::ensureAbftChecksums() const
{
    std::call_once(abft_->once, [this] {
        TRACE_SCOPE("abft", "checksums_b");
        abft_->ksums.assign(k_, 0);
        for (uint64_t col = 0; col < n_; ++col)
            for (uint64_t kk = 0; kk < k_; ++kk)
                abft_->ksums[kk] += element(col, kk);
    });
}

uint64_t
CompressedB::idealBytes() const
{
    return static_cast<uint64_t>(
        static_cast<double>(k_) * n_ * 8.0 / geometry_.elems_per_bvec);
}

namespace
{

/**
 * Shared boundary validation for the checked compression entry points:
 * non-empty shape, matching buffer size, and every element inside the
 * narrow format's representable range.
 */
Status
validateOperand(const char *who, std::span<const int32_t> data,
                uint64_t rows, uint64_t cols, unsigned bw,
                bool is_signed)
{
    if (rows == 0 || cols == 0)
        return Status::invalidArgument(
            strCat(who, ": empty matrix (", rows, " x ", cols, ")"));
    if (rows > std::numeric_limits<uint64_t>::max() / cols ||
        data.size() != rows * cols)
        return Status::invalidArgument(
            strCat(who, ": data size ", data.size(),
                   " does not match ", rows, " x ", cols));
    for (size_t i = 0; i < data.size(); ++i) {
        const int64_t v = data[i];
        const bool fits = is_signed ? fitsSigned(v, bw)
                                    : fitsUnsigned(v, bw);
        if (!fits)
            return Status::outOfRange(
                strCat(who, ": element ", v, " at index ", i,
                       " does not fit the ", bw, "-bit ",
                       is_signed ? "signed" : "unsigned", " format"));
    }
    return Status();
}

} // namespace

Expected<CompressedA>
tryCompressA(std::span<const int32_t> data, uint64_t m, uint64_t k,
             const BsGeometry &geometry)
{
    if (Status s = validateOperand("tryCompressA", data, m, k,
                                   geometry.config.bwa,
                                   geometry.config.a_signed);
        !s.ok())
        return s;
    return CompressedA(data, m, k, geometry);
}

Expected<CompressedB>
tryCompressB(std::span<const int32_t> data, uint64_t k, uint64_t n,
             const BsGeometry &geometry)
{
    if (Status s = validateOperand("tryCompressB", data, k, n,
                                   geometry.config.bwb,
                                   geometry.config.b_signed);
        !s.ok())
        return s;
    return CompressedB(data, k, n, geometry);
}

} // namespace mixgemm
