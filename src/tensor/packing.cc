#include "tensor/packing.h"

#include <algorithm>
#include <limits>

#include "bs/expand.h"
#include "bs/microvector.h"
#include "common/bitutils.h"
#include "common/logging.h"
#include "trace/tracer.h"

namespace mixgemm
{

namespace
{

/**
 * Pack the k-run of one row/column into group-of-μ-vector format.
 *
 * @param fetch    fetch(k_index) returns the element at logical position
 *                 k_index (row-major A row or strided B column)
 * @param k        logical run length
 * @param words    output span of kGroupCount(k) * ku words
 */
template <typename Fetch>
void
packRun(Fetch fetch, uint64_t k, unsigned elems_per_vec, unsigned ku,
        unsigned extent, unsigned bw, bool is_signed,
        std::span<uint64_t> words)
{
    const unsigned groups = static_cast<unsigned>(divCeil(k, extent));
    std::vector<int32_t> vec_elems;
    vec_elems.reserve(elems_per_vec);
    size_t out = 0;
    for (unsigned g = 0; g < groups; ++g) {
        const uint64_t g0 = uint64_t{g} * extent;
        const unsigned real = static_cast<unsigned>(
            std::min<uint64_t>(extent, k - g0));
        for (unsigned w = 0; w < ku; ++w) {
            vec_elems.clear();
            const unsigned e0 = w * elems_per_vec;
            for (unsigned e = e0;
                 e < std::min(e0 + elems_per_vec, real); ++e)
                vec_elems.push_back(fetch(g0 + e));
            words[out++] = packMicroVector(vec_elems, bw, is_signed);
        }
    }
}

} // namespace

unsigned
kGroupCount(uint64_t k, const BsGeometry &geometry)
{
    return static_cast<unsigned>(divCeil(k, geometry.group_extent));
}

CompressedA::CompressedA(uint64_t m, uint64_t k,
                         const BsGeometry &geometry)
    : m_(m), k_(k), k_groups_(kGroupCount(k, geometry)),
      geometry_(geometry), panels_(std::make_shared<ClusterPanels>()),
      abft_(std::make_shared<AbftChecksums>())
{
    if (m == 0 || k == 0)
        fatal("CompressedA: empty matrix");
    words_.resize(uint64_t{m} * k_groups_ * geometry.kua);
}

void
CompressedA::ensureClusterPanels() const
{
    std::call_once(panels_->once, [this] {
        TRACE_SCOPE("pack", "cluster_panels_a");
        const auto plan = makeExpansionPlan(geometry_);
        panels_->words_per_group = plan.chunkCount();
        panels_->words.resize(uint64_t{m_} * k_groups_ *
                              plan.chunkCount());
        for (uint64_t row = 0; row < m_; ++row)
            for (unsigned g = 0; g < k_groups_; ++g)
                expandGroupA(words_.data() + wordIndex(row, g, 0),
                             geometry_, plan,
                             panels_->words.data() +
                                 (row * k_groups_ + g) *
                                     plan.chunkCount());
    });
}

CompressedA::CompressedA(std::span<const int32_t> data, uint64_t m,
                         uint64_t k, const BsGeometry &geometry)
    : CompressedA(m, k, geometry)
{
    if (data.size() != m * k)
        fatal("CompressedA: data size does not match m x k");
    TRACE_SCOPE("pack", "pack_a");
    for (uint64_t row = 0; row < m; ++row) {
        const int32_t *row_data = data.data() + row * k;
        packRun([row_data](uint64_t i) { return row_data[i]; }, k,
                geometry.elems_per_avec, geometry.kua,
                geometry.group_extent, geometry.config.bwa,
                geometry.config.a_signed,
                std::span<uint64_t>(words_)
                    .subspan(row * k_groups_ * geometry.kua,
                             uint64_t{k_groups_} * geometry.kua));
    }
}

CompressedA
CompressedA::fromColumnMajor(std::span<const int32_t> data, uint64_t m,
                             uint64_t k, const BsGeometry &geometry)
{
    CompressedA a(m, k, geometry);
    if (data.size() != m * k)
        fatal("CompressedA: data size does not match m x k");
    TRACE_SCOPE("pack", "pack_a");
    for (uint64_t row = 0; row < m; ++row) {
        const int32_t *base = data.data() + row;
        packRun([base, m](uint64_t i) { return base[i * m]; }, k,
                geometry.elems_per_avec, geometry.kua,
                geometry.group_extent, geometry.config.bwa,
                geometry.config.a_signed,
                std::span<uint64_t>(a.words_)
                    .subspan(row * a.k_groups_ * geometry.kua,
                             uint64_t{a.k_groups_} * geometry.kua));
    }
    return a;
}

uint64_t
CompressedA::wordIndex(uint64_t row, unsigned g, unsigned w) const
{
    return (row * k_groups_ + g) * geometry_.kua + w;
}

uint64_t
CompressedA::word(uint64_t row, unsigned g, unsigned w) const
{
    return words_[wordIndex(row, g, w)];
}

int32_t
CompressedA::element(uint64_t row, uint64_t k_index) const
{
    const unsigned g =
        static_cast<unsigned>(k_index / geometry_.group_extent);
    const unsigned e =
        static_cast<unsigned>(k_index - uint64_t{g} *
                                            geometry_.group_extent);
    const unsigned w = e / geometry_.elems_per_avec;
    return microVectorElement(word(row, g, w), geometry_.config.bwa,
                              geometry_.config.a_signed,
                              e % geometry_.elems_per_avec);
}

void
CompressedA::setWord(uint64_t index, uint64_t word)
{
    if (index >= words_.size())
        fatal(strCat("CompressedA::setWord: index ", index,
                     " out of range ", words_.size()));
    words_[index] = word;
}

void
CompressedA::resetClusterPanels()
{
    panels_ = std::make_shared<ClusterPanels>();
}

void
CompressedA::setClusterPanelWord(uint64_t index, uint64_t word)
{
    if (index >= panels_->words.size())
        fatal(strCat("CompressedA::setClusterPanelWord: index ", index,
                     " out of range ", panels_->words.size()));
    panels_->words[index] = word;
}

void
CompressedA::ensureAbftChecksums() const
{
    std::call_once(abft_->once, [this] {
        TRACE_SCOPE("abft", "checksums_a");
        abft_->ksums.assign(k_, 0);
        for (uint64_t row = 0; row < m_; ++row)
            for (uint64_t kk = 0; kk < k_; ++kk)
                abft_->ksums[kk] += element(row, kk);
    });
}

uint64_t
CompressedA::idealBytes() const
{
    // Fully-packed μ-vector reference: 8 bytes per elems_per_avec
    // k positions, per row.
    return static_cast<uint64_t>(
        static_cast<double>(m_) * k_ * 8.0 / geometry_.elems_per_avec);
}

CompressedB::CompressedB(uint64_t k, uint64_t n,
                         const BsGeometry &geometry)
    : k_(k), n_(n), k_groups_(kGroupCount(k, geometry)),
      geometry_(geometry), panels_(std::make_shared<ClusterPanels>()),
      abft_(std::make_shared<AbftChecksums>())
{
    if (k == 0 || n == 0)
        fatal("CompressedB: empty matrix");
    words_.resize(uint64_t{n} * k_groups_ * geometry.kub);
}

void
CompressedB::ensureClusterPanels() const
{
    std::call_once(panels_->once, [this] {
        TRACE_SCOPE("pack", "cluster_panels_b");
        const auto plan = makeExpansionPlan(geometry_);
        panels_->words_per_group = plan.chunkCount();
        panels_->words.resize(uint64_t{n_} * k_groups_ *
                              plan.chunkCount());
        for (uint64_t col = 0; col < n_; ++col)
            for (unsigned g = 0; g < k_groups_; ++g)
                expandGroupB(words_.data() + wordIndex(col, g, 0),
                             geometry_, plan,
                             panels_->words.data() +
                                 (col * k_groups_ + g) *
                                     plan.chunkCount());
    });
}

CompressedB
CompressedB::fromTransposed(std::span<const int32_t> data, uint64_t k,
                            uint64_t n, const BsGeometry &geometry)
{
    CompressedB b(k, n, geometry);
    if (data.size() != k * n)
        fatal("CompressedB: data size does not match k x n");
    TRACE_SCOPE("pack", "pack_b");
    for (uint64_t col = 0; col < n; ++col) {
        const int32_t *row_data = data.data() + col * k;
        packRun([row_data](uint64_t i) { return row_data[i]; }, k,
                geometry.elems_per_bvec, geometry.kub,
                geometry.group_extent, geometry.config.bwb,
                geometry.config.b_signed,
                std::span<uint64_t>(b.words_)
                    .subspan(col * b.k_groups_ * geometry.kub,
                             uint64_t{b.k_groups_} * geometry.kub));
    }
    return b;
}

CompressedB::CompressedB(std::span<const int32_t> data, uint64_t k,
                         uint64_t n, const BsGeometry &geometry)
    : CompressedB(k, n, geometry)
{
    if (data.size() != k * n)
        fatal("CompressedB: data size does not match k x n");
    TRACE_SCOPE("pack", "pack_b");
    for (uint64_t col = 0; col < n; ++col) {
        const int32_t *base = data.data() + col;
        packRun([base, n](uint64_t i) { return base[i * n]; }, k,
                geometry.elems_per_bvec, geometry.kub,
                geometry.group_extent, geometry.config.bwb,
                geometry.config.b_signed,
                std::span<uint64_t>(words_)
                    .subspan(col * k_groups_ * geometry.kub,
                             uint64_t{k_groups_} * geometry.kub));
    }
}

uint64_t
CompressedB::wordIndex(uint64_t col, unsigned g, unsigned w) const
{
    return (col * k_groups_ + g) * geometry_.kub + w;
}

uint64_t
CompressedB::word(uint64_t col, unsigned g, unsigned w) const
{
    return words_[wordIndex(col, g, w)];
}

int32_t
CompressedB::element(uint64_t col, uint64_t k_index) const
{
    const unsigned g =
        static_cast<unsigned>(k_index / geometry_.group_extent);
    const unsigned e =
        static_cast<unsigned>(k_index - uint64_t{g} *
                                            geometry_.group_extent);
    const unsigned w = e / geometry_.elems_per_bvec;
    return microVectorElement(word(col, g, w), geometry_.config.bwb,
                              geometry_.config.b_signed,
                              e % geometry_.elems_per_bvec);
}

void
CompressedB::setWord(uint64_t index, uint64_t word)
{
    if (index >= words_.size())
        fatal(strCat("CompressedB::setWord: index ", index,
                     " out of range ", words_.size()));
    words_[index] = word;
}

void
CompressedB::resetClusterPanels()
{
    panels_ = std::make_shared<ClusterPanels>();
}

void
CompressedB::setClusterPanelWord(uint64_t index, uint64_t word)
{
    if (index >= panels_->words.size())
        fatal(strCat("CompressedB::setClusterPanelWord: index ", index,
                     " out of range ", panels_->words.size()));
    panels_->words[index] = word;
}

void
CompressedB::ensureAbftChecksums() const
{
    std::call_once(abft_->once, [this] {
        TRACE_SCOPE("abft", "checksums_b");
        abft_->ksums.assign(k_, 0);
        for (uint64_t col = 0; col < n_; ++col)
            for (uint64_t kk = 0; kk < k_; ++kk)
                abft_->ksums[kk] += element(col, kk);
    });
}

uint64_t
CompressedB::idealBytes() const
{
    return static_cast<uint64_t>(
        static_cast<double>(k_) * n_ * 8.0 / geometry_.elems_per_bvec);
}

namespace
{

/**
 * Shared boundary validation for the checked compression entry points:
 * non-empty shape, matching buffer size, and every element inside the
 * narrow format's representable range.
 */
Status
validateOperand(const char *who, std::span<const int32_t> data,
                uint64_t rows, uint64_t cols, unsigned bw,
                bool is_signed)
{
    if (rows == 0 || cols == 0)
        return Status::invalidArgument(
            strCat(who, ": empty matrix (", rows, " x ", cols, ")"));
    if (rows > std::numeric_limits<uint64_t>::max() / cols ||
        data.size() != rows * cols)
        return Status::invalidArgument(
            strCat(who, ": data size ", data.size(),
                   " does not match ", rows, " x ", cols));
    for (size_t i = 0; i < data.size(); ++i) {
        const int64_t v = data[i];
        const bool fits = is_signed ? fitsSigned(v, bw)
                                    : fitsUnsigned(v, bw);
        if (!fits)
            return Status::outOfRange(
                strCat(who, ": element ", v, " at index ", i,
                       " does not fit the ", bw, "-bit ",
                       is_signed ? "signed" : "unsigned", " format"));
    }
    return Status();
}

} // namespace

Expected<CompressedA>
tryCompressA(std::span<const int32_t> data, uint64_t m, uint64_t k,
             const BsGeometry &geometry)
{
    if (Status s = validateOperand("tryCompressA", data, m, k,
                                   geometry.config.bwa,
                                   geometry.config.a_signed);
        !s.ok())
        return s;
    return CompressedA(data, m, k, geometry);
}

Expected<CompressedB>
tryCompressB(std::span<const int32_t> data, uint64_t k, uint64_t n,
             const BsGeometry &geometry)
{
    if (Status s = validateOperand("tryCompressB", data, k, n,
                                   geometry.config.bwb,
                                   geometry.config.b_signed);
        !s.ok())
        return s;
    return CompressedB(data, k, n, geometry);
}

} // namespace mixgemm
