#include "tensor/packing.h"

#include <algorithm>

#include "bs/expand.h"
#include "bs/microvector.h"
#include "common/bitutils.h"
#include "common/logging.h"
#include "trace/tracer.h"

namespace mixgemm
{

namespace
{

/**
 * Pack the k-run of one row/column into group-of-μ-vector format.
 *
 * @param fetch    fetch(k_index) returns the element at logical position
 *                 k_index (row-major A row or strided B column)
 * @param k        logical run length
 * @param words    output span of kGroupCount(k) * ku words
 */
template <typename Fetch>
void
packRun(Fetch fetch, uint64_t k, unsigned elems_per_vec, unsigned ku,
        unsigned extent, unsigned bw, bool is_signed,
        std::span<uint64_t> words)
{
    const unsigned groups = static_cast<unsigned>(divCeil(k, extent));
    std::vector<int32_t> vec_elems;
    vec_elems.reserve(elems_per_vec);
    size_t out = 0;
    for (unsigned g = 0; g < groups; ++g) {
        const uint64_t g0 = uint64_t{g} * extent;
        const unsigned real = static_cast<unsigned>(
            std::min<uint64_t>(extent, k - g0));
        for (unsigned w = 0; w < ku; ++w) {
            vec_elems.clear();
            const unsigned e0 = w * elems_per_vec;
            for (unsigned e = e0;
                 e < std::min(e0 + elems_per_vec, real); ++e)
                vec_elems.push_back(fetch(g0 + e));
            words[out++] = packMicroVector(vec_elems, bw, is_signed);
        }
    }
}

} // namespace

unsigned
kGroupCount(uint64_t k, const BsGeometry &geometry)
{
    return static_cast<unsigned>(divCeil(k, geometry.group_extent));
}

CompressedA::CompressedA(uint64_t m, uint64_t k,
                         const BsGeometry &geometry)
    : m_(m), k_(k), k_groups_(kGroupCount(k, geometry)),
      geometry_(geometry), panels_(std::make_shared<ClusterPanels>())
{
    if (m == 0 || k == 0)
        fatal("CompressedA: empty matrix");
    words_.resize(uint64_t{m} * k_groups_ * geometry.kua);
}

void
CompressedA::ensureClusterPanels() const
{
    std::call_once(panels_->once, [this] {
        TRACE_SCOPE("pack", "cluster_panels_a");
        const auto plan = makeExpansionPlan(geometry_);
        panels_->words_per_group = plan.chunkCount();
        panels_->words.resize(uint64_t{m_} * k_groups_ *
                              plan.chunkCount());
        for (uint64_t row = 0; row < m_; ++row)
            for (unsigned g = 0; g < k_groups_; ++g)
                expandGroupA(words_.data() + wordIndex(row, g, 0),
                             geometry_, plan,
                             panels_->words.data() +
                                 (row * k_groups_ + g) *
                                     plan.chunkCount());
    });
}

CompressedA::CompressedA(std::span<const int32_t> data, uint64_t m,
                         uint64_t k, const BsGeometry &geometry)
    : CompressedA(m, k, geometry)
{
    if (data.size() != m * k)
        fatal("CompressedA: data size does not match m x k");
    TRACE_SCOPE("pack", "pack_a");
    for (uint64_t row = 0; row < m; ++row) {
        const int32_t *row_data = data.data() + row * k;
        packRun([row_data](uint64_t i) { return row_data[i]; }, k,
                geometry.elems_per_avec, geometry.kua,
                geometry.group_extent, geometry.config.bwa,
                geometry.config.a_signed,
                std::span<uint64_t>(words_)
                    .subspan(row * k_groups_ * geometry.kua,
                             uint64_t{k_groups_} * geometry.kua));
    }
}

CompressedA
CompressedA::fromColumnMajor(std::span<const int32_t> data, uint64_t m,
                             uint64_t k, const BsGeometry &geometry)
{
    CompressedA a(m, k, geometry);
    if (data.size() != m * k)
        fatal("CompressedA: data size does not match m x k");
    TRACE_SCOPE("pack", "pack_a");
    for (uint64_t row = 0; row < m; ++row) {
        const int32_t *base = data.data() + row;
        packRun([base, m](uint64_t i) { return base[i * m]; }, k,
                geometry.elems_per_avec, geometry.kua,
                geometry.group_extent, geometry.config.bwa,
                geometry.config.a_signed,
                std::span<uint64_t>(a.words_)
                    .subspan(row * a.k_groups_ * geometry.kua,
                             uint64_t{a.k_groups_} * geometry.kua));
    }
    return a;
}

uint64_t
CompressedA::wordIndex(uint64_t row, unsigned g, unsigned w) const
{
    return (row * k_groups_ + g) * geometry_.kua + w;
}

uint64_t
CompressedA::word(uint64_t row, unsigned g, unsigned w) const
{
    return words_[wordIndex(row, g, w)];
}

uint64_t
CompressedA::idealBytes() const
{
    // Fully-packed μ-vector reference: 8 bytes per elems_per_avec
    // k positions, per row.
    return static_cast<uint64_t>(
        static_cast<double>(m_) * k_ * 8.0 / geometry_.elems_per_avec);
}

CompressedB::CompressedB(uint64_t k, uint64_t n,
                         const BsGeometry &geometry)
    : k_(k), n_(n), k_groups_(kGroupCount(k, geometry)),
      geometry_(geometry), panels_(std::make_shared<ClusterPanels>())
{
    if (k == 0 || n == 0)
        fatal("CompressedB: empty matrix");
    words_.resize(uint64_t{n} * k_groups_ * geometry.kub);
}

void
CompressedB::ensureClusterPanels() const
{
    std::call_once(panels_->once, [this] {
        TRACE_SCOPE("pack", "cluster_panels_b");
        const auto plan = makeExpansionPlan(geometry_);
        panels_->words_per_group = plan.chunkCount();
        panels_->words.resize(uint64_t{n_} * k_groups_ *
                              plan.chunkCount());
        for (uint64_t col = 0; col < n_; ++col)
            for (unsigned g = 0; g < k_groups_; ++g)
                expandGroupB(words_.data() + wordIndex(col, g, 0),
                             geometry_, plan,
                             panels_->words.data() +
                                 (col * k_groups_ + g) *
                                     plan.chunkCount());
    });
}

CompressedB
CompressedB::fromTransposed(std::span<const int32_t> data, uint64_t k,
                            uint64_t n, const BsGeometry &geometry)
{
    CompressedB b(k, n, geometry);
    if (data.size() != k * n)
        fatal("CompressedB: data size does not match k x n");
    TRACE_SCOPE("pack", "pack_b");
    for (uint64_t col = 0; col < n; ++col) {
        const int32_t *row_data = data.data() + col * k;
        packRun([row_data](uint64_t i) { return row_data[i]; }, k,
                geometry.elems_per_bvec, geometry.kub,
                geometry.group_extent, geometry.config.bwb,
                geometry.config.b_signed,
                std::span<uint64_t>(b.words_)
                    .subspan(col * b.k_groups_ * geometry.kub,
                             uint64_t{b.k_groups_} * geometry.kub));
    }
    return b;
}

CompressedB::CompressedB(std::span<const int32_t> data, uint64_t k,
                         uint64_t n, const BsGeometry &geometry)
    : CompressedB(k, n, geometry)
{
    if (data.size() != k * n)
        fatal("CompressedB: data size does not match k x n");
    TRACE_SCOPE("pack", "pack_b");
    for (uint64_t col = 0; col < n; ++col) {
        const int32_t *base = data.data() + col;
        packRun([base, n](uint64_t i) { return base[i * n]; }, k,
                geometry.elems_per_bvec, geometry.kub,
                geometry.group_extent, geometry.config.bwb,
                geometry.config.b_signed,
                std::span<uint64_t>(words_)
                    .subspan(col * k_groups_ * geometry.kub,
                             uint64_t{k_groups_} * geometry.kub));
    }
}

uint64_t
CompressedB::wordIndex(uint64_t col, unsigned g, unsigned w) const
{
    return (col * k_groups_ + g) * geometry_.kub + w;
}

uint64_t
CompressedB::word(uint64_t col, unsigned g, unsigned w) const
{
    return words_[wordIndex(col, g, w)];
}

uint64_t
CompressedB::idealBytes() const
{
    return static_cast<uint64_t>(
        static_cast<double>(k_) * n_ * 8.0 / geometry_.elems_per_bvec);
}

} // namespace mixgemm
