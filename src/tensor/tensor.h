/**
 * @file
 * Minimal dense row-major tensor. Deliberately small: the DNN layers and
 * the mini training framework only need shape bookkeeping, element
 * access, and flat iteration; everything heavy happens inside the GEMM
 * libraries which operate on raw spans.
 */

#ifndef MIXGEMM_TENSOR_TENSOR_H
#define MIXGEMM_TENSOR_TENSOR_H

#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "common/logging.h"

namespace mixgemm
{

/** Dense row-major tensor of up to 4 dimensions. */
template <typename T>
class Tensor
{
  public:
    Tensor() = default;

    /** Construct zero-filled with the given shape. */
    explicit Tensor(std::vector<size_t> shape)
        : shape_(std::move(shape)),
          data_(std::accumulate(shape_.begin(), shape_.end(), size_t{1},
                                std::multiplies<>()),
                T{})
    {
        if (shape_.empty())
            fatal("Tensor: shape must have at least one dimension");
    }

    /** Construct from existing data; size must match the shape. */
    Tensor(std::vector<size_t> shape, std::vector<T> data)
        : shape_(std::move(shape)), data_(std::move(data))
    {
        size_t expected = 1;
        for (const size_t d : shape_)
            expected *= d;
        if (shape_.empty() || data_.size() != expected)
            fatal("Tensor: data size does not match shape");
    }

    const std::vector<size_t> &shape() const { return shape_; }
    size_t rank() const { return shape_.size(); }
    size_t size() const { return data_.size(); }
    size_t dim(size_t i) const { return shape_.at(i); }

    std::span<T> flat() { return data_; }
    std::span<const T> flat() const { return data_; }
    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

    T &operator[](size_t i) { return data_[i]; }
    const T &operator[](size_t i) const { return data_[i]; }

    /** 2-D element access (rank must be 2). */
    T &
    at(size_t i, size_t j)
    {
        return data_[i * shape_[1] + j];
    }
    const T &
    at(size_t i, size_t j) const
    {
        return data_[i * shape_[1] + j];
    }

    /** 4-D element access (rank must be 4), NCHW order. */
    T &
    at(size_t n, size_t c, size_t h, size_t w)
    {
        return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
    }
    const T &
    at(size_t n, size_t c, size_t h, size_t w) const
    {
        return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
    }

    void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  private:
    std::vector<size_t> shape_;
    std::vector<T> data_;
};

} // namespace mixgemm

#endif // MIXGEMM_TENSOR_TENSOR_H
