/**
 * @file
 * Compressed matrix storage for the Mix-GEMM library (Section III-A).
 *
 * Input matrices stay compressed over the common k dimension: chunks of
 * narrow elements pack into 64-bit μ-vectors, grouped in *accumulation
 * groups* of kua (A) / kub (B) μ-vectors covering `group_extent` logical
 * k positions each. The tail of the last μ-vector in a group, and the
 * tail of the last group in k, are zero-padded — the padding the DSE in
 * Section III-C measures at ~2.4 % on average.
 *
 * Padding encodes the integer *code* 0 (raw zero bits), never the
 * quantized zero-point, for signed and unsigned geometries alike. This
 * is load-bearing for asymmetric quantization: the GEMM accumulates raw
 * codes, and the runtime applies zero-points as a rank-1 correction
 * over exactly k terms (see runtime/qlinear.h). Both operands pad the
 * same out-of-range k positions, so each padded product contributes
 * 0 * 0 = 0; padding with the zero-point code would instead inject
 * zq_a * zq_b cross terms the correction never removes. Tests in
 * test_tensor.cc and test_qlinear.cc pin this invariant down.
 *
 * Layouts (all words contiguous, 8 bytes each):
 *   CompressedA (m x k): word[(row * kGroups() + g) * kua + w]
 *   CompressedB (k x n): word[(col * kGroups() + g) * kub + w]
 */

#ifndef MIXGEMM_TENSOR_PACKING_H
#define MIXGEMM_TENSOR_PACKING_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "bs/geometry.h"
#include "common/status.h"

namespace mixgemm
{

/**
 * Owned-or-borrowed 64-bit word storage for compressed operands.
 *
 * Freshly packed operands own their words in a vector, exactly as
 * before. Operands adopted from a packed-weight artifact *borrow* a
 * read-only span into the artifact's memory mapping instead, with a
 * keepalive shared_ptr pinning the mapping for the store's lifetime —
 * zero-copy model load (ROADMAP item 2). Reads are uniform over both
 * modes; the first mutable access to a borrowed store copies the words
 * into owned storage (copy-on-write), so fault injection and other
 * writers can never scribble on a shared mapping.
 */
class WordStore
{
  public:
    WordStore() = default;

    /** Switch to owned storage of @p count zero-initialized words. */
    void resize(uint64_t count)
    {
        owned_.assign(count, 0);
        borrowed_ = {};
        keepalive_.reset();
    }

    /**
     * Borrow @p words read-only; @p keepalive (non-null) pins the
     * backing storage — typically the artifact mapping — for this
     * store's lifetime. Copies of the store share the keepalive.
     */
    void adopt(std::span<const uint64_t> words,
               std::shared_ptr<const void> keepalive);

    /** True when the words live in borrowed (mapped) storage. */
    bool borrowed() const { return keepalive_ != nullptr; }

    uint64_t size() const
    {
        return borrowed() ? borrowed_.size() : owned_.size();
    }
    const uint64_t *data() const
    {
        return borrowed() ? borrowed_.data() : owned_.data();
    }
    uint64_t operator[](uint64_t index) const { return data()[index]; }

    operator std::span<const uint64_t>() const
    {
        return {data(), size()};
    }

    /**
     * Mutable access. A borrowed store first copies its words into
     * owned storage and drops the keepalive (copy-on-write): the
     * mapped artifact bytes are immutable by construction.
     */
    uint64_t *mutableData()
    {
        if (borrowed()) {
            owned_.assign(borrowed_.begin(), borrowed_.end());
            borrowed_ = {};
            keepalive_.reset();
        }
        return owned_.data();
    }

  private:
    std::vector<uint64_t> owned_;
    std::span<const uint64_t> borrowed_;
    std::shared_ptr<const void> keepalive_;
};

/**
 * Global packing-work counters (process-wide, monotonic). The
 * packed-weight store and the serving tests use deltas of these to
 * prove that a cached load did *no* packing or expansion work — the
 * zero-copy / lazy-rung regression gates. Cheap relaxed atomics;
 * snapshot with packCounters().
 */
struct PackCounters
{
    uint64_t a_packs = 0;        ///< CompressedA packing runs
    uint64_t b_packs = 0;        ///< CompressedB packing runs
    uint64_t cluster_builds = 0; ///< cluster-panel expansions built
    uint64_t adoptions = 0;      ///< borrowed-storage adoptions
};

/** Snapshot of the process-wide packing counters. */
PackCounters packCounters();

/**
 * Lazily-built cluster-domain mirror of a compressed operand: for every
 * (row-or-column, accumulation group) the cw-spaced cluster words of
 * each DSU chunk, precomputed through the bw -> cw expansion
 * (bs/expand.h). The fast GEMM kernel reads these directly — the
 * expansion of an A row amortizes across every output column it meets
 * (and a B column across every row), exactly like BLIS packed-buffer
 * reuse. Held behind a shared_ptr so compressed operands stay copyable
 * and copies share the (immutable once built) panels; the build is
 * thread-safe and idempotent via call_once.
 */
struct ClusterPanels
{
    std::once_flag once;
    /// True once `words` is usable — set after the lazy build, or at
    /// construction for panels adopted from an artifact (a once_flag
    /// cannot be born completed, so adoption needs its own gate).
    std::atomic<bool> built{false};
    WordStore words;
    unsigned words_per_group = 0; ///< DSU chunks per accumulation group
};

/**
 * ABFT checksum snapshot of a compressed operand: one int64 sum per
 * logical k position — over rows for A, over columns for B. Built once
 * from the operand's *current* packed words by ensureAbftChecksums()
 * and shared (shared_ptr, like ClusterPanels) by every copy, so a
 * fault-injection copy corrupted afterwards still carries the
 * pre-corruption truth the verifier compares against.
 */
struct AbftChecksums
{
    std::once_flag once;
    std::vector<int64_t> ksums; ///< k entries; empty until built
};

/** Number of accumulation groups covering a logical k extent. */
unsigned kGroupCount(uint64_t k, const BsGeometry &geometry);

/** The A operand of a Mix-GEMM, compressed along k. */
class CompressedA
{
  public:
    /**
     * Compress a row-major m x k int32 matrix whose values fit the
     * configured (bwa, a_signed) format.
     */
    CompressedA(std::span<const int32_t> data, uint64_t m, uint64_t k,
                const BsGeometry &geometry);

    /**
     * Compress from a column-major source (i.e. the operand is stored
     * transposed, as BLAS op(A) = A^T): @p data is k x m row-major.
     * The compressed layout is identical; only the gather differs.
     */
    static CompressedA fromColumnMajor(std::span<const int32_t> data,
                                       uint64_t m, uint64_t k,
                                       const BsGeometry &geometry);

    uint64_t m() const { return m_; }
    uint64_t k() const { return k_; }
    unsigned kGroups() const { return k_groups_; }
    const BsGeometry &geometry() const { return geometry_; }

    /** μ-vector @p w of accumulation group @p g of row @p row. */
    uint64_t word(uint64_t row, unsigned g, unsigned w) const;

    /** Flat index of word(row, g, w) into words(); defines addresses. */
    uint64_t wordIndex(uint64_t row, unsigned g, unsigned w) const;

    std::span<const uint64_t> words() const { return words_; }

    /** Decoded element at (row, k_index) — the packing inverse. */
    int32_t element(uint64_t row, uint64_t k_index) const;

    /**
     * Overwrite the packed word at flat @p index (fault injection /
     * SRAM corruption modeling). Call resetClusterPanels() afterwards
     * if panels were already built, or they keep the stale expansion.
     */
    void setWord(uint64_t index, uint64_t word);

    /** Compressed footprint in bytes. */
    uint64_t bytes() const { return words_.size() * 8; }

    /** Footprint of an ideal dense narrow packing, in bytes (fractional
     * bits rounded up at the matrix level). */
    uint64_t idealBytes() const;

    /**
     * Build the cluster-domain panels if absent (thread-safe,
     * idempotent). Call before the first groupClusters() read — the
     * fast GEMM driver does this once before spawning workers.
     */
    void ensureClusterPanels() const;

    /** Cluster words cached per accumulation group (DSU chunk count). */
    unsigned clusterWordsPerGroup() const
    {
        return panels_->words_per_group;
    }

    /**
     * Cached cluster words of accumulation group @p g of row @p row
     * (clusterWordsPerGroup() entries, consecutive groups contiguous).
     * @pre ensureClusterPanels() has completed.
     */
    const uint64_t *groupClusters(uint64_t row, unsigned g) const
    {
        return panels_->words.data() +
               (row * k_groups_ + g) * panels_->words_per_group;
    }

    /**
     * Detach from any shared/built cluster panels so the next
     * ensureClusterPanels() re-expands from the current packed words.
     * A fault-injection copy calls this before corrupting words, so
     * the original operand's panels stay pristine.
     */
    void resetClusterPanels();

    /** Built panel words. @pre ensureClusterPanels() has completed. */
    uint64_t clusterPanelWordCount() const
    {
        return panels_->words.size();
    }

    /** Cached cluster word at flat @p index (fault injection). */
    uint64_t clusterPanelWord(uint64_t index) const
    {
        return panels_->words[index];
    }

    /** Overwrite one cached cluster word (fault injection). */
    void setClusterPanelWord(uint64_t index, uint64_t word);

    /**
     * Build (once, thread-safe) the ABFT per-k checksums: for each
     * logical k position, the int64 sum of column k over all m rows.
     * Shared by copies — call on the original before corrupting a copy.
     */
    void ensureAbftChecksums() const;

    /** Built checksums, k() entries; empty until ensureAbftChecksums(). */
    const std::vector<int64_t> &abftKSums() const
    {
        return abft_->ksums;
    }

  private:
    CompressedA(uint64_t m, uint64_t k, const BsGeometry &geometry);

    uint64_t m_;
    uint64_t k_;
    unsigned k_groups_;
    BsGeometry geometry_;
    WordStore words_;
    std::shared_ptr<ClusterPanels> panels_;
    std::shared_ptr<AbftChecksums> abft_;
};

/** The B operand of a Mix-GEMM, compressed along k, column-major. */
class CompressedB
{
  public:
    /**
     * Compress a row-major k x n int32 matrix whose values fit the
     * configured (bwb, b_signed) format.
     */
    CompressedB(std::span<const int32_t> data, uint64_t k, uint64_t n,
                const BsGeometry &geometry);

    /**
     * Compress from a transposed source (BLAS op(B) = B^T): @p data is
     * n x k row-major — each operand column is contiguous, the common
     * layout for DNN weight tensors.
     */
    static CompressedB fromTransposed(std::span<const int32_t> data,
                                      uint64_t k, uint64_t n,
                                      const BsGeometry &geometry);

    /**
     * Adopt already-packed words — and optionally already-expanded
     * cluster panels — as borrowed read-only storage (zero-copy load
     * from a packed-weight artifact, see store/artifact.h). @p keepalive
     * (non-null) pins the backing memory, typically the artifact's
     * mmap, for the operand's lifetime; copies share it. Word counts
     * and @p panel_words_per_group are validated against the geometry
     * *before* anything is allocated or copied; a mismatched artifact
     * comes back as a structured error. When panels are supplied they
     * are marked built, so ensureClusterPanels() is a no-op and the
     * fast path reads the mapping directly.
     */
    static Expected<CompressedB> adopt(
        uint64_t k, uint64_t n, const BsGeometry &geometry,
        std::span<const uint64_t> words,
        std::shared_ptr<const void> keepalive,
        std::span<const uint64_t> panel_words = {},
        unsigned panel_words_per_group = 0);

    /** True when the packed words are borrowed (mmap-backed). */
    bool borrowsStorage() const { return words_.borrowed(); }

    /** True once cluster panels exist (lazily built or adopted). */
    bool clusterPanelsBuilt() const
    {
        return panels_->built.load(std::memory_order_acquire);
    }

    uint64_t k() const { return k_; }
    uint64_t n() const { return n_; }
    unsigned kGroups() const { return k_groups_; }
    const BsGeometry &geometry() const { return geometry_; }

    /** μ-vector @p w of accumulation group @p g of column @p col. */
    uint64_t word(uint64_t col, unsigned g, unsigned w) const;

    /** Flat index of word(col, g, w) into words(); defines addresses. */
    uint64_t wordIndex(uint64_t col, unsigned g, unsigned w) const;

    std::span<const uint64_t> words() const { return words_; }

    /** Decoded element at (k_index, col) — the packing inverse. */
    int32_t element(uint64_t col, uint64_t k_index) const;

    /** See CompressedA::setWord(). */
    void setWord(uint64_t index, uint64_t word);

    uint64_t bytes() const { return words_.size() * 8; }
    uint64_t idealBytes() const;

    /** See CompressedA::ensureClusterPanels(). */
    void ensureClusterPanels() const;

    /** Cluster words cached per accumulation group (DSU chunk count). */
    unsigned clusterWordsPerGroup() const
    {
        return panels_->words_per_group;
    }

    /**
     * Cached cluster words (reversed B layout) of accumulation group
     * @p g of column @p col. @pre ensureClusterPanels() has completed.
     */
    const uint64_t *groupClusters(uint64_t col, unsigned g) const
    {
        return panels_->words.data() +
               (col * k_groups_ + g) * panels_->words_per_group;
    }

    /** See CompressedA::resetClusterPanels(). */
    void resetClusterPanels();

    /** Built panel words. @pre ensureClusterPanels() has completed. */
    uint64_t clusterPanelWordCount() const
    {
        return panels_->words.size();
    }

    /** Cached cluster word at flat @p index (fault injection). */
    uint64_t clusterPanelWord(uint64_t index) const
    {
        return panels_->words[index];
    }

    /** Overwrite one cached cluster word (fault injection). */
    void setClusterPanelWord(uint64_t index, uint64_t word);

    /**
     * Build (once, thread-safe) the ABFT per-k checksums: for each
     * logical k position, the int64 sum of row k over all n columns.
     */
    void ensureAbftChecksums() const;

    /** Built checksums, k() entries; empty until ensureAbftChecksums(). */
    const std::vector<int64_t> &abftKSums() const
    {
        return abft_->ksums;
    }

  private:
    CompressedB(uint64_t k, uint64_t n, const BsGeometry &geometry);

    uint64_t k_;
    uint64_t n_;
    unsigned k_groups_;
    BsGeometry geometry_;
    WordStore words_;
    std::shared_ptr<ClusterPanels> panels_;
    std::shared_ptr<AbftChecksums> abft_;
};

/**
 * Checked compression for external-input boundaries: validates shape,
 * data size, and that every element fits the configured (bwa, a_signed)
 * format *before* packing, returning a structured error instead of the
 * FatalError the constructors throw on caller bugs. @p data is
 * row-major m x k.
 */
Expected<CompressedA> tryCompressA(std::span<const int32_t> data,
                                   uint64_t m, uint64_t k,
                                   const BsGeometry &geometry);

/** Checked CompressedB construction; @p data is row-major k x n. */
Expected<CompressedB> tryCompressB(std::span<const int32_t> data,
                                   uint64_t k, uint64_t n,
                                   const BsGeometry &geometry);

} // namespace mixgemm

#endif // MIXGEMM_TENSOR_PACKING_H
