#include "nn/qat.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace mixgemm
{

Tensor<double>
Flatten::forward(const Tensor<double> &x, bool)
{
    in_shape_ = x.shape();
    return Tensor<double>({1, x.size()},
                          std::vector<double>(x.flat().begin(),
                                              x.flat().end()));
}

Tensor<double>
Flatten::backward(const Tensor<double> &grad)
{
    return Tensor<double>(in_shape_,
                          std::vector<double>(grad.flat().begin(),
                                              grad.flat().end()));
}

void
Network::add(std::unique_ptr<Layer> layer)
{
    layers_.push_back(std::move(layer));
}

Tensor<double>
Network::forward(const Tensor<double> &x, bool train)
{
    Tensor<double> t = x;
    for (auto &layer : layers_)
        t = layer->forward(t, train);
    return t;
}

void
Network::backward(const Tensor<double> &grad)
{
    Tensor<double> g = grad;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
}

void
Network::step(double lr, double momentum)
{
    for (auto &layer : layers_)
        layer->step(lr, momentum);
}

unsigned
Network::predict(const Tensor<double> &image)
{
    const auto logits = forward(image, false);
    unsigned best = 0;
    for (unsigned i = 1; i < logits.size(); ++i)
        if (logits[i] > logits[best])
            best = i;
    return best;
}

Network
makeSmallCnn(const QatConfig &qat, uint64_t seed)
{
    Rng rng(seed);
    Network net;
    net.add(std::make_unique<Conv2d>(1, 6, 3, 1, qat, rng));
    net.add(std::make_unique<Relu>());
    net.add(std::make_unique<MaxPool2>());
    net.add(std::make_unique<Conv2d>(6, 12, 3, 1, qat, rng));
    net.add(std::make_unique<Relu>());
    net.add(std::make_unique<MaxPool2>());
    net.add(std::make_unique<Flatten>());
    net.add(std::make_unique<Linear>(
        12 * (PatternDataset::kImageSize / 4) *
            (PatternDataset::kImageSize / 4),
        PatternDataset::kNumClasses, qat, rng));
    return net;
}

void
copyParameters(const Network &src, Network &dst)
{
    if (src.layers().size() != dst.layers().size())
        fatal("copyParameters: architectures differ");
    for (size_t i = 0; i < src.layers().size(); ++i) {
        Layer *d = dst.layers()[i].get();
        const Layer *s = src.layers()[i].get();
        if (const auto *sc = dynamic_cast<const Conv2d *>(s)) {
            auto *dc = dynamic_cast<Conv2d *>(d);
            if (!dc)
                fatal("copyParameters: layer kind mismatch");
            dc->setParameters(sc->weights(), sc->bias());
        } else if (const auto *sl = dynamic_cast<const Linear *>(s)) {
            auto *dl = dynamic_cast<Linear *>(d);
            if (!dl)
                fatal("copyParameters: layer kind mismatch");
            dl->setParameters(sl->weights(), sl->bias());
        } else if (const auto *sd =
                       dynamic_cast<const DepthwiseConv2d *>(s)) {
            auto *dd = dynamic_cast<DepthwiseConv2d *>(d);
            if (!dd)
                fatal("copyParameters: layer kind mismatch");
            dd->setParameters(sd->weights(), sd->bias());
        }
    }
}

Network
makeDepthwiseCnn(const QatConfig &qat, uint64_t seed)
{
    Rng rng(seed);
    Network net;
    net.add(std::make_unique<Conv2d>(1, 8, 3, 1, qat, rng));
    net.add(std::make_unique<Relu>());
    net.add(std::make_unique<MaxPool2>());
    net.add(std::make_unique<DepthwiseConv2d>(8, 3, 1, qat, rng));
    net.add(std::make_unique<Relu>());
    net.add(std::make_unique<Conv2d>(8, 16, 1, 0, qat, rng));
    net.add(std::make_unique<Relu>());
    net.add(std::make_unique<MaxPool2>());
    net.add(std::make_unique<Flatten>());
    net.add(std::make_unique<Linear>(
        16 * (PatternDataset::kImageSize / 4) *
            (PatternDataset::kImageSize / 4),
        PatternDataset::kNumClasses, qat, rng));
    return net;
}

Tensor<double>
softmaxCrossEntropyGrad(const Tensor<double> &logits, unsigned label,
                        double &loss)
{
    if (label >= logits.size())
        fatal("softmaxCrossEntropyGrad: label out of range");
    double maxv = logits[0];
    for (size_t i = 1; i < logits.size(); ++i)
        maxv = std::max(maxv, logits[i]);
    double denom = 0.0;
    for (size_t i = 0; i < logits.size(); ++i)
        denom += std::exp(logits[i] - maxv);
    Tensor<double> grad({1, logits.size()});
    for (size_t i = 0; i < logits.size(); ++i) {
        const double p = std::exp(logits[i] - maxv) / denom;
        grad[i] = p - (i == label ? 1.0 : 0.0);
        if (i == label)
            loss = -std::log(std::max(p, 1e-12));
    }
    return grad;
}

double
train(Network &net, const PatternDataset &data, const TrainConfig &config)
{
    if (data.size() == 0)
        fatal("train: empty dataset");
    std::vector<size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);
    Rng rng(config.shuffle_seed);

    double last_epoch_loss = 0.0;
    for (unsigned epoch = 0; epoch < config.epochs; ++epoch) {
        // Fisher-Yates shuffle with the deterministic RNG.
        for (size_t i = order.size() - 1; i > 0; --i)
            std::swap(order[i],
                      order[static_cast<size_t>(
                          rng.uniformInt(0, static_cast<int64_t>(i)))]);
        double epoch_loss = 0.0;
        unsigned in_batch = 0;
        for (const size_t idx : order) {
            const Sample &s = data.samples()[idx];
            const auto logits = net.forward(s.image, true);
            double loss = 0.0;
            const auto grad =
                softmaxCrossEntropyGrad(logits, s.label, loss);
            epoch_loss += loss;
            net.backward(grad);
            if (++in_batch == config.batch_size) {
                net.step(config.lr / config.batch_size,
                         config.momentum);
                in_batch = 0;
            }
        }
        if (in_batch > 0)
            net.step(config.lr / in_batch, config.momentum);
        last_epoch_loss = epoch_loss / static_cast<double>(data.size());
    }
    return last_epoch_loss;
}

double
evaluate(Network &net, const PatternDataset &data)
{
    if (data.size() == 0)
        fatal("evaluate: empty dataset");
    size_t correct = 0;
    for (const Sample &s : data.samples())
        correct += net.predict(s.image) == s.label;
    return static_cast<double>(correct) /
           static_cast<double>(data.size());
}

} // namespace mixgemm
