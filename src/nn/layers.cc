#include "nn/layers.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mixgemm
{

// ---------------------------------------------------------------------
// FakeQuant
// ---------------------------------------------------------------------

FakeQuant::FakeQuant(unsigned bits, bool track_ema, bool is_signed)
    : bits_(bits), track_ema_(track_ema), is_signed_(is_signed)
{
    if (bits < 2 || bits > 8)
        fatal("FakeQuant: bits must be in [2, 8]");
}

void
FakeQuant::apply(Tensor<double> &x, bool update_stats)
{
    double absmax = 0.0;
    for (const double v : x.flat())
        absmax = std::max(absmax, std::abs(v));
    if (track_ema_) {
        if (update_stats) {
            ema_absmax_ = ema_absmax_ == 0.0
                              ? absmax
                              : 0.95 * ema_absmax_ + 0.05 * absmax;
        }
        absmax = ema_absmax_ != 0.0 ? ema_absmax_ : absmax;
    }
    const int64_t qmax = is_signed_
                             ? (int64_t{1} << (bits_ - 1)) - 1
                             : (int64_t{1} << bits_) - 1;
    const int64_t qmin =
        is_signed_ ? -(int64_t{1} << (bits_ - 1)) : 0;
    scale_ = absmax > 0.0 ? absmax / static_cast<double>(qmax) : 1.0;

    clamped_.assign(x.size(), false);
    for (size_t i = 0; i < x.size(); ++i) {
        const double q = std::nearbyint(x[i] / scale_);
        if (q > static_cast<double>(qmax) ||
            q < static_cast<double>(qmin))
            clamped_[i] = true;
        x[i] = std::clamp(q, static_cast<double>(qmin),
                          static_cast<double>(qmax)) *
               scale_;
    }
}

void
FakeQuant::maskGradient(Tensor<double> &grad) const
{
    if (clamped_.size() != grad.size())
        panic("FakeQuant: gradient/mask size mismatch");
    for (size_t i = 0; i < grad.size(); ++i)
        if (clamped_[i])
            grad[i] = 0.0;
}

// ---------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------

namespace
{

/** Kaiming-style uniform init in [-b, b]. */
void
initUniform(Tensor<double> &w, double fan_in, Rng &rng)
{
    const double bound = std::sqrt(3.0 / fan_in);
    for (auto &v : w.flat())
        v = rng.uniformReal(-bound, bound);
}

} // namespace

Conv2d::Conv2d(unsigned in_c, unsigned out_c, unsigned k, unsigned pad,
               const QatConfig &qat, Rng &rng)
    : in_c_(in_c), out_c_(out_c), k_(k), pad_(pad), qat_(qat),
      w_({out_c, in_c, k, k}), b_(out_c, 0.0),
      w_grad_({out_c, in_c, k, k}), b_grad_(out_c, 0.0),
      w_vel_({out_c, in_c, k, k}), b_vel_(out_c, 0.0),
      aq_(qat.a_bits, true, !qat.unsigned_activations),
      wq_(qat.w_bits, false)
{
    initUniform(w_, static_cast<double>(in_c) * k * k, rng);
}

Tensor<double>
Conv2d::forward(const Tensor<double> &x, bool train)
{
    x_cache_ = x;
    if (qat_.enabled)
        aq_.apply(x_cache_, train);
    wq_cache_ = w_;
    if (qat_.enabled)
        wq_.apply(wq_cache_, train);

    const unsigned h = static_cast<unsigned>(x.dim(2));
    const unsigned w = static_cast<unsigned>(x.dim(3));
    const unsigned oh = h + 2 * pad_ - k_ + 1;
    const unsigned ow = w + 2 * pad_ - k_ + 1;
    Tensor<double> out({1, out_c_, oh, ow});
    for (unsigned o = 0; o < out_c_; ++o) {
        for (unsigned y = 0; y < oh; ++y) {
            for (unsigned xx = 0; xx < ow; ++xx) {
                double acc = b_[o];
                for (unsigned c = 0; c < in_c_; ++c) {
                    for (unsigned ky = 0; ky < k_; ++ky) {
                        for (unsigned kx = 0; kx < k_; ++kx) {
                            const long iy =
                                static_cast<long>(y) + ky - pad_;
                            const long ix =
                                static_cast<long>(xx) + kx - pad_;
                            if (iy < 0 || iy >= static_cast<long>(h) ||
                                ix < 0 || ix >= static_cast<long>(w))
                                continue;
                            acc += x_cache_.at(0, c, iy, ix) *
                                   wq_cache_.at(o, c, ky, kx);
                        }
                    }
                }
                out.at(0, o, y, xx) = acc;
            }
        }
    }
    return out;
}

Tensor<double>
Conv2d::backward(const Tensor<double> &grad)
{
    const unsigned h = static_cast<unsigned>(x_cache_.dim(2));
    const unsigned w = static_cast<unsigned>(x_cache_.dim(3));
    const unsigned oh = static_cast<unsigned>(grad.dim(2));
    const unsigned ow = static_cast<unsigned>(grad.dim(3));
    Tensor<double> dx({1, in_c_, h, w});
    Tensor<double> dw({out_c_, in_c_, k_, k_});

    for (unsigned o = 0; o < out_c_; ++o) {
        for (unsigned y = 0; y < oh; ++y) {
            for (unsigned xx = 0; xx < ow; ++xx) {
                const double g = grad.at(0, o, y, xx);
                b_grad_[o] += g;
                for (unsigned c = 0; c < in_c_; ++c) {
                    for (unsigned ky = 0; ky < k_; ++ky) {
                        for (unsigned kx = 0; kx < k_; ++kx) {
                            const long iy =
                                static_cast<long>(y) + ky - pad_;
                            const long ix =
                                static_cast<long>(xx) + kx - pad_;
                            if (iy < 0 || iy >= static_cast<long>(h) ||
                                ix < 0 || ix >= static_cast<long>(w))
                                continue;
                            dw.at(o, c, ky, kx) +=
                                g * x_cache_.at(0, c, iy, ix);
                            dx.at(0, c, iy, ix) +=
                                g * wq_cache_.at(o, c, ky, kx);
                        }
                    }
                }
            }
        }
    }

    if (qat_.enabled) {
        wq_.maskGradient(dw);
        aq_.maskGradient(dx);
    }
    for (size_t i = 0; i < dw.size(); ++i)
        w_grad_[i] += dw[i];
    return dx;
}

void
Conv2d::setParameters(const Tensor<double> &w,
                      const std::vector<double> &b)
{
    if (w.size() != w_.size() || b.size() != b_.size())
        fatal("Conv2d::setParameters: shape mismatch");
    w_ = w;
    b_ = b;
}

void
Conv2d::step(double lr, double momentum)
{
    for (size_t i = 0; i < w_.size(); ++i) {
        w_vel_[i] = momentum * w_vel_[i] - lr * w_grad_[i];
        w_[i] += w_vel_[i];
        w_grad_[i] = 0.0;
    }
    for (size_t i = 0; i < b_.size(); ++i) {
        b_vel_[i] = momentum * b_vel_[i] - lr * b_grad_[i];
        b_[i] += b_vel_[i];
        b_grad_[i] = 0.0;
    }
}

// ---------------------------------------------------------------------
// DepthwiseConv2d
// ---------------------------------------------------------------------

DepthwiseConv2d::DepthwiseConv2d(unsigned channels, unsigned k,
                                 unsigned pad, const QatConfig &qat,
                                 Rng &rng)
    : channels_(channels), k_(k), pad_(pad), qat_(qat),
      w_({channels, 1, k, k}), b_(channels, 0.0),
      w_grad_({channels, 1, k, k}), b_grad_(channels, 0.0),
      w_vel_({channels, 1, k, k}), b_vel_(channels, 0.0),
      aq_(qat.a_bits, true, !qat.unsigned_activations),
      wq_(qat.w_bits, false)
{
    initUniform(w_, static_cast<double>(k) * k, rng);
}

Tensor<double>
DepthwiseConv2d::forward(const Tensor<double> &x, bool train)
{
    if (x.dim(1) != channels_)
        fatal("DepthwiseConv2d: channel mismatch");
    x_cache_ = x;
    if (qat_.enabled)
        aq_.apply(x_cache_, train);
    wq_cache_ = w_;
    if (qat_.enabled)
        wq_.apply(wq_cache_, train);

    const unsigned h = static_cast<unsigned>(x.dim(2));
    const unsigned w = static_cast<unsigned>(x.dim(3));
    const unsigned oh = h + 2 * pad_ - k_ + 1;
    const unsigned ow = w + 2 * pad_ - k_ + 1;
    Tensor<double> out({1, channels_, oh, ow});
    for (unsigned c = 0; c < channels_; ++c) {
        for (unsigned y = 0; y < oh; ++y) {
            for (unsigned xx = 0; xx < ow; ++xx) {
                double acc = b_[c];
                for (unsigned ky = 0; ky < k_; ++ky) {
                    for (unsigned kx = 0; kx < k_; ++kx) {
                        const long iy =
                            static_cast<long>(y) + ky - pad_;
                        const long ix =
                            static_cast<long>(xx) + kx - pad_;
                        if (iy < 0 || iy >= static_cast<long>(h) ||
                            ix < 0 || ix >= static_cast<long>(w))
                            continue;
                        acc += x_cache_.at(0, c, iy, ix) *
                               wq_cache_.at(c, 0, ky, kx);
                    }
                }
                out.at(0, c, y, xx) = acc;
            }
        }
    }
    return out;
}

Tensor<double>
DepthwiseConv2d::backward(const Tensor<double> &grad)
{
    const unsigned h = static_cast<unsigned>(x_cache_.dim(2));
    const unsigned w = static_cast<unsigned>(x_cache_.dim(3));
    const unsigned oh = static_cast<unsigned>(grad.dim(2));
    const unsigned ow = static_cast<unsigned>(grad.dim(3));
    Tensor<double> dx({1, channels_, h, w});
    Tensor<double> dw({channels_, 1, k_, k_});
    for (unsigned c = 0; c < channels_; ++c) {
        for (unsigned y = 0; y < oh; ++y) {
            for (unsigned xx = 0; xx < ow; ++xx) {
                const double g = grad.at(0, c, y, xx);
                b_grad_[c] += g;
                for (unsigned ky = 0; ky < k_; ++ky) {
                    for (unsigned kx = 0; kx < k_; ++kx) {
                        const long iy =
                            static_cast<long>(y) + ky - pad_;
                        const long ix =
                            static_cast<long>(xx) + kx - pad_;
                        if (iy < 0 || iy >= static_cast<long>(h) ||
                            ix < 0 || ix >= static_cast<long>(w))
                            continue;
                        dw.at(c, 0, ky, kx) +=
                            g * x_cache_.at(0, c, iy, ix);
                        dx.at(0, c, iy, ix) +=
                            g * wq_cache_.at(c, 0, ky, kx);
                    }
                }
            }
        }
    }
    if (qat_.enabled) {
        wq_.maskGradient(dw);
        aq_.maskGradient(dx);
    }
    for (size_t i = 0; i < dw.size(); ++i)
        w_grad_[i] += dw[i];
    return dx;
}

void
DepthwiseConv2d::setParameters(const Tensor<double> &w,
                               const std::vector<double> &b)
{
    if (w.size() != w_.size() || b.size() != b_.size())
        fatal("DepthwiseConv2d::setParameters: shape mismatch");
    w_ = w;
    b_ = b;
}

void
DepthwiseConv2d::step(double lr, double momentum)
{
    for (size_t i = 0; i < w_.size(); ++i) {
        w_vel_[i] = momentum * w_vel_[i] - lr * w_grad_[i];
        w_[i] += w_vel_[i];
        w_grad_[i] = 0.0;
    }
    for (size_t i = 0; i < b_.size(); ++i) {
        b_vel_[i] = momentum * b_vel_[i] - lr * b_grad_[i];
        b_[i] += b_vel_[i];
        b_grad_[i] = 0.0;
    }
}

// ---------------------------------------------------------------------
// Relu / MaxPool2
// ---------------------------------------------------------------------

Tensor<double>
Relu::forward(const Tensor<double> &x, bool)
{
    x_cache_ = x;
    Tensor<double> out = x;
    for (auto &v : out.flat())
        v = std::max(v, 0.0);
    return out;
}

Tensor<double>
Relu::backward(const Tensor<double> &grad)
{
    Tensor<double> dx = grad;
    for (size_t i = 0; i < dx.size(); ++i)
        if (x_cache_[i] <= 0.0)
            dx[i] = 0.0;
    return dx;
}

Tensor<double>
MaxPool2::forward(const Tensor<double> &x, bool)
{
    in_shape_ = x.shape();
    const unsigned c = static_cast<unsigned>(x.dim(1));
    const unsigned h = static_cast<unsigned>(x.dim(2));
    const unsigned w = static_cast<unsigned>(x.dim(3));
    const unsigned oh = h / 2;
    const unsigned ow = w / 2;
    Tensor<double> out({1, c, oh, ow});
    argmax_.assign(out.size(), 0);
    size_t oi = 0;
    for (unsigned cc = 0; cc < c; ++cc) {
        for (unsigned y = 0; y < oh; ++y) {
            for (unsigned xx = 0; xx < ow; ++xx, ++oi) {
                double best = -1e300;
                size_t best_idx = 0;
                for (unsigned dy = 0; dy < 2; ++dy) {
                    for (unsigned dx = 0; dx < 2; ++dx) {
                        const size_t idx =
                            ((0 * c + cc) * h + 2 * y + dy) * w +
                            2 * xx + dx;
                        if (x[idx] > best) {
                            best = x[idx];
                            best_idx = idx;
                        }
                    }
                }
                out[oi] = best;
                argmax_[oi] = best_idx;
            }
        }
    }
    return out;
}

Tensor<double>
MaxPool2::backward(const Tensor<double> &grad)
{
    Tensor<double> dx(in_shape_);
    for (size_t i = 0; i < grad.size(); ++i)
        dx[argmax_[i]] += grad[i];
    return dx;
}

// ---------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------

Linear::Linear(unsigned in, unsigned out, const QatConfig &qat, Rng &rng)
    : in_(in), out_(out), qat_(qat), w_({out, in}), b_(out, 0.0),
      w_grad_({out, in}), b_grad_(out, 0.0), w_vel_({out, in}),
      b_vel_(out, 0.0), aq_(qat.a_bits, true, !qat.unsigned_activations),
      wq_(qat.w_bits, false)
{
    initUniform(w_, in, rng);
}

Tensor<double>
Linear::forward(const Tensor<double> &x, bool train)
{
    if (x.size() != in_)
        fatal(strCat("Linear: input size ", x.size(), " != ", in_));
    x_cache_ = Tensor<double>({1, in_}, std::vector<double>(
                                            x.flat().begin(),
                                            x.flat().end()));
    if (qat_.enabled)
        aq_.apply(x_cache_, train);
    wq_cache_ = w_;
    if (qat_.enabled)
        wq_.apply(wq_cache_, train);

    Tensor<double> out({1, out_});
    for (unsigned o = 0; o < out_; ++o) {
        double acc = b_[o];
        for (unsigned i = 0; i < in_; ++i)
            acc += wq_cache_.at(o, i) * x_cache_[i];
        out[o] = acc;
    }
    return out;
}

Tensor<double>
Linear::backward(const Tensor<double> &grad)
{
    Tensor<double> dx({1, in_});
    Tensor<double> dw({out_, in_});
    for (unsigned o = 0; o < out_; ++o) {
        const double g = grad[o];
        b_grad_[o] += g;
        for (unsigned i = 0; i < in_; ++i) {
            dw.at(o, i) += g * x_cache_[i];
            dx[i] += g * wq_cache_.at(o, i);
        }
    }
    if (qat_.enabled) {
        wq_.maskGradient(dw);
        aq_.maskGradient(dx);
    }
    for (size_t i = 0; i < dw.size(); ++i)
        w_grad_[i] += dw[i];
    return dx;
}

void
Linear::setParameters(const Tensor<double> &w,
                      const std::vector<double> &b)
{
    if (w.size() != w_.size() || b.size() != b_.size())
        fatal("Linear::setParameters: shape mismatch");
    w_ = w;
    b_ = b;
}

void
Linear::step(double lr, double momentum)
{
    for (size_t i = 0; i < w_.size(); ++i) {
        w_vel_[i] = momentum * w_vel_[i] - lr * w_grad_[i];
        w_[i] += w_vel_[i];
        w_grad_[i] = 0.0;
    }
    for (size_t i = 0; i < b_.size(); ++i) {
        b_vel_[i] = momentum * b_vel_[i] - lr * b_grad_[i];
        b_[i] += b_vel_[i];
        b_grad_[i] = 0.0;
    }
}

} // namespace mixgemm
