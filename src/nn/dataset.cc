#include "nn/dataset.h"

#include <algorithm>
#include <cmath>

namespace mixgemm
{

PatternDataset::PatternDataset(size_t count, uint64_t seed, double noise)
{
    Rng rng(seed);
    samples_.reserve(count);
    for (size_t i = 0; i < count; ++i)
        samples_.push_back(
            makeSample(static_cast<unsigned>(i % kNumClasses), rng,
                       noise));
}

Sample
PatternDataset::makeSample(unsigned label, Rng &rng, double noise) const
{
    const unsigned n = kImageSize;
    Sample s;
    s.label = label;
    s.image = Tensor<double>({1, 1, n, n});
    const unsigned phase = static_cast<unsigned>(rng.uniformInt(0, 3));
    const unsigned cx =
        static_cast<unsigned>(rng.uniformInt(3, n - 4));
    const unsigned cy =
        static_cast<unsigned>(rng.uniformInt(3, n - 4));

    for (unsigned y = 0; y < n; ++y) {
        for (unsigned x = 0; x < n; ++x) {
            double v = 0.0;
            switch (label) {
              case 0: // horizontal stripes
                v = (y + phase) % 4 < 2 ? 1.0 : 0.0;
                break;
              case 1: // vertical stripes
                v = (x + phase) % 4 < 2 ? 1.0 : 0.0;
                break;
              case 2: // diagonal stripes
                v = (x + y + phase) % 4 < 2 ? 1.0 : 0.0;
                break;
              case 3: // checkerboard
                v = ((x / 2 + y / 2 + phase) % 2) ? 1.0 : 0.0;
                break;
              case 4: { // centred blob
                const double dx = static_cast<double>(x) - cx;
                const double dy = static_cast<double>(y) - cy;
                v = std::exp(-(dx * dx + dy * dy) / 6.0);
                break;
              }
              case 5: // cross
                v = (std::abs(static_cast<int>(x) -
                              static_cast<int>(cx)) <= 1 ||
                     std::abs(static_cast<int>(y) -
                              static_cast<int>(cy)) <= 1)
                        ? 1.0
                        : 0.0;
                break;
              case 6: // filled corner square
                v = (x < n / 2) == (phase % 2 == 0) &&
                            (y < n / 2) == (phase / 2 == 0)
                        ? 1.0
                        : 0.0;
                break;
              default: // sparse dots
                v = (x % 4 == phase && y % 4 == phase) ? 1.0 : 0.0;
                break;
            }
            v += rng.uniformReal(-noise, noise);
            s.image.at(0, 0, y, x) = std::clamp(v, 0.0, 1.0);
        }
    }
    return s;
}

} // namespace mixgemm
