/**
 * @file
 * Network container and QAT training loop (the Fig. 3 workflow):
 * build a small CNN, optionally with fake-quantized weights and
 * activations, train it with SGD + momentum and cross-entropy on the
 * synthetic pattern dataset, and evaluate TOP-1 accuracy.
 */

#ifndef MIXGEMM_NN_QAT_H
#define MIXGEMM_NN_QAT_H

#include <memory>
#include <vector>

#include "nn/dataset.h"
#include "nn/layers.h"

namespace mixgemm
{

/** Flatten to a rank-2 [1 x features] tensor, remembering the shape. */
class Flatten : public Layer
{
  public:
    Tensor<double> forward(const Tensor<double> &x, bool train) override;
    Tensor<double> backward(const Tensor<double> &grad) override;
    std::string name() const override { return "flatten"; }

  private:
    std::vector<size_t> in_shape_;
};

/** A feed-forward stack of layers. */
class Network
{
  public:
    void add(std::unique_ptr<Layer> layer);

    Tensor<double> forward(const Tensor<double> &x, bool train);
    void backward(const Tensor<double> &grad);
    void step(double lr, double momentum);

    /** Predicted class for one sample (argmax of logits). */
    unsigned predict(const Tensor<double> &image);

    const std::vector<std::unique_ptr<Layer>> &layers() const
    {
        return layers_;
    }

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

/**
 * The reference small CNN: conv(1->6,3x3,p1) relu pool conv(6->12,3x3,
 * p1) relu pool flatten fc(108->8). ~7k parameters; reaches >90 %
 * TOP-1 on the pattern dataset in a few epochs.
 */
Network makeSmallCnn(const QatConfig &qat, uint64_t seed = 42);

/** Training hyper-parameters. */
struct TrainConfig
{
    unsigned epochs = 6;
    unsigned batch_size = 16;
    double lr = 0.03;
    double momentum = 0.9;
    uint64_t shuffle_seed = 7;
};

/**
 * A MobileNet-style variant of the small CNN using a depthwise-
 * separable block: conv(1->8) relu pool, depthwise 3x3, relu,
 * pointwise 1x1 (8->16), relu pool, fc. Exercises the depthwise path
 * through QAT and deployment.
 */
Network makeDepthwiseCnn(const QatConfig &qat, uint64_t seed = 42);

/**
 * Copy trainable parameters between two architecturally identical
 * networks — the paper's warm start for aggressive quantization
 * (a3/a2 configurations retrain from a4/a3 checkpoints, Section IV-A).
 */
void copyParameters(const Network &src, Network &dst);

/** Softmax + cross-entropy gradient of logits for @p label. */
Tensor<double> softmaxCrossEntropyGrad(const Tensor<double> &logits,
                                       unsigned label, double &loss);

/** Train in place; returns the final average training loss. */
double train(Network &net, const PatternDataset &data,
             const TrainConfig &config);

/** TOP-1 accuracy in [0, 1]. */
double evaluate(Network &net, const PatternDataset &data);

} // namespace mixgemm

#endif // MIXGEMM_NN_QAT_H
