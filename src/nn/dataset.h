/**
 * @file
 * Synthetic image-classification dataset for the QAT demonstration.
 *
 * The paper trains on ImageNet; as a laptop-scale substitute we
 * procedurally generate small single-channel images of geometric
 * patterns (stripes, checkerboards, blobs, crosses, ...) with additive
 * noise and random phase/position, producing a task that a tiny CNN
 * can learn in seconds yet degrades measurably under aggressive
 * quantization — enough to demonstrate the QAT workflow of Fig. 3 and
 * the accuracy-vs-bitwidth trend end to end.
 */

#ifndef MIXGEMM_NN_DATASET_H
#define MIXGEMM_NN_DATASET_H

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "tensor/tensor.h"

namespace mixgemm
{

/** One labelled sample. */
struct Sample
{
    Tensor<double> image; ///< [1 x 1 x size x size], values in [0, 1]
    unsigned label = 0;
};

/** Procedural pattern dataset. */
class PatternDataset
{
  public:
    static constexpr unsigned kNumClasses = 8;
    static constexpr unsigned kImageSize = 12;

    /**
     * Generate @p count samples with balanced classes.
     * @param seed RNG seed; the same seed reproduces the same data.
     * @param noise additive uniform noise amplitude.
     */
    PatternDataset(size_t count, uint64_t seed, double noise = 0.15);

    const std::vector<Sample> &samples() const { return samples_; }
    size_t size() const { return samples_.size(); }

  private:
    Sample makeSample(unsigned label, Rng &rng, double noise) const;

    std::vector<Sample> samples_;
};

} // namespace mixgemm

#endif // MIXGEMM_NN_DATASET_H
