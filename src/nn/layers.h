/**
 * @file
 * Minimal trainable layers with straight-through-estimator (STE)
 * fake quantization — the QAT substrate of the Fig. 3 workflow.
 *
 * Layers process one sample at a time ([1 x C x H x W] tensors); the
 * trainer accumulates gradients over a mini-batch and then calls
 * step(). Conv2d and Linear optionally fake-quantize their weights
 * (per-tensor absmax scale, recomputed every forward) and their input
 * activations (EMA-tracked absmax scale), with gradients passed through
 * the rounding and zeroed where values clamp — the standard STE rule.
 */

#ifndef MIXGEMM_NN_LAYERS_H
#define MIXGEMM_NN_LAYERS_H

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "quant/quantizer.h"
#include "tensor/tensor.h"

namespace mixgemm
{

/** Quantization-aware-training configuration. */
struct QatConfig
{
    bool enabled = false;
    unsigned a_bits = 8; ///< activation bitwidth
    unsigned w_bits = 8; ///< weight bitwidth
    /**
     * Quantize activations unsigned ([0, 2^bits - 1]). Post-ReLU
     * activations are non-negative, so the unsigned range doubles the
     * usable resolution — the μ-engine's Control Unit supports
     * signed/unsigned per operand (Section III-B), and the deployment
     * path selects the matching configuration.
     */
    bool unsigned_activations = false;
};

/** Base class for trainable layers. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Forward pass; caches whatever backward() needs. */
    virtual Tensor<double> forward(const Tensor<double> &x,
                                   bool train) = 0;

    /** Backward pass: input = dL/d(output), returns dL/d(input). */
    virtual Tensor<double> backward(const Tensor<double> &grad) = 0;

    /** SGD + momentum update; also clears accumulated gradients. */
    virtual void step(double lr, double momentum) { (void)lr,
                                                    (void)momentum; }

    virtual std::string name() const = 0;
};

/** STE fake-quantizer for one tensor role. */
class FakeQuant
{
  public:
    FakeQuant(unsigned bits, bool track_ema, bool is_signed = true);

    /**
     * Quantize-dequantize @p x in place and record the clamp mask.
     * The scale is the tensor absmax (weights) or an EMA of batch
     * absmax values (activations) mapped onto the signed range.
     */
    void apply(Tensor<double> &x, bool update_stats);

    /** STE: zero @p grad where the forward value clamped. */
    void maskGradient(Tensor<double> &grad) const;

    double scale() const { return scale_; }
    unsigned bits() const { return bits_; }
    bool isSigned() const { return is_signed_; }

  private:
    unsigned bits_;
    bool track_ema_;
    bool is_signed_;
    double ema_absmax_ = 0.0;
    double scale_ = 1.0;
    std::vector<bool> clamped_;
};

/** 2-D convolution (square kernel, stride 1, configurable padding). */
class Conv2d : public Layer
{
  public:
    Conv2d(unsigned in_c, unsigned out_c, unsigned k, unsigned pad,
           const QatConfig &qat, Rng &rng);

    Tensor<double> forward(const Tensor<double> &x, bool train) override;
    Tensor<double> backward(const Tensor<double> &grad) override;
    void step(double lr, double momentum) override;
    std::string name() const override { return "conv2d"; }

    /** Trained (float) weights, [out_c x in_c x k x k]. */
    const Tensor<double> &weights() const { return w_; }
    const std::vector<double> &bias() const { return b_; }
    /** Warm-start from another layer's parameters (paper Section IV-A:
     * low-bit configurations retrain from higher-bit checkpoints). */
    void setParameters(const Tensor<double> &w,
                       const std::vector<double> &b);
    /** Activation/weight scales of the last forward (for deployment). */
    double activationScale() const { return aq_.scale(); }
    double weightScale() const { return wq_.scale(); }
    unsigned inChannels() const { return in_c_; }
    unsigned outChannels() const { return out_c_; }
    unsigned kernel() const { return k_; }
    unsigned padding() const { return pad_; }
    const QatConfig &qat() const { return qat_; }

  private:
    unsigned in_c_, out_c_, k_, pad_;
    QatConfig qat_;
    Tensor<double> w_;
    std::vector<double> b_;
    Tensor<double> w_grad_;
    std::vector<double> b_grad_;
    Tensor<double> w_vel_;
    std::vector<double> b_vel_;
    FakeQuant aq_;
    FakeQuant wq_;
    Tensor<double> x_cache_;  ///< quantized input of last forward
    Tensor<double> wq_cache_; ///< quantized weights of last forward
};

/**
 * Depthwise 2-D convolution (groups == channels, stride 1): the
 * MobileNet/EfficientNet building block. One k x k filter per channel.
 */
class DepthwiseConv2d : public Layer
{
  public:
    DepthwiseConv2d(unsigned channels, unsigned k, unsigned pad,
                    const QatConfig &qat, Rng &rng);

    Tensor<double> forward(const Tensor<double> &x, bool train) override;
    Tensor<double> backward(const Tensor<double> &grad) override;
    void step(double lr, double momentum) override;
    std::string name() const override { return "depthwise_conv2d"; }

    /** Trained weights, [channels x 1 x k x k]. */
    const Tensor<double> &weights() const { return w_; }
    const std::vector<double> &bias() const { return b_; }
    void setParameters(const Tensor<double> &w,
                       const std::vector<double> &b);
    double activationScale() const { return aq_.scale(); }
    unsigned channels() const { return channels_; }
    unsigned kernel() const { return k_; }
    unsigned padding() const { return pad_; }
    const QatConfig &qat() const { return qat_; }

  private:
    unsigned channels_, k_, pad_;
    QatConfig qat_;
    Tensor<double> w_;
    std::vector<double> b_;
    Tensor<double> w_grad_;
    std::vector<double> b_grad_;
    Tensor<double> w_vel_;
    std::vector<double> b_vel_;
    FakeQuant aq_;
    FakeQuant wq_;
    Tensor<double> x_cache_;
    Tensor<double> wq_cache_;
};

/** Rectified linear unit. */
class Relu : public Layer
{
  public:
    Tensor<double> forward(const Tensor<double> &x, bool train) override;
    Tensor<double> backward(const Tensor<double> &grad) override;
    std::string name() const override { return "relu"; }

  private:
    Tensor<double> x_cache_;
};

/** 2x2 max pooling, stride 2. */
class MaxPool2 : public Layer
{
  public:
    Tensor<double> forward(const Tensor<double> &x, bool train) override;
    Tensor<double> backward(const Tensor<double> &grad) override;
    std::string name() const override { return "maxpool2"; }

  private:
    std::vector<size_t> argmax_;
    std::vector<size_t> in_shape_;
};

/** Fully connected layer on a flattened input. */
class Linear : public Layer
{
  public:
    Linear(unsigned in, unsigned out, const QatConfig &qat, Rng &rng);

    Tensor<double> forward(const Tensor<double> &x, bool train) override;
    Tensor<double> backward(const Tensor<double> &grad) override;
    void step(double lr, double momentum) override;
    std::string name() const override { return "linear"; }

    const Tensor<double> &weights() const { return w_; } ///< [out x in]
    const std::vector<double> &bias() const { return b_; }
    /** Warm-start from another layer's parameters. */
    void setParameters(const Tensor<double> &w,
                       const std::vector<double> &b);
    double activationScale() const { return aq_.scale(); }
    double weightScale() const { return wq_.scale(); }
    unsigned inFeatures() const { return in_; }
    unsigned outFeatures() const { return out_; }
    const QatConfig &qat() const { return qat_; }

  private:
    unsigned in_, out_;
    QatConfig qat_;
    Tensor<double> w_;
    std::vector<double> b_;
    Tensor<double> w_grad_;
    std::vector<double> b_grad_;
    Tensor<double> w_vel_;
    std::vector<double> b_vel_;
    FakeQuant aq_;
    FakeQuant wq_;
    Tensor<double> x_cache_;
    Tensor<double> wq_cache_;
};

} // namespace mixgemm

#endif // MIXGEMM_NN_LAYERS_H
