/**
 * @file
 * mixgemm-cli — command-line front end to the simulator, for downstream
 * users who want numbers without writing C++.
 *
 *   mixgemm-cli gemm <m> <n> <k> [config] [--small-caches]
 *       Price one GEMM on the simulated SoC (plus the DGEMM baseline).
 *
 *   mixgemm-cli network <name> [config] [--batch N]
 *       Price a CNN end to end (names: alexnet vgg16 resnet18
 *       mobilenet regnet efficientnet).
 *
 *   mixgemm-cli dse <name> [max_top1_drop]
 *       Greedy per-layer mixed-precision plan under an accuracy budget.
 *
 *   mixgemm-cli configs
 *       List all 49 supported data-size configurations with their
 *       μ-engine geometry.
 *
 *   mixgemm-cli autotune [config]... [--quick] [--out tuning.json]
 *       [--m M --n N --k K] [--reps N] [--threads N]
 *       [--preset name] [--l1 BYTES] [--l2 BYTES]
 *       Sweep cache blocking (mc/nc/kc), register blocking (mr x nr)
 *       and the SIMD μ-kernel registry on probe GEMMs and persist the
 *       per-configuration winners to a tuning file (default
 *       mixgemm_tuning.json; see src/gemm/kernels/autotune.h for the
 *       format). No configs named = the four hot ones (a8-w8 a8-w4
 *       a4-w4 a2-w2). --quick (CI) restricts the sweep to the
 *       analytical blocking point per register shape with the
 *       auto-selected kernel, one rep. The gemm command's --tuning
 *       flag feeds the file back into execution.
 *
 *   mixgemm-cli fault-campaign [config] [--m M --n N --k K]
 *       [--network name [--layers N]] [--seed S] [--runs N]
 *       [--max-faults N] [--bits N] [--threads N] [--modeled]
 *       [--site s]... [--fault-model m]... [--policy p]...
 *       [--out report.json]
 *       Seeded fault-injection sweep (sites x models x ABFT policies)
 *       over one GEMM shape or a network's first layer shapes; emits a
 *       JSON report of detection coverage, correction rate,
 *       accuracy-under-faults, and clean-run ABFT overhead.
 *
 *   mixgemm-cli pack <network> [config] [--layers N] [--seed S]
 *       [--dir DIR] [--json f.json] [--check] [--tuning tuning.json]
 *       [--no-verify]
 *       Pack a network's (deterministic synthetic) quantized weights
 *       through the content-addressed weight store: first run packs and
 *       persists a relocatable artifact, every later run mmaps it back
 *       zero-copy. Prints (and with --json emits) cache hit/miss, load
 *       time, packed vs mapped bytes, and the zero-copy verdict from
 *       the process-wide pack counters; --check additionally re-packs
 *       fresh and asserts the mapped panels are bitwise identical.
 *       Exits non-zero when a cached load copied or diverged.
 *
 *   mixgemm-cli cache-stats [--dir DIR] [--no-verify]
 *       List the artifacts in a cache directory, validating each one
 *       (checksums included unless --no-verify). Exits non-zero if any
 *       artifact fails validation.
 *
 *   mixgemm-cli serve-soak [--seed S] [--duration SECS] [--arrival HZ]
 *       [--burst F] [--queue N] [--tiers N] [--retries N] [--epochs N]
 *       [--wall] [--workers N] [--modeled] [--no-decisions]
 *       [--tenants N] [--tenant-policy JSON|FILE]
 *       [--tenant-scenario NAME] [--drain]
 *       [--metrics-port P] [--metrics-file f.prom]
 *       [--postmortem-dir DIR] [--inject-stall] [--chaos SCENARIO]
 *       [--out report.json]
 *       Seeded open-loop load soak of the inference server (see
 *       serve/soak.h): Poisson arrivals with bursts and adversarial
 *       shapes against a degradation ladder, emitting a JSON report of
 *       goodput, shed/deadline/reject counts, per-tier and per-priority
 *       mix, and latency percentiles. Default is deterministic virtual
 *       time (same seed -> byte-identical decision log); --wall drives
 *       real worker threads instead. Telemetry flags attach the
 *       src/telemetry plane: --metrics-port serves /metrics, /healthz
 *       and /varz on 127.0.0.1 for the duration of the run (port 0 =
 *       ephemeral, printed), --metrics-file renders the Prometheus
 *       exposition to a file (every 500 ms under --wall, once at drain
 *       in virtual time), --postmortem-dir arms the flight recorder to
 *       dump JSON bundles there, and --inject-stall (requires --wall)
 *       wedges the first dispatched request until the watchdog breaks
 *       it — producing exactly one postmortem. --chaos runs the soak
 *       under a named deterministic chaos scenario (rung-failure,
 *       flaky-backend, storm, stall-hedge, stall-crash — see
 *       serve/chaos.h) with the matching resilience profile armed
 *       (circuit breakers, retry budget, hedging, quarantine); the
 *       fault schedule derives from --seed, so same-seed chaos runs
 *       stay byte-identical in virtual time. --tenant-policy enables
 *       the multi-tenant isolation plane (serve/tenancy.h) from inline
 *       JSON ('{...}') or a JSON file: per-tenant weights, token-bucket
 *       admission rates, bulkheads, priority ceilings, tier floors and
 *       the brownout controller. --tenant-scenario runs a named
 *       scenario instead (noisy-neighbor, quota-storm) whose arrival
 *       mix drives the per-request tenant draw, and --drain exercises
 *       graceful drain once the offered-load window closes. Exits
 *       non-zero on zero goodput.
 *
 * Command-line robustness: every numeric argument goes through checked
 * parsing (Expected-based) — negative counts, overflow, trailing
 * garbage, and unknown flags are reported with the usage line and exit
 * code 2, never a crash or a silently truncated value.
 *
 * Observability (gemm and network): --trace <file.json> records a
 * Chrome/Perfetto trace_event file, --report <file.json> a structured
 * run report. Either flag switches the command to additionally
 * *execute* the GEMMs through the Mix-GEMM library (random operands of
 * the right shape and bitwidth) so the spans and counters describe a
 * real run, not just the analytic model. --threads N, --modeled, and
 * --layers N (network: only the first N layers) shape that execution.
 *
 * Configurations are written the paper's way: a8-w8, a6-w4, ...
 */

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "accuracy/qat_database.h"
#include "fault/campaign.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/table.h"
#include "dnn/mixed_precision.h"
#include "dnn/models.h"
#include "dnn/network_timing.h"
#include "gemm/kernels/autotune.h"
#include "gemm/kernels/kernel.h"
#include "power/energy_model.h"
#include "runtime/backend.h"
#include "serve/soak.h"
#include "sim/gemm_timing.h"
#include "soc/soc_config.h"
#include "store/artifact.h"
#include "store/modelgen.h"
#include "store/store.h"
#include "telemetry/exporter.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/registry.h"
#include "telemetry/serve_telemetry.h"
#include "tensor/packing.h"
#include "trace/session.h"

using namespace mixgemm;

namespace
{

/**
 * Malformed command line. Thrown at argument-parsing depth, caught in
 * main(), printed with the offending detail, exit code 2 — the
 * convention that separates "you called it wrong" from "it failed"
 * (exit 1).
 */
struct UsageError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** Unwrap a parse result or abort the command with usage exit code. */
template <typename T>
T
orUsage(Expected<T> result)
{
    if (!result.ok())
        throw UsageError(result.status().message());
    return std::move(*result);
}

/**
 * Checked unsigned-integer argument parse: the whole token must be a
 * decimal number within [@p min, @p max]. A leading '-', trailing
 * garbage ("12x"), an empty token, and overflow each come back as
 * kInvalidArgument naming the argument — never a silently truncated or
 * wrapped value.
 */
Expected<uint64_t>
parseUint64(const char *what, const std::string &text, uint64_t min = 0,
            uint64_t max = UINT64_MAX)
{
    uint64_t value = 0;
    const char *begin = text.data();
    const char *end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec == std::errc::result_out_of_range)
        return Status::invalidArgument(
            strCat(what, ": '", text, "' overflows"));
    if (ec != std::errc() || ptr != end || text.empty())
        return Status::invalidArgument(
            strCat(what, ": '", text, "' is not a non-negative integer"));
    if (value < min || value > max)
        return Status::invalidArgument(
            strCat(what, ": ", value, " is outside [", min, ", ", max,
                   "]"));
    return value;
}

Expected<unsigned>
parseUnsigned(const char *what, const std::string &text,
              uint64_t min = 0, uint64_t max = UINT32_MAX)
{
    Expected<uint64_t> value = parseUint64(what, text, min, max);
    if (!value.ok())
        return value.status();
    return static_cast<unsigned>(*value);
}

/** Checked finite-double argument parse within [@p min, @p max]. */
Expected<double>
parseDouble(const char *what, const std::string &text, double min,
            double max)
{
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size() ||
        errno == ERANGE || !std::isfinite(value))
        return Status::invalidArgument(
            strCat(what, ": '", text, "' is not a finite number"));
    if (value < min || value > max)
        return Status::invalidArgument(
            strCat(what, ": ", text, " is outside [", min, ", ", max,
                   "]"));
    return value;
}

/** Largest GEMM extent the CLI accepts: far beyond anything the models
 * price, small enough that m*n*k stays clear of 64-bit overflow. */
constexpr uint64_t kMaxGemmDim = 1ull << 20;

Expected<DataSizeConfig>
parseConfig(const std::string &text)
{
    // Expected form: a<bits>-w<bits>, bitwidths in the paper's 2..8.
    unsigned a = 0;
    unsigned w = 0;
    if (std::sscanf(text.c_str(), "a%u-w%u", &a, &w) != 2)
        return Status::invalidArgument(
            strCat("bad configuration '", text,
                   "' (expected e.g. a8-w8)"));
    if (a < 2 || a > 8 || w < 2 || w > 8)
        return Status::invalidArgument(
            strCat("configuration '", text,
                   "' outside the supported a2..a8 x w2..w8 range"));
    return DataSizeConfig{a, w, true, true};
}

ModelSpec
parseModel(const std::string &key)
{
    if (key == "alexnet")
        return alexNet();
    if (key == "vgg16")
        return vgg16();
    if (key == "resnet18")
        return resNet18();
    if (key == "mobilenet")
        return mobileNetV1();
    if (key == "regnet")
        return regNetX400MF();
    if (key == "efficientnet")
        return efficientNetB0();
    throw UsageError(strCat("unknown network '", key,
                            "' (alexnet vgg16 resnet18 mobilenet "
                            "regnet efficientnet)"));
}

/** Observability flags shared by the gemm and network commands. */
struct TraceOptions
{
    std::string trace_path;  ///< --trace <file.json>
    std::string report_path; ///< --report <file.json>
    unsigned threads = 1;    ///< --threads N (0 = one per hw thread)
    bool modeled = false;    ///< --modeled (default: fast kernel)
    unsigned layers = 0;     ///< --layers N (network; 0 = all)

    bool enabled() const
    {
        return !trace_path.empty() || !report_path.empty();
    }
};

/**
 * Consume one observability flag at argv[i] (advancing @p i past its
 * value); @return false when argv[i] is not one of ours.
 */
bool
parseTraceFlag(int argc, char **argv, int &i, TraceOptions &opts)
{
    const auto value = [&](const char *flag) -> const char * {
        if (i + 1 >= argc)
            throw UsageError(strCat("missing value for ", flag));
        return argv[++i];
    };
    if (std::strcmp(argv[i], "--trace") == 0)
        opts.trace_path = value("--trace");
    else if (std::strcmp(argv[i], "--report") == 0)
        opts.report_path = value("--report");
    else if (std::strcmp(argv[i], "--threads") == 0)
        opts.threads = orUsage(
            parseUnsigned("--threads", value("--threads"), 0, 1024));
    else if (std::strcmp(argv[i], "--modeled") == 0)
        opts.modeled = true;
    else if (std::strcmp(argv[i], "--layers") == 0)
        opts.layers = orUsage(
            parseUnsigned("--layers", value("--layers"), 0, 4096));
    else
        return false;
    return true;
}

std::vector<int32_t>
randomNarrowMatrix(Rng &rng, uint64_t elems, unsigned bw, bool is_signed)
{
    std::vector<int32_t> data(elems);
    const int64_t lo = is_signed ? -(int64_t{1} << (bw - 1)) : 0;
    const int64_t hi = is_signed ? (int64_t{1} << (bw - 1)) - 1
                                 : (int64_t{1} << bw) - 1;
    for (auto &v : data)
        v = static_cast<int32_t>(rng.uniformInt(lo, hi));
    return data;
}

/**
 * Run one labeled GEMM with random operands through @p backend, and
 * record its wall time as session timer "gemm/<label>".
 */
void
runTracedGemm(MixGemmBackend &backend, Rng &rng, std::string label,
              uint64_t m, uint64_t n, uint64_t k,
              const DataSizeConfig &cfg)
{
    const auto a = randomNarrowMatrix(rng, m * k, cfg.bwa, cfg.a_signed);
    const auto b = randomNarrowMatrix(rng, k * n, cfg.bwb, cfg.b_signed);
    backend.setTraceLabel(label);
    using clock = std::chrono::steady_clock;
    const auto start = clock::now();
    {
        // One "layer" span per traced GEMM so the Perfetto view groups
        // the pack/kernel spans under the layer (or bench id) name.
        TraceSpan span("layer", [&] { return label; });
        backend.gemm(a, b, m, n, k, cfg);
    }
    if (TraceSession *session = backend.traceSession())
        session->recordTimerNs(
            "gemm/" + label,
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    clock::now() - start)
                    .count()));
}

/** Write the session artifacts the user asked for. */
int
writeTraceArtifacts(
    const TraceSession &session, const TraceOptions &opts,
    const std::vector<std::pair<std::string, std::string>> &header)
{
    bool ok = true;
    if (!opts.trace_path.empty()) {
        ok = session.writeTrace(opts.trace_path) && ok;
        std::cout << "trace written to " << opts.trace_path
                  << " (load in ui.perfetto.dev)\n";
    }
    if (!opts.report_path.empty()) {
        ok = session.writeReport(opts.report_path, header) && ok;
        std::cout << "report written to " << opts.report_path << "\n";
    }
    return ok ? 0 : 1;
}

int
cmdGemm(int argc, char **argv)
{
    if (argc < 3)
        throw UsageError(
            "usage: mixgemm-cli gemm <m> <n> <k> [config] "
            "[--small-caches] [--trace f.json] [--report f.json] "
            "[--threads N] [--modeled] [--tuning tuning.json]");
    const uint64_t m = orUsage(parseUint64("m", argv[0], 1, kMaxGemmDim));
    const uint64_t n = orUsage(parseUint64("n", argv[1], 1, kMaxGemmDim));
    const uint64_t k = orUsage(parseUint64("k", argv[2], 1, kMaxGemmDim));
    DataSizeConfig cfg{8, 8, true, true};
    SoCConfig soc = SoCConfig::sargantana();
    TraceOptions trace;
    std::string tuning_path;
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--small-caches") == 0)
            soc = SoCConfig::sargantanaSmallCaches();
        else if (std::strcmp(argv[i], "--tuning") == 0) {
            if (i + 1 >= argc)
                throw UsageError("missing value for --tuning");
            tuning_path = argv[++i];
        } else if (parseTraceFlag(argc, argv, i, trace))
            continue;
        else if (argv[i][0] == '-')
            throw UsageError(strCat("unknown flag '", argv[i], "'"));
        else
            cfg = orUsage(parseConfig(argv[i]));
    }

    const GemmTimingModel model(soc);
    const EnergyModel energy(soc);
    const auto geom = geometryForK(computeBsGeometry(cfg), k);
    const auto mix = model.mixGemm(m, n, k, geom);
    const auto dgemm = model.dgemm(m, n, k);
    const auto e =
        energy.mixGemmEnergyFromShape(geom, m, n, k, mix.cycles);

    Table t({"metric", "Mix-GEMM " + cfg.name(), "DGEMM baseline"});
    t.addRow({"cycles", Table::fmtInt(mix.cycles),
              Table::fmtInt(dgemm.cycles)});
    t.addRow({"GOPS", Table::fmt(mix.gops, 2),
              Table::fmt(dgemm.gops, 2)});
    t.addRow({"cycles/MAC", Table::fmt(mix.cycles_per_mac, 3),
              Table::fmt(dgemm.cycles_per_mac, 3)});
    t.addRow({"speed-up",
              Table::fmt(static_cast<double>(dgemm.cycles) / mix.cycles,
                         1) +
                  "x",
              "1.0x"});
    t.addRow({"GOPS/W (engine+mul)", Table::fmt(e.gops_per_watt, 0),
              "-"});
    t.print(std::cout);

    if (trace.enabled() || !tuning_path.empty()) {
        // --tuning implies execution even without --trace/--report:
        // running the GEMM is the only way to show which μ-kernel the
        // tuned entry actually dispatches.
        TraceSession session;
        MixGemmBackend backend(trace.threads,
                               trace.modeled ? KernelMode::Modeled
                                             : KernelMode::Fast);
        backend.attachTraceSession(&session);
        TuningSet tuning;
        if (!tuning_path.empty()) {
            tuning = orUsage(TuningSet::load(tuning_path));
            backend.setTuning(&tuning);
        }
        Rng rng(12345);
        runTracedGemm(backend, rng,
                      strCat("gemm_", m, "x", n, "x", k), m, n, k, cfg);
        const auto reports = session.reports();
        if (!reports.empty())
            std::cout << "dispatched kernel: " << reports.back().kernel
                      << (tuning.find(cfg) ? " (tuned)" : " (default)")
                      << "\n";
        return writeTraceArtifacts(session, trace,
                                   {{"command", "gemm"},
                                    {"config", cfg.name()}});
    }
    return 0;
}

int
cmdNetwork(int argc, char **argv)
{
    if (argc < 1)
        throw UsageError(
            "usage: mixgemm-cli network <name> [config] [--batch N] "
            "[--trace f.json] [--report f.json] [--threads N] "
            "[--modeled] [--layers N]");
    const auto model = parseModel(argv[0]);
    DataSizeConfig cfg{8, 8, true, true};
    unsigned batch = 1;
    TraceOptions trace;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--batch") == 0) {
            if (i + 1 >= argc)
                throw UsageError("missing value for --batch");
            batch = orUsage(
                parseUnsigned("--batch", argv[++i], 1, 1u << 16));
        } else if (parseTraceFlag(argc, argv, i, trace)) {
            continue;
        } else if (argv[i][0] == '-') {
            throw UsageError(strCat("unknown flag '", argv[i], "'"));
        } else {
            cfg = orUsage(parseConfig(argv[i]));
        }
    }
    const GemmTimingModel timing(SoCConfig::sargantana());
    const auto t = timeNetworkMixGemm(model, timing, cfg, true, batch);
    const auto dgemm = timeNetworkDgemm(model, timing);

    Table out({"metric", "value"});
    out.addRow({"network", model.name});
    out.addRow({"config", cfg.name() + " (first/last layers a8-w8)"});
    out.addRow({"batch", std::to_string(batch)});
    out.addRow({"GMACs/image", Table::fmt(model.totalMacs() / 1e9, 3)});
    out.addRow({"throughput", Table::fmt(t.gops, 2) + " GOPS"});
    out.addRow({"latency", Table::fmt(t.latency_ms, 2) + " ms"});
    out.addRow({"speed-up vs DGEMM",
                Table::fmt(static_cast<double>(dgemm.total_cycles) *
                               batch / t.total_cycles,
                           1) +
                    "x"});
    out.print(std::cout);

    if (trace.enabled()) {
        // Execute the per-layer GEMM sweep for real: one Mix-GEMM call
        // per layer shape (batch 1), first/last layers pinned to a8-w8
        // exactly as the analytic model prices them. Depthwise layers
        // run the per-channel column shape the runtime lowers to.
        TraceSession session;
        MixGemmBackend backend(trace.threads,
                               trace.modeled ? KernelMode::Modeled
                                             : KernelMode::Fast);
        backend.attachTraceSession(&session);
        Rng rng(12345);
        const DataSizeConfig cfg88{8, 8, true, true};
        unsigned executed = 0;
        for (const auto &layer : model.layers) {
            if (trace.layers && executed >= trace.layers)
                break;
            const DataSizeConfig layer_cfg =
                layer.is_first || layer.is_last ? cfg88 : cfg;
            const uint64_t ln = layer.conv.groups > 1
                                    ? layer.conv.out_c
                                    : layer.conv.gemmN();
            runTracedGemm(backend, rng, layer.name, layer.conv.gemmM(),
                          ln, layer.conv.gemmK(), layer_cfg);
            ++executed;
        }
        return writeTraceArtifacts(session, trace,
                                   {{"command", "network"},
                                    {"network", model.name},
                                    {"config", cfg.name()}});
    }
    return 0;
}

int
cmdDse(int argc, char **argv)
{
    if (argc < 1)
        throw UsageError("usage: mixgemm-cli dse <name> [max_top1_drop]");
    const auto model = parseModel(argv[0]);
    MixedPrecisionOptions opt;
    opt.max_loss = argc > 1 ? orUsage(parseDouble("max_top1_drop",
                                                  argv[1], 0.0, 100.0))
                            : 1.0;
    const GemmTimingModel timing(SoCConfig::sargantana());
    const auto &db = AccuracyDatabase::paperQat();
    const auto plan = optimizeMixedPrecision(model, timing, db, opt);

    std::cout << model.name << ": per-layer plan under a "
              << Table::fmt(opt.max_loss, 1) << "-point budget -> "
              << Table::fmt(plan.gops, 2) << " GOPS at "
              << Table::fmt(plan.estimated_top1, 2) << " % TOP-1\n\n";
    Table t({"layer", "config", "MMACs"});
    for (size_t i = 0; i < model.layers.size(); ++i)
        t.addRow({model.layers[i].name,
                  plan.layer_configs[i].name(),
                  Table::fmt(model.layers[i].macs() / 1e6, 1)});
    t.print(std::cout);
    return 0;
}

int
cmdFaultCampaign(int argc, char **argv)
{
    CampaignConfig config;
    std::string out_path;
    for (int i = 0; i < argc; ++i) {
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                throw UsageError(strCat("missing value for ", flag));
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--m") == 0)
            config.m = orUsage(
                parseUint64("--m", value("--m"), 1, kMaxGemmDim));
        else if (std::strcmp(argv[i], "--n") == 0)
            config.n = orUsage(
                parseUint64("--n", value("--n"), 1, kMaxGemmDim));
        else if (std::strcmp(argv[i], "--k") == 0)
            config.k = orUsage(
                parseUint64("--k", value("--k"), 1, kMaxGemmDim));
        else if (std::strcmp(argv[i], "--network") == 0)
            config.network = parseModel(value("--network")).name;
        else if (std::strcmp(argv[i], "--layers") == 0)
            config.max_layers = orUsage(
                parseUnsigned("--layers", value("--layers"), 0, 4096));
        else if (std::strcmp(argv[i], "--seed") == 0)
            config.base_seed =
                orUsage(parseUint64("--seed", value("--seed")));
        else if (std::strcmp(argv[i], "--runs") == 0)
            config.runs_per_cell = orUsage(
                parseUnsigned("--runs", value("--runs"), 1, 1u << 20));
        else if (std::strcmp(argv[i], "--max-faults") == 0)
            config.max_faults = orUsage(parseUnsigned(
                "--max-faults", value("--max-faults"), 1, 1u << 16));
        else if (std::strcmp(argv[i], "--bits") == 0)
            config.bits_per_fault = orUsage(
                parseUnsigned("--bits", value("--bits"), 1, 64));
        else if (std::strcmp(argv[i], "--threads") == 0)
            config.threads = orUsage(
                parseUnsigned("--threads", value("--threads"), 0, 1024));
        else if (std::strcmp(argv[i], "--modeled") == 0)
            config.kernel_mode = KernelMode::Modeled;
        else if (std::strcmp(argv[i], "--site") == 0) {
            config.sites.push_back(
                orUsage(faultSiteFromName(value("--site"))));
        } else if (std::strcmp(argv[i], "--fault-model") == 0) {
            config.models.push_back(orUsage(
                faultModelFromName(value("--fault-model"))));
        } else if (std::strcmp(argv[i], "--policy") == 0) {
            config.policies.push_back(
                orUsage(faultPolicyFromName(value("--policy"))));
        } else if (std::strcmp(argv[i], "--out") == 0)
            out_path = value("--out");
        else if (argv[i][0] == '-')
            throw UsageError(strCat("unknown flag '", argv[i], "'"));
        else
            config.config = orUsage(parseConfig(argv[i]));
    }

    const CampaignResult result = runFaultCampaign(config);

    Table t({"site", "model", "policy", "corrupted", "detected",
             "corrected", "escaped", "min acc"});
    for (const auto &cell : result.cells)
        t.addRow({faultSiteName(cell.site), faultModelName(cell.model),
                  faultPolicyName(cell.policy),
                  strCat(cell.corrupted_runs, "/", cell.runs),
                  std::to_string(cell.detected_runs),
                  std::to_string(cell.corrected_runs),
                  std::to_string(cell.escaped_runs),
                  Table::fmt(cell.min_accuracy, 3)});
    t.print(std::cout);
    std::cout << "clean ABFT overhead: "
              << Table::fmt(100.0 * result.abft_overhead, 1)
              << " % (off " << Table::fmt(result.clean_off_secs * 1e3, 2)
              << " ms, detect "
              << Table::fmt(result.clean_detect_secs * 1e3, 2)
              << " ms); clean runs identical across policies: "
              << (result.clean_runs_identical ? "yes" : "NO") << "\n";

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        if (!os)
            fatal(strCat("cannot open ", out_path, " for writing"));
        os << result.toJson();
        std::cout << "campaign report written to " << out_path << "\n";
    } else {
        std::cout << result.toJson();
    }
    return result.clean_runs_identical ? 0 : 1;
}

int
cmdServeSoak(int argc, char **argv)
{
    SoakConfig config;
    std::string out_path;
    std::string metrics_file;
    std::string postmortem_dir;
    int metrics_port = -1; ///< -1 = no HTTP listener
    for (int i = 0; i < argc; ++i) {
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                throw UsageError(strCat("missing value for ", flag));
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--seed") == 0)
            config.seed = orUsage(parseUint64("--seed", value("--seed")));
        else if (std::strcmp(argv[i], "--duration") == 0)
            config.duration_s = orUsage(parseDouble(
                "--duration", value("--duration"), 0.01, 3600.0));
        else if (std::strcmp(argv[i], "--arrival") == 0)
            config.arrival_hz = orUsage(parseDouble(
                "--arrival", value("--arrival"), 0.1, 1e6));
        else if (std::strcmp(argv[i], "--burst") == 0)
            config.burst_factor = orUsage(
                parseDouble("--burst", value("--burst"), 1.0, 1000.0));
        else if (std::strcmp(argv[i], "--queue") == 0)
            config.queue_capacity = orUsage(
                parseUnsigned("--queue", value("--queue"), 1, 1u << 20));
        else if (std::strcmp(argv[i], "--tiers") == 0)
            config.ladder_tiers = orUsage(
                parseUnsigned("--tiers", value("--tiers"), 1, 3));
        else if (std::strcmp(argv[i], "--retries") == 0)
            config.max_retries = orUsage(
                parseUnsigned("--retries", value("--retries"), 0, 16));
        else if (std::strcmp(argv[i], "--epochs") == 0)
            config.train_epochs = orUsage(
                parseUnsigned("--epochs", value("--epochs"), 1, 64));
        else if (std::strcmp(argv[i], "--wall") == 0)
            config.virtual_time = false;
        else if (std::strcmp(argv[i], "--workers") == 0)
            config.wall_workers = orUsage(
                parseUnsigned("--workers", value("--workers"), 1, 256));
        else if (std::strcmp(argv[i], "--modeled") == 0)
            config.kernel_mode = KernelMode::Modeled;
        else if (std::strcmp(argv[i], "--no-decisions") == 0)
            config.emit_decision_log = false;
        else if (std::strcmp(argv[i], "--tenants") == 0)
            config.tenants = orUsage(
                parseUnsigned("--tenants", value("--tenants"), 1, 64));
        else if (std::strcmp(argv[i], "--tenant-policy") == 0) {
            // Inline JSON ('{...}') or a path to a JSON file.
            std::string text = value("--tenant-policy");
            if (text.empty() || text[0] != '{') {
                std::ifstream in(text);
                if (!in)
                    throw UsageError(strCat(
                        "--tenant-policy: cannot read '", text, "'"));
                std::ostringstream ss;
                ss << in.rdbuf();
                text = ss.str();
            }
            Expected<TenancyOptions> parsed = parseTenancyJson(text);
            if (!parsed.ok())
                throw UsageError(parsed.status().message());
            config.tenancy = std::move(*parsed);
        } else if (std::strcmp(argv[i], "--tenant-scenario") == 0)
            config.tenant_scenario = value("--tenant-scenario");
        else if (std::strcmp(argv[i], "--drain") == 0)
            config.graceful_drain = true;
        else if (std::strcmp(argv[i], "--metrics-port") == 0)
            metrics_port = static_cast<int>(orUsage(parseUnsigned(
                "--metrics-port", value("--metrics-port"), 0, 65535)));
        else if (std::strcmp(argv[i], "--metrics-file") == 0)
            metrics_file = value("--metrics-file");
        else if (std::strcmp(argv[i], "--postmortem-dir") == 0)
            postmortem_dir = value("--postmortem-dir");
        else if (std::strcmp(argv[i], "--inject-stall") == 0)
            config.inject_stall = true;
        else if (std::strcmp(argv[i], "--chaos") == 0)
            config.chaos_scenario = value("--chaos");
        else if (std::strcmp(argv[i], "--out") == 0)
            out_path = value("--out");
        else
            throw UsageError(
                strCat("unknown argument '", argv[i], "'"));
    }
    if (config.inject_stall && config.virtual_time)
        throw UsageError("--inject-stall requires --wall (the watchdog "
                         "is only armed in threaded mode)");
    if (!config.chaos_scenario.empty()) {
        // Validate the scenario name up front so a typo is a usage
        // error here, not a fatal() deep inside the soak.
        const Expected<ChaosProfile> probe = chaosProfileByName(
            config.chaos_scenario,
            static_cast<uint64_t>(config.duration_s * 1e9));
        if (!probe.ok())
            throw UsageError(probe.status().message());
    }
    if (!config.tenant_scenario.empty()) {
        const Expected<TenantScenario> probe =
            tenantScenarioByName(config.tenant_scenario);
        if (!probe.ok())
            throw UsageError(probe.status().message());
    }

    // Telemetry plane, built only when a flag asks for it — the default
    // soak stays exactly the pre-telemetry code path.
    const bool telemetry_on = metrics_port >= 0 ||
                              !metrics_file.empty() ||
                              !postmortem_dir.empty();
    std::unique_ptr<MetricsRegistry> registry;
    std::unique_ptr<FlightRecorder> recorder;
    std::unique_ptr<ServeTelemetry> telemetry;
    std::unique_ptr<TraceSession> session;
    std::unique_ptr<MetricsHttpServer> http;
    std::unique_ptr<MetricsFileExporter> file_exporter;
    if (telemetry_on) {
        registry = std::make_unique<MetricsRegistry>();
        if (!postmortem_dir.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(postmortem_dir, ec);
            if (ec)
                fatal(strCat("cannot create --postmortem-dir '",
                             postmortem_dir, "': ", ec.message()));
            FlightRecorderOptions fro;
            fro.dump_dir = postmortem_dir;
            fro.registry = registry.get();
            recorder = std::make_unique<FlightRecorder>(fro);
        }
        ServeTelemetryOptions sto;
        sto.registry = registry.get();
        sto.recorder = recorder.get();
        sto.include_wall_metrics = !config.virtual_time;
        sto.model = "smallcnn";
        telemetry = std::make_unique<ServeTelemetry>(sto);
        session = std::make_unique<TraceSession>();
        telemetry->attachSession(session.get(), /*keep_reports=*/false);
        config.session = session.get();
        config.on_server_start = [&](InferenceServer &server) {
            telemetry->attachServer(&server);
            if (metrics_port >= 0) {
                HttpExporterOptions ho;
                ho.port = static_cast<uint16_t>(metrics_port);
                // /healthz degrades to 503 while breakers are open or
                // backends quarantined; the listener stops at drain,
                // before the telemetry object dies.
                ho.health = [t = telemetry.get()] {
                    return t->healthReport();
                };
                auto listener =
                    MetricsHttpServer::start(registry.get(), ho);
                if (!listener.ok())
                    fatal(strCat("serve-soak: ",
                                 listener.status().toString()));
                http = std::move(*listener);
                std::cout << "metrics listening on 127.0.0.1:"
                          << http->port() << "\n";
            }
            if (!metrics_file.empty())
                file_exporter = std::make_unique<MetricsFileExporter>(
                    registry.get(), metrics_file,
                    config.virtual_time
                        ? std::chrono::milliseconds(0)
                        : std::chrono::milliseconds(500));
        };
        // The exporters render through the server's stats; stop them
        // while the server is still alive (it dies when runServeSoak
        // returns).
        config.on_server_drained = [&](InferenceServer &) {
            if (file_exporter) {
                if (Status s = file_exporter->writeOnce(); !s.ok())
                    warn(s.toString());
                file_exporter->stop();
            }
            if (http)
                http->stop();
        };
    }

    const SoakResult result = runServeSoak(config);

    Table t({"metric", "value"});
    t.addRow({"mode", config.virtual_time ? "virtual-time" : "wall"});
    t.addRow({"elapsed", Table::fmt(result.elapsed_s, 3) + " s"});
    t.addRow({"submitted", std::to_string(result.stats.submitted)});
    t.addRow({"completed ok", std::to_string(result.stats.completed_ok)});
    t.addRow({"goodput", Table::fmt(result.goodput_rps, 1) + " req/s"});
    t.addRow({"shed", std::to_string(result.stats.shed)});
    t.addRow({"rejected (full)",
              std::to_string(result.stats.rejected_full)});
    t.addRow({"rejected (invalid)",
              std::to_string(result.stats.rejected_invalid)});
    t.addRow({"deadline missed",
              std::to_string(result.stats.expired_submit +
                             result.stats.expired_queue +
                             result.stats.deadline_exceeded)});
    t.addRow({"retries", std::to_string(result.stats.retries)});
    t.addRow({"degrade/recover",
              strCat(result.stats.degrade_steps, "/",
                     result.stats.recover_steps)});
    t.addRow({"watchdog cancels",
              std::to_string(result.stats.watchdog_cancels)});
    if (!config.chaos_scenario.empty()) {
        t.addRow({"chaos scenario", config.chaos_scenario});
        t.addRow({"chaos events",
                  std::to_string(result.stats.chaos_events)});
        t.addRow({"breaker open/close",
                  strCat(result.stats.breaker_open_events, "/",
                         result.stats.breaker_close_events)});
        t.addRow({"breaker fast-fails",
                  std::to_string(result.stats.breaker_fast_fails)});
        t.addRow({"retry budget denied",
                  std::to_string(result.stats.retry_budget_denied)});
        t.addRow({"hedges (wins)",
                  strCat(result.stats.hedges_launched, " (",
                         result.stats.hedge_wins, ")")});
        t.addRow({"quarantines",
                  std::to_string(result.stats.backend_quarantines)});
    }
    if (result.config.tenancy.enabled) {
        if (!config.tenant_scenario.empty())
            t.addRow({"tenant scenario", config.tenant_scenario});
        t.addRow({"tenants", std::to_string(result.stats.tenant_count)});
        t.addRow({"tenant rejects (rate/bulkhead/limit)",
                  strCat(result.stats.rejected_rate, "/",
                         result.stats.rejected_bulkhead, "/",
                         result.stats.rejected_tenant_limit)});
        t.addRow({"brownout steps/clears",
                  strCat(result.stats.brownout_steps, "/",
                         result.stats.brownout_clears)});
        if (config.graceful_drain)
            t.addRow({"drain rejects/cancels",
                      strCat(result.stats.rejected_draining, "/",
                             result.stats.drain_cancelled)});
        for (const auto &entry : result.stats.by_tenant) {
            const TenantStats &ts = entry.second;
            const double goodput =
                result.elapsed_s > 0
                    ? static_cast<double>(ts.completed_ok) /
                          result.elapsed_s
                    : 0.0;
            t.addRow({strCat("tenant ", entry.first),
                      strCat(ts.completed_ok, " ok (",
                             Table::fmt(goodput, 1), " req/s), ",
                             ts.shed, " shed, brownout x",
                             ts.brownout_steps)});
        }
    }
    if (recorder)
        t.addRow({"postmortem dumps",
                  std::to_string(recorder->dumpCount())});
    char hash[32];
    std::snprintf(hash, sizeof(hash), "0x%016llx",
                  static_cast<unsigned long long>(result.decision_hash));
    t.addRow({"decision hash", hash});
    t.print(std::cout);

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        if (!os)
            fatal(strCat("cannot open ", out_path, " for writing"));
        os << result.toJson();
        std::cout << "soak report written to " << out_path << "\n";
    }
    // Zero goodput means the server completed nothing on time — the
    // soak's one hard invariant.
    return result.stats.completed_ok > 0 ? 0 : 1;
}

int
cmdAutotune(int argc, char **argv)
{
    AutotuneOptions options;
    std::string out_path = "mixgemm_tuning.json";
    for (int i = 0; i < argc; ++i) {
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                throw UsageError(strCat("missing value for ", flag));
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--quick") == 0)
            options.quick = true;
        else if (std::strcmp(argv[i], "--out") == 0)
            out_path = value("--out");
        else if (std::strcmp(argv[i], "--m") == 0)
            options.m = orUsage(
                parseUint64("--m", value("--m"), 1, kMaxGemmDim));
        else if (std::strcmp(argv[i], "--n") == 0)
            options.n = orUsage(
                parseUint64("--n", value("--n"), 1, kMaxGemmDim));
        else if (std::strcmp(argv[i], "--k") == 0)
            options.k = orUsage(
                parseUint64("--k", value("--k"), 1, kMaxGemmDim));
        else if (std::strcmp(argv[i], "--reps") == 0)
            options.reps = orUsage(
                parseUnsigned("--reps", value("--reps"), 1, 64));
        else if (std::strcmp(argv[i], "--threads") == 0)
            options.threads = orUsage(parseUnsigned(
                "--threads", value("--threads"), 0, 1024));
        else if (std::strcmp(argv[i], "--preset") == 0)
            options.preset = value("--preset");
        else if (std::strcmp(argv[i], "--l1") == 0)
            options.l1_bytes = orUsage(parseUint64(
                "--l1", value("--l1"), 1024, 1ull << 30));
        else if (std::strcmp(argv[i], "--l2") == 0)
            options.l2_bytes = orUsage(parseUint64(
                "--l2", value("--l2"), 1024, 1ull << 36));
        else if (argv[i][0] == '-')
            throw UsageError(strCat("unknown flag '", argv[i], "'"));
        else
            options.configs.push_back(orUsage(parseConfig(argv[i])));
    }

    const TuningSet tuned = runAutotune(options, &std::cout);

    Table t({"config", "mc", "nc", "kc", "mr x nr", "kernel", "GOPS"});
    for (const auto &e : tuned.entries)
        t.addRow({e.config, std::to_string(e.mc), std::to_string(e.nc),
                  std::to_string(e.kc), strCat(e.mr, "x", e.nr),
                  e.kernel, Table::fmt(e.gops, 2)});
    t.print(std::cout);

    if (Status s = tuned.save(out_path); !s.ok())
        fatal(s.toString());
    std::cout << "tuning written to " << out_path
              << " (feed back with: mixgemm-cli gemm ... --tuning "
              << out_path << ")\n";
    return 0;
}

int
cmdConfigs()
{
    Table t({"config", "MAC/cycle", "kua/kub", "group extent",
             "group cycles", "padding %"});
    for (const auto &cfg : allSupportedConfigs()) {
        const auto g = computeBsGeometry(cfg);
        t.addRow({cfg.name(), Table::fmt(g.macsPerCycle(), 2),
                  strCat(g.kua, "/", g.kub),
                  std::to_string(g.group_extent),
                  std::to_string(g.group_cycles),
                  Table::fmt(100 * g.paddingOverhead(), 1)});
    }
    t.print(std::cout);
    return 0;
}

/** Minimal JSON string escape for paths and status messages. */
std::string
jsonQuote(const std::string &text)
{
    std::string out = "\"";
    for (const char c : text) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            out += ' ';
        else
            out += c;
    }
    out += '"';
    return out;
}

int
cmdPack(int argc, char **argv)
{
    if (argc < 1)
        throw UsageError(
            "usage: mixgemm-cli pack <network> [config] [--layers N] "
            "[--seed S] [--dir DIR] [--json f.json] [--check] "
            "[--tuning tuning.json] [--no-verify]");
    const auto model = parseModel(argv[0]);
    DataSizeConfig cfg{8, 8, true, true};
    unsigned layers = 0;
    uint64_t seed = 1;
    StoreOptions store_options;
    std::string json_path;
    std::string tuning_path;
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                throw UsageError(strCat("missing value for ", flag));
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--layers") == 0)
            layers = orUsage(
                parseUnsigned("--layers", value("--layers"), 0, 4096));
        else if (std::strcmp(argv[i], "--seed") == 0)
            seed = orUsage(parseUint64("--seed", value("--seed")));
        else if (std::strcmp(argv[i], "--dir") == 0)
            store_options.dir = value("--dir");
        else if (std::strcmp(argv[i], "--json") == 0)
            json_path = value("--json");
        else if (std::strcmp(argv[i], "--tuning") == 0)
            tuning_path = value("--tuning");
        else if (std::strcmp(argv[i], "--check") == 0)
            check = true;
        else if (std::strcmp(argv[i], "--no-verify") == 0)
            store_options.verify_checksums = false;
        else if (argv[i][0] == '-')
            throw UsageError(strCat("unknown flag '", argv[i], "'"));
        else
            cfg = orUsage(parseConfig(argv[i]));
    }

    // Same (network, bits, seed) => byte-identical weights => the same
    // content key, so the second invocation of this command resolves to
    // the artifact the first one wrote.
    const QuantizedGraph graph =
        syntheticQuantizedGraph(model, cfg.bwa, cfg.bwb, seed, layers);
    TuningSet tuning;
    const TuningSet *tuning_ptr = nullptr;
    if (!tuning_path.empty()) {
        tuning = orUsage(TuningSet::load(tuning_path));
        tuning_ptr = &tuning;
    }

    PackedWeightStore store(store_options);
    const PackCounters before = packCounters();
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    auto loaded = store.load(graph, tuning_ptr);
    const double load_secs =
        std::chrono::duration<double>(clock::now() - t0).count();
    if (!loaded.ok())
        fatal(loaded.status().toString());
    const std::shared_ptr<const PackedModel> packed = *loaded;
    const PackCounters after = packCounters();

    // Zero-copy verdict: a cached load must have done no packing or
    // expansion work, and every panel must borrow the mapping.
    const bool cache_hit = packed->from_cache;
    bool zero_copy = cache_hit && after.b_packs == before.b_packs &&
                     after.cluster_builds == before.cluster_builds;
    if (cache_hit)
        for (const auto &e : packed->entries)
            zero_copy = zero_copy && e.weights.borrowsStorage();

    bool identical = true;
    if (check) {
        auto fresh = packGraphWeights(graph, true);
        if (!fresh.ok())
            fatal(fresh.status().toString());
        identical = fresh->entries.size() == packed->entries.size();
        for (size_t i = 0; identical && i < packed->entries.size();
             ++i) {
            const CompressedB &got = packed->entries[i].weights;
            const CompressedB &want = fresh->entries[i].weights;
            got.ensureClusterPanels();
            want.ensureClusterPanels();
            identical =
                packed->entries[i].node_index ==
                    fresh->entries[i].node_index &&
                got.words().size() == want.words().size() &&
                std::equal(got.words().begin(), got.words().end(),
                           want.words().begin()) &&
                got.clusterPanelWordCount() ==
                    want.clusterPanelWordCount() &&
                (got.clusterPanelWordCount() == 0 ||
                 std::memcmp(got.groupClusters(0, 0),
                             want.groupClusters(0, 0),
                             got.clusterPanelWordCount() * 8) == 0);
        }
    }

    char keybuf[32];
    std::snprintf(keybuf, sizeof(keybuf), "0x%016llx",
                  static_cast<unsigned long long>(packed->key));
    Table t({"metric", "value"});
    t.addRow({"network", model.name});
    t.addRow({"config", cfg.name()});
    t.addRow({"nodes packed", std::to_string(packed->entries.size())});
    t.addRow({"content key", keybuf});
    t.addRow({"cache", cache_hit ? "hit (mmap)" : "miss (cold pack)"});
    t.addRow({"load time", Table::fmt(load_secs * 1e3, 3) + " ms"});
    t.addRow({"packed bytes", std::to_string(packed->packed_bytes)});
    t.addRow({"mapped bytes", std::to_string(packed->mapped_bytes)});
    t.addRow({"zero-copy",
              cache_hit ? (zero_copy ? "yes" : "NO") : "n/a"});
    if (check)
        t.addRow({"identical to fresh pack", identical ? "yes" : "NO"});
    t.addRow({"artifact", packed->path.empty() ? "(not persisted)"
                                               : packed->path});
    t.print(std::cout);

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os)
            fatal(strCat("cannot open ", json_path, " for writing"));
        os << "{\n"
           << "  \"network\": " << jsonQuote(model.name) << ",\n"
           << "  \"config\": " << jsonQuote(cfg.name()) << ",\n"
           << "  \"layers\": " << layers << ",\n"
           << "  \"seed\": " << seed << ",\n"
           << "  \"nodes\": " << packed->entries.size() << ",\n"
           << "  \"key\": " << jsonQuote(keybuf) << ",\n"
           << "  \"cache_hit\": " << (cache_hit ? "true" : "false")
           << ",\n"
           << "  \"load_secs\": " << load_secs << ",\n"
           << "  \"packed_bytes\": " << packed->packed_bytes << ",\n"
           << "  \"mapped_bytes\": " << packed->mapped_bytes << ",\n"
           << "  \"zero_copy\": "
           << (cache_hit ? (zero_copy ? "true" : "false") : "null")
           << ",\n"
           << "  \"identical\": "
           << (check ? (identical ? "true" : "false") : "null") << ",\n"
           << "  \"artifact\": " << jsonQuote(packed->path) << "\n"
           << "}\n";
        std::cout << "pack report written to " << json_path << "\n";
    }
    // A cached load that copied, or a mapped panel that diverged from a
    // fresh pack, is a hard failure — the CI lifecycle job gates on it.
    return (cache_hit && !zero_copy) || !identical ? 1 : 0;
}

int
cmdCacheStats(int argc, char **argv)
{
    std::string dir = "mixgemm_cache";
    bool verify = true;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dir") == 0) {
            if (i + 1 >= argc)
                throw UsageError("missing value for --dir");
            dir = argv[++i];
        } else if (std::strcmp(argv[i], "--no-verify") == 0)
            verify = false;
        else
            throw UsageError(
                strCat("unknown argument '", argv[i], "'"));
    }
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        std::cout << "no artifact cache at " << dir << "\n";
        return 0;
    }
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(dir, ec))
        if (entry.path().extension() == ".mgw")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());

    Table t({"artifact", "bytes", "nodes", "packed bytes", "status"});
    uint64_t total_bytes = 0;
    unsigned bad = 0;
    for (const auto &path : files) {
        const uint64_t bytes = fs::file_size(path, ec);
        total_bytes += bytes;
        auto loaded = loadArtifact(path.string(), verify);
        if (loaded.ok()) {
            t.addRow({path.filename().string(), std::to_string(bytes),
                      std::to_string(loaded->entries.size()),
                      std::to_string(loaded->packed_bytes), "ok"});
        } else {
            ++bad;
            t.addRow({path.filename().string(), std::to_string(bytes),
                      "-", "-", loaded.status().message()});
        }
    }
    t.print(std::cout);
    std::cout << files.size() << " artifact(s), " << total_bytes
              << " bytes total"
              << (bad ? strCat(", ", bad, " invalid") : std::string())
              << "\n";
    return bad ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc < 2) {
            std::cerr << "usage: mixgemm-cli "
                         "<gemm|network|dse|configs|autotune|pack|"
                         "cache-stats|fault-campaign|serve-soak> ...\n";
            return 2;
        }
        const std::string cmd = argv[1];
        if (cmd == "gemm")
            return cmdGemm(argc - 2, argv + 2);
        if (cmd == "network")
            return cmdNetwork(argc - 2, argv + 2);
        if (cmd == "dse")
            return cmdDse(argc - 2, argv + 2);
        if (cmd == "configs")
            return cmdConfigs();
        if (cmd == "autotune")
            return cmdAutotune(argc - 2, argv + 2);
        if (cmd == "pack")
            return cmdPack(argc - 2, argv + 2);
        if (cmd == "cache-stats")
            return cmdCacheStats(argc - 2, argv + 2);
        if (cmd == "fault-campaign")
            return cmdFaultCampaign(argc - 2, argv + 2);
        if (cmd == "serve-soak")
            return cmdServeSoak(argc - 2, argv + 2);
        std::cerr << "unknown command '" << cmd << "'\n";
        return 2;
    } catch (const UsageError &e) {
        std::cerr << "error: " << e.what() << "\n"
                  << "run 'mixgemm-cli' with no arguments for usage\n";
        return 2;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
