/**
 * @file
 * mixgemm-cli — command-line front end to the simulator, for downstream
 * users who want numbers without writing C++.
 *
 *   mixgemm-cli gemm <m> <n> <k> [config] [--small-caches]
 *       Price one GEMM on the simulated SoC (plus the DGEMM baseline).
 *
 *   mixgemm-cli network <name> [config] [--batch N]
 *       Price a CNN end to end (names: alexnet vgg16 resnet18
 *       mobilenet regnet efficientnet).
 *
 *   mixgemm-cli dse <name> [max_top1_drop]
 *       Greedy per-layer mixed-precision plan under an accuracy budget.
 *
 *   mixgemm-cli configs
 *       List all 49 supported data-size configurations with their
 *       μ-engine geometry.
 *
 * Configurations are written the paper's way: a8-w8, a6-w4, ...
 */

#include <cstring>
#include <iostream>
#include <string>

#include "accuracy/qat_database.h"
#include "common/logging.h"
#include "common/table.h"
#include "dnn/mixed_precision.h"
#include "dnn/models.h"
#include "dnn/network_timing.h"
#include "power/energy_model.h"
#include "sim/gemm_timing.h"
#include "soc/soc_config.h"
#include "tensor/packing.h"

using namespace mixgemm;

namespace
{

DataSizeConfig
parseConfig(const std::string &text)
{
    // Expected form: a<bits>-w<bits>.
    unsigned a = 0;
    unsigned w = 0;
    if (std::sscanf(text.c_str(), "a%u-w%u", &a, &w) != 2)
        fatal("bad configuration '" + text + "' (expected e.g. a8-w8)");
    return DataSizeConfig{a, w, true, true};
}

ModelSpec
parseModel(const std::string &key)
{
    if (key == "alexnet")
        return alexNet();
    if (key == "vgg16")
        return vgg16();
    if (key == "resnet18")
        return resNet18();
    if (key == "mobilenet")
        return mobileNetV1();
    if (key == "regnet")
        return regNetX400MF();
    if (key == "efficientnet")
        return efficientNetB0();
    fatal("unknown network '" + key + "'");
}

int
cmdGemm(int argc, char **argv)
{
    if (argc < 3)
        fatal("usage: mixgemm-cli gemm <m> <n> <k> [config] "
              "[--small-caches]");
    const uint64_t m = std::stoull(argv[0]);
    const uint64_t n = std::stoull(argv[1]);
    const uint64_t k = std::stoull(argv[2]);
    DataSizeConfig cfg{8, 8, true, true};
    SoCConfig soc = SoCConfig::sargantana();
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--small-caches") == 0)
            soc = SoCConfig::sargantanaSmallCaches();
        else
            cfg = parseConfig(argv[i]);
    }

    const GemmTimingModel model(soc);
    const EnergyModel energy(soc);
    const auto geom = geometryForK(computeBsGeometry(cfg), k);
    const auto mix = model.mixGemm(m, n, k, geom);
    const auto dgemm = model.dgemm(m, n, k);
    const auto e =
        energy.mixGemmEnergyFromShape(geom, m, n, k, mix.cycles);

    Table t({"metric", "Mix-GEMM " + cfg.name(), "DGEMM baseline"});
    t.addRow({"cycles", Table::fmtInt(mix.cycles),
              Table::fmtInt(dgemm.cycles)});
    t.addRow({"GOPS", Table::fmt(mix.gops, 2),
              Table::fmt(dgemm.gops, 2)});
    t.addRow({"cycles/MAC", Table::fmt(mix.cycles_per_mac, 3),
              Table::fmt(dgemm.cycles_per_mac, 3)});
    t.addRow({"speed-up",
              Table::fmt(static_cast<double>(dgemm.cycles) / mix.cycles,
                         1) +
                  "x",
              "1.0x"});
    t.addRow({"GOPS/W (engine+mul)", Table::fmt(e.gops_per_watt, 0),
              "-"});
    t.print(std::cout);
    return 0;
}

int
cmdNetwork(int argc, char **argv)
{
    if (argc < 1)
        fatal("usage: mixgemm-cli network <name> [config] [--batch N]");
    const auto model = parseModel(argv[0]);
    DataSizeConfig cfg{8, 8, true, true};
    unsigned batch = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc)
            batch = static_cast<unsigned>(std::stoul(argv[++i]));
        else
            cfg = parseConfig(argv[i]);
    }
    const GemmTimingModel timing(SoCConfig::sargantana());
    const auto t = timeNetworkMixGemm(model, timing, cfg, true, batch);
    const auto dgemm = timeNetworkDgemm(model, timing);

    Table out({"metric", "value"});
    out.addRow({"network", model.name});
    out.addRow({"config", cfg.name() + " (first/last layers a8-w8)"});
    out.addRow({"batch", std::to_string(batch)});
    out.addRow({"GMACs/image", Table::fmt(model.totalMacs() / 1e9, 3)});
    out.addRow({"throughput", Table::fmt(t.gops, 2) + " GOPS"});
    out.addRow({"latency", Table::fmt(t.latency_ms, 2) + " ms"});
    out.addRow({"speed-up vs DGEMM",
                Table::fmt(static_cast<double>(dgemm.total_cycles) *
                               batch / t.total_cycles,
                           1) +
                    "x"});
    out.print(std::cout);
    return 0;
}

int
cmdDse(int argc, char **argv)
{
    if (argc < 1)
        fatal("usage: mixgemm-cli dse <name> [max_top1_drop]");
    const auto model = parseModel(argv[0]);
    MixedPrecisionOptions opt;
    opt.max_loss = argc > 1 ? std::stod(argv[1]) : 1.0;
    const GemmTimingModel timing(SoCConfig::sargantana());
    const auto &db = AccuracyDatabase::paperQat();
    const auto plan = optimizeMixedPrecision(model, timing, db, opt);

    std::cout << model.name << ": per-layer plan under a "
              << Table::fmt(opt.max_loss, 1) << "-point budget -> "
              << Table::fmt(plan.gops, 2) << " GOPS at "
              << Table::fmt(plan.estimated_top1, 2) << " % TOP-1\n\n";
    Table t({"layer", "config", "MMACs"});
    for (size_t i = 0; i < model.layers.size(); ++i)
        t.addRow({model.layers[i].name,
                  plan.layer_configs[i].name(),
                  Table::fmt(model.layers[i].macs() / 1e6, 1)});
    t.print(std::cout);
    return 0;
}

int
cmdConfigs()
{
    Table t({"config", "MAC/cycle", "kua/kub", "group extent",
             "group cycles", "padding %"});
    for (const auto &cfg : allSupportedConfigs()) {
        const auto g = computeBsGeometry(cfg);
        t.addRow({cfg.name(), Table::fmt(g.macsPerCycle(), 2),
                  strCat(g.kua, "/", g.kub),
                  std::to_string(g.group_extent),
                  std::to_string(g.group_cycles),
                  Table::fmt(100 * g.paddingOverhead(), 1)});
    }
    t.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc < 2) {
            std::cerr << "usage: mixgemm-cli "
                         "<gemm|network|dse|configs> ...\n";
            return 2;
        }
        const std::string cmd = argv[1];
        if (cmd == "gemm")
            return cmdGemm(argc - 2, argv + 2);
        if (cmd == "network")
            return cmdNetwork(argc - 2, argv + 2);
        if (cmd == "dse")
            return cmdDse(argc - 2, argv + 2);
        if (cmd == "configs")
            return cmdConfigs();
        std::cerr << "unknown command '" << cmd << "'\n";
        return 2;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
