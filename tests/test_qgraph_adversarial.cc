/**
 * @file
 * Adversarial deserialization tests for QuantizedGraph: hostile model
 * bytes — truncations, huge counts, out-of-range geometry, smuggled
 * quantization parameters, weight codes outside the declared format,
 * trailing garbage, and raw byte noise — must come back as structured
 * Status errors from tryDeserialize(), never as a crash or a silently
 * wrong graph. These run under ASan/UBSan in CI.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "runtime/qgraph.h"

namespace mixgemm
{
namespace
{

/** A small valid graph: one quantized linear layer plus a relu. */
QuantizedGraph
makeGraph()
{
    QNode lin;
    lin.kind = QNode::Kind::kLinear;
    lin.spec.in_c = 4;
    lin.spec.out_c = 3;
    lin.spec.kh = lin.spec.kw = 1;
    lin.spec.in_h = lin.spec.in_w = 1;
    lin.weights_q = {10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21};
    lin.bias = {0.5, -1.25, 2.0};
    QNode relu;
    relu.kind = QNode::Kind::kRelu;
    return QuantizedGraph({lin, relu});
}

/** Replace the first occurrence of @p from; asserts it exists. */
std::string
replaceFirst(std::string text, const std::string &from,
             const std::string &to)
{
    const size_t pos = text.find(from);
    EXPECT_NE(pos, std::string::npos) << "pattern not found: " << from;
    if (pos != std::string::npos)
        text.replace(pos, from.size(), to);
    return text;
}

TEST(QGraphAdversarialTest, ValidTextRoundTrips)
{
    const QuantizedGraph graph = makeGraph();
    const std::string text = graph.serialize();
    const auto back = QuantizedGraph::tryDeserialize(text);
    ASSERT_TRUE(back.ok()) << back.status().toString();
    ASSERT_EQ(back->nodes().size(), 2u);
    const QNode &lin = back->nodes()[0];
    EXPECT_EQ(lin.kind, QNode::Kind::kLinear);
    EXPECT_EQ(lin.spec.in_c, 4u);
    EXPECT_EQ(lin.spec.out_c, 3u);
    EXPECT_EQ(lin.weights_q, graph.nodes()[0].weights_q);
    EXPECT_EQ(lin.bias, graph.nodes()[0].bias);
    EXPECT_DOUBLE_EQ(lin.w_params.scale, 1.0);
    EXPECT_EQ(back->nodes()[1].kind, QNode::Kind::kRelu);
    // The round trip is a fixed point of serialization.
    EXPECT_EQ(back->serialize(), text);
}

TEST(QGraphAdversarialTest, BadMagicRejected)
{
    const auto r = QuantizedGraph::tryDeserialize("onnx-model-v7\n1\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
    EXPECT_FALSE(QuantizedGraph::tryDeserialize("").ok());
}

TEST(QGraphAdversarialTest, HugeNodeCountRejectedBeforeAllocation)
{
    // A count the input cannot possibly hold must be rejected by the
    // length bound, not turned into a multi-gigabyte reserve.
    const auto r = QuantizedGraph::tryDeserialize(
        "mixgemm-qgraph-v1\n987654321\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
    EXPECT_FALSE(
        QuantizedGraph::tryDeserialize("mixgemm-qgraph-v1\n0\n").ok());
    EXPECT_FALSE(
        QuantizedGraph::tryDeserialize("mixgemm-qgraph-v1\n-3\n").ok());
}

TEST(QGraphAdversarialTest, EveryTruncationFailsCleanly)
{
    const std::string text = makeGraph().serialize();
    // Prefixes that end before the last payload record begins can never
    // form a complete graph; each must fail with a structured error.
    const size_t last_record = text.rfind("bias");
    ASSERT_NE(last_record, std::string::npos);
    for (size_t len = 0; len < last_record; ++len) {
        const auto r = QuantizedGraph::tryDeserialize(
            text.substr(0, len));
        EXPECT_FALSE(r.ok()) << "prefix of length " << len;
    }
    // Longer prefixes may cut inside a trailing numeric literal and
    // still parse; the requirement there is only no crash / no UB
    // (exercised under the sanitizers).
    for (size_t len = last_record; len < text.size(); ++len)
        QuantizedGraph::tryDeserialize(text.substr(0, len));
}

TEST(QGraphAdversarialTest, UnknownNodeKindRejected)
{
    const std::string text =
        replaceFirst(makeGraph().serialize(), "node linear",
                     "node blinear");
    const auto r = QuantizedGraph::tryDeserialize(text);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST(QGraphAdversarialTest, GeometryOutOfRangeRejected)
{
    const std::string text = makeGraph().serialize();
    // Zero channels.
    EXPECT_FALSE(QuantizedGraph::tryDeserialize(
                     replaceFirst(text, "4 3 1 0", "0 3 1 0"))
                     .ok());
    // Extent above the 2^16 bound.
    const auto huge = QuantizedGraph::tryDeserialize(
        replaceFirst(text, "4 3 1 0", "4 70000 1 0"));
    ASSERT_FALSE(huge.ok());
    EXPECT_EQ(huge.status().code(), StatusCode::kInvalidArgument);
    // Negative geometry does not wrap around into a huge unsigned.
    EXPECT_FALSE(QuantizedGraph::tryDeserialize(
                     replaceFirst(text, "4 3 1 0", "-4 3 1 0"))
                     .ok());
}

TEST(QGraphAdversarialTest, DepthwiseChannelMismatchRejected)
{
    const auto r = QuantizedGraph::tryDeserialize(
        "mixgemm-qgraph-v1\n1\nnode depthwise\n4 5 3 1\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(QGraphAdversarialTest, SmuggledQuantParamsRejected)
{
    const std::string text = makeGraph().serialize();
    // Zero scale would divide-by-zero every requantization.
    EXPECT_FALSE(QuantizedGraph::tryDeserialize(
                     replaceFirst(text, "a_params 8 1 0 1",
                                  "a_params 8 1 0 0"))
                     .ok());
    // A 0- or 40-bit format would shift out of the int32 domain.
    EXPECT_FALSE(QuantizedGraph::tryDeserialize(
                     replaceFirst(text, "a_params 8 1 0 1",
                                  "a_params 0 1 0 1"))
                     .ok());
    EXPECT_FALSE(QuantizedGraph::tryDeserialize(
                     replaceFirst(text, "w_params 8 1 0 1",
                                  "w_params 40 1 0 1"))
                     .ok());
    // Zero point outside the declared clamp range.
    EXPECT_FALSE(QuantizedGraph::tryDeserialize(
                     replaceFirst(text, "w_params 8 1 0 1",
                                  "w_params 8 1 200 1"))
                     .ok());
}

TEST(QGraphAdversarialTest, WeightViolationsRejected)
{
    const std::string text = makeGraph().serialize();
    // Count disagreeing with the layer geometry (both directions).
    EXPECT_FALSE(QuantizedGraph::tryDeserialize(
                     replaceFirst(text, "weights 12", "weights 11"))
                     .ok());
    EXPECT_FALSE(QuantizedGraph::tryDeserialize(
                     replaceFirst(text, "weights 12", "weights 13"))
                     .ok());
    // A weight code outside the declared 8-bit signed range.
    const auto hot = QuantizedGraph::tryDeserialize(
        replaceFirst(text, "10 11", "300 11"));
    ASSERT_FALSE(hot.ok());
    EXPECT_EQ(hot.status().code(), StatusCode::kInvalidArgument);
}

TEST(QGraphAdversarialTest, BiasViolationsRejected)
{
    const std::string text = makeGraph().serialize();
    EXPECT_FALSE(QuantizedGraph::tryDeserialize(
                     replaceFirst(text, "bias 3", "bias 2"))
                     .ok());
    EXPECT_FALSE(QuantizedGraph::tryDeserialize(
                     replaceFirst(text, "0.5 -1.25 2", "0.5 nan 2"))
                     .ok());
}

TEST(QGraphAdversarialTest, TrailingGarbageRejected)
{
    const std::string text = makeGraph().serialize();
    const auto r = QuantizedGraph::tryDeserialize(text + "node relu\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
    // An understated node count turns the remaining records into
    // trailing garbage.
    EXPECT_FALSE(QuantizedGraph::tryDeserialize(
                     replaceFirst(text, "\n2\n", "\n1\n"))
                     .ok());
    // An overstated count runs out of records.
    EXPECT_FALSE(QuantizedGraph::tryDeserialize(
                     replaceFirst(text, "\n2\n", "\n3\n"))
                     .ok());
}

TEST(QGraphAdversarialTest, RandomBytesNeverCrash)
{
    Rng rng(0xADBEEF);
    for (unsigned iter = 0; iter < 200; ++iter) {
        std::string noise(rng.next() % 256, '\0');
        for (auto &c : noise)
            c = static_cast<char>(rng.next() & 0xFF);
        const auto r = QuantizedGraph::tryDeserialize(noise);
        EXPECT_FALSE(r.ok()); // noise cannot spell the magic
    }
}

TEST(QGraphAdversarialTest, MutatedValidTextNeverCrashes)
{
    const std::string text = makeGraph().serialize();
    Rng rng(0xF00D);
    for (unsigned iter = 0; iter < 300; ++iter) {
        std::string mutated = text;
        const unsigned edits = 1 + rng.next() % 4;
        for (unsigned e = 0; e < edits; ++e)
            mutated[rng.next() % mutated.size()] =
                static_cast<char>(rng.next() & 0xFF);
        // Must return — ok or error — without UB; if it parses, the
        // graph it built satisfies the structural invariants.
        const auto r = QuantizedGraph::tryDeserialize(mutated);
        if (!r.ok())
            continue;
        for (const QNode &n : r->nodes()) {
            if (n.kind == QNode::Kind::kLinear) {
                EXPECT_EQ(n.weights_q.size(),
                          n.spec.gemmK() * n.spec.gemmN() *
                              n.spec.groups);
            }
        }
    }
}

// ---------------------------------------------------------------------
// fromFile(): the serving-registration loading path
// ---------------------------------------------------------------------

/** Write @p bytes under the gtest temp dir and return the path. */
std::string
writeTempFile(const std::string &name, const std::string &bytes)
{
    const std::string path = testing::TempDir() + name;
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    EXPECT_TRUE(os.good()) << path;
    return path;
}

TEST(QGraphFromFileTest, ValidFileRoundTrips)
{
    const std::string path =
        writeTempFile("qgraph_valid.txt", makeGraph().serialize());
    const auto graph = QuantizedGraph::fromFile(path);
    ASSERT_TRUE(graph.ok()) << graph.status().toString();
    EXPECT_EQ(graph->nodes().size(), 2u);
    EXPECT_EQ(graph->serialize(), makeGraph().serialize());
}

TEST(QGraphFromFileTest, MissingFileIsNotFoundWithErrnoText)
{
    const auto graph = QuantizedGraph::fromFile(
        testing::TempDir() + "qgraph_does_not_exist.txt");
    ASSERT_FALSE(graph.ok());
    EXPECT_EQ(graph.status().code(), StatusCode::kNotFound);
    EXPECT_NE(graph.status().message().find("qgraph_does_not_exist"),
              std::string::npos);
}

TEST(QGraphFromFileTest, OversizedFileRefusedBeforeAllocation)
{
    const std::string text = makeGraph().serialize();
    const std::string path = writeTempFile("qgraph_oversize.txt", text);
    const auto graph =
        QuantizedGraph::fromFile(path, /*max_bytes=*/text.size() - 1);
    ASSERT_FALSE(graph.ok());
    EXPECT_EQ(graph.status().code(), StatusCode::kResourceExhausted);
    // At exactly the limit it loads fine.
    const auto fits = QuantizedGraph::fromFile(path, text.size());
    EXPECT_TRUE(fits.ok()) << fits.status().toString();
}

TEST(QGraphFromFileTest, MalformedFileFailsStructurally)
{
    // File-level plumbing succeeds; the bytes then go through the full
    // tryDeserialize() validation and fail as a structured Status.
    const std::string path = writeTempFile(
        "qgraph_malformed.txt",
        replaceFirst(makeGraph().serialize(), "qgraph", "notmagic"));
    const auto graph = QuantizedGraph::fromFile(path);
    ASSERT_FALSE(graph.ok());
    EXPECT_EQ(graph.status().code(), StatusCode::kDataLoss);
}

TEST(QGraphAdversarialTest, ThrowingWrapperRaisesFatalError)
{
    EXPECT_THROW(QuantizedGraph::deserialize("garbage"), FatalError);
    const std::string text = makeGraph().serialize();
    EXPECT_EQ(QuantizedGraph::deserialize(text).nodes().size(), 2u);
}

} // namespace
} // namespace mixgemm
