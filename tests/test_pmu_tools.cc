/**
 * @file
 * Tests for the PMU aggregator, the power-of-two quantization scheme,
 * and the ISS disassembler.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/random.h"
#include "iss/assembler.h"
#include "iss/disassembler.h"
#include "quant/calibration.h"
#include "sim/core.h"
#include "sim/kernel_traces.h"
#include "sim/pmu.h"
#include "soc/soc_config.h"

namespace mixgemm
{
namespace
{

TEST(Pmu, DerivesStallFractionsFromKernelRun)
{
    const SoCConfig soc = SoCConfig::sargantana();
    const auto g = computeBsGeometry({8, 8, true, true});
    UEngineTiming engine(g, soc.uengine);
    InOrderCore core(
        soc,
        [&soc](uint64_t, unsigned, bool) { return soc.l1d.hit_latency; },
        &engine);
    const unsigned groups = 8;
    core.run(mixMicroKernelTrace(g, 4, 4, groups, KernelAddresses{}));

    Pmu pmu;
    pmu.ingest(core.counters());
    pmu.ingest(engine.counters());
    CounterSet busy;
    busy.set("engine_busy_cycles", engine.busyCycles());
    pmu.ingest(busy);
    pmu.setWindow(core.now(), uint64_t{groups} * 16 * g.group_extent);

    const auto m = pmu.metrics();
    EXPECT_GT(m.cycles, 0u);
    EXPECT_GT(m.instructions, 0u);
    EXPECT_GT(m.ipc, 0.2);
    EXPECT_LE(m.ipc, 1.0) << "single-issue core cannot exceed IPC 1";
    EXPECT_GT(m.srcbuf_stall_frac, 0.0);
    EXPECT_LT(m.srcbuf_stall_frac, 0.8);
    EXPECT_GT(m.engine_busy_frac, 0.5);
    EXPECT_NEAR(m.macs_per_cycle, 2.0, 1.0);
}

TEST(Pmu, EmptyWindowIsSafe)
{
    Pmu pmu;
    const auto m = pmu.metrics();
    EXPECT_EQ(m.cycles, 0u);
    EXPECT_EQ(m.ipc, 0.0);
}

TEST(Pmu, ReportMentionsKeyMetrics)
{
    Pmu pmu;
    CounterSet c;
    c.set("cycles", 1000);
    c.set("instructions", 700);
    c.set("srcbuf_full_stall_cycles", 143);
    pmu.ingest(c);
    std::ostringstream os;
    pmu.printReport(os, "μ-kernel PMU");
    const std::string out = os.str();
    EXPECT_NE(out.find("μ-kernel PMU"), std::string::npos);
    EXPECT_NE(out.find("IPC"), std::string::npos);
    EXPECT_NE(out.find("14.3 %"), std::string::npos);
}

TEST(PowerOfTwoQuant, ScaleIsAPowerOfTwo)
{
    Rng rng(12);
    std::vector<double> vals(256);
    for (auto &v : vals)
        v = rng.normal(0.0, 0.7);
    const auto p = calibratePowerOfTwo(vals, 6, true);
    EXPECT_TRUE(isPowerOfTwoScale(p));
    const int shift = scaleShift(p);
    EXPECT_DOUBLE_EQ(p.scale, std::exp2(shift));
    // Range still covers the absmax.
    const auto absmax = calibrateAbsmax(vals, 6, true);
    EXPECT_GE(p.scale, absmax.scale);
    EXPECT_LT(p.scale, absmax.scale * 2.0 + 1e-12);
}

TEST(PowerOfTwoQuant, CostsAtMostOneBitOfResolution)
{
    Rng rng(13);
    std::vector<double> vals(512);
    for (auto &v : vals)
        v = rng.normal();
    const auto absmax = calibrateAbsmax(vals, 5, true);
    const auto po2 = calibratePowerOfTwo(vals, 5, true);
    double err_absmax = 0.0;
    double err_po2 = 0.0;
    for (const double v : vals) {
        err_absmax += std::abs(fakeQuantize(v, absmax) - v);
        err_po2 += std::abs(fakeQuantize(v, po2) - v);
    }
    EXPECT_LE(err_po2, err_absmax * 2.05);
}

TEST(PowerOfTwoQuant, ShiftRejectsNonPowerScales)
{
    QuantParams p;
    p.scale = 0.3;
    EXPECT_FALSE(isPowerOfTwoScale(p));
    EXPECT_THROW(scaleShift(p), FatalError);
    p.scale = 0.25;
    EXPECT_EQ(scaleShift(p), -2);
}

TEST(Disassembler, RendersAssembledProgram)
{
    Program p;
    p.li(A0, 42);
    p.addi(A1, A0, -1);
    p.mul(A2, A0, A1);
    p.ld(A3, A2, 16);
    p.sd(A3, A2, 24);
    p.bne(A0, A1, "done");
    p.label("done");
    p.bsIp(A0, A1);
    p.ebreak();
    const auto words = p.assemble();
    const std::string text = disassembleProgram(words, 0x1000);
    EXPECT_NE(text.find("addi x10, x0, 42"), std::string::npos);
    EXPECT_NE(text.find("mul x12, x10, x11"), std::string::npos);
    EXPECT_NE(text.find("ld x13, 16(x12)"), std::string::npos);
    EXPECT_NE(text.find("sd x13, 24(x12)"), std::string::npos);
    EXPECT_NE(text.find("bne x10, x11, 4"), std::string::npos);
    EXPECT_NE(text.find("bs.ip"), std::string::npos);
    EXPECT_NE(text.find("ebreak"), std::string::npos);
}

TEST(Disassembler, UnknownWordsDoNotThrow)
{
    EXPECT_NE(disassemble(0xffffffffu).find(".word"),
              std::string::npos);
    EXPECT_NE(disassemble(0).find(".word"), std::string::npos);
}

TEST(Disassembler, ShiftImmediates)
{
    Program p;
    p.slli(A0, A1, 12);
    p.srai(A2, A3, 4);
    p.srli(A4, A5, 63);
    const auto words = p.assemble();
    EXPECT_EQ(disassemble(words[0]), "slli x10, x11, 12");
    EXPECT_EQ(disassemble(words[1]), "srai x12, x13, 4");
    EXPECT_EQ(disassemble(words[2]), "srli x14, x15, 63");
}

} // namespace
} // namespace mixgemm
