/**
 * @file
 * Tests for src/power: Table II area reproduction, Source Buffer depth
 * scaling (+67.6 % at depth 32), SoC area (1.96 mm², -53 % small-cache
 * variant), energy-efficiency band and its scaling with data size, and
 * technology scaling factors.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "power/area_model.h"
#include "power/energy_model.h"
#include "power/tech_scaling.h"
#include "tensor/packing.h"

namespace mixgemm
{
namespace
{

TEST(AreaModel, ReproducesTableII)
{
    const AreaModel model;
    const auto parts = model.breakdown();
    ASSERT_EQ(parts.size(), 7u);
    EXPECT_EQ(parts[0].name, "Src Buffers");
    EXPECT_NEAR(parts[0].um2, 4934.63, 0.01);
    EXPECT_NEAR(parts[1].um2, 1094.45, 0.01);
    EXPECT_NEAR(parts[2].um2, 2832.46, 0.01);
    EXPECT_NEAR(parts[3].um2, 1842.25, 0.01);
    EXPECT_NEAR(parts[4].um2, 741.58, 0.01);
    EXPECT_NEAR(parts[5].um2, 1214.35, 0.01);
    EXPECT_NEAR(parts[6].um2, 981.43, 0.01);
    EXPECT_NEAR(model.uengineArea(), 13641.14, 0.1);
}

TEST(AreaModel, UEngineIsOnePercentOfSoC)
{
    const AreaModel model;
    EXPECT_NEAR(model.socArea(), 1.96, 0.02);
    EXPECT_NEAR(model.uengineOverhead(), 0.01, 0.0015);
    // Source Buffers dominate and stay under 0.4 % of the SoC.
    const auto parts = model.breakdown();
    EXPECT_NEAR(parts[0].soc_overhead, 0.0036, 0.0005);
}

TEST(AreaModel, SourceBufferDepthScaling)
{
    // Section III-C: depth 16 -> 32 grows the μ-engine by 67.6 %.
    const AreaModel d16;
    UEngineConfig cfg;
    cfg.srcbuf_depth = 32;
    const AreaModel d32(cfg);
    const double growth = d32.uengineArea() / d16.uengineArea() - 1.0;
    EXPECT_NEAR(growth, 0.676, 0.02);
    // Depth 8 must be smaller.
    cfg.srcbuf_depth = 8;
    EXPECT_LT(AreaModel(cfg).uengineArea(), d16.uengineArea());
}

TEST(AreaModel, SmallCacheSoCHalvesArea)
{
    // Section IV-B: 16 KB L1 + 64 KB L2 reduces SoC area by 53 %.
    const double full =
        AreaModel::socAreaForCaches(32 * 1024, 512 * 1024);
    const double small =
        AreaModel::socAreaForCaches(16 * 1024, 64 * 1024);
    EXPECT_NEAR(1.0 - small / full, 0.53, 0.02);
}

TEST(AreaModel, AccMemScalesWithSlots)
{
    UEngineConfig cfg;
    cfg.accmem_slots = 32;
    const AreaModel doubled(cfg);
    const auto parts = doubled.breakdown();
    EXPECT_NEAR(parts[5].um2, 2 * 1214.35, 0.01);
}

TEST(EnergyModel, EfficiencyInPaperBand)
{
    // Section IV-C: 477.5 GOPS/W to 1.3 TOPS/W across CNNs/configs.
    const EnergyModel model(SoCConfig::sargantana());
    const uint64_t m = 256, n = 256, k = 512;
    for (const unsigned bw : {8u, 5u, 2u}) {
        const auto geom = computeBsGeometry({bw, bw, true, true});
        // Assume compute-bound execution: cycles ~ engine busy cycles.
        const uint64_t cell_groups =
            uint64_t(kGroupCount(k, geom)) * (m / 4) * (n / 4) * 16;
        const uint64_t cycles =
            cell_groups * geom.group_cycles * 5 / 4; // ~80 % busy
        const auto r = model.mixGemmEnergyFromShape(geom, m, n, k,
                                                    cycles);
        EXPECT_GT(r.gops_per_watt, 350.0) << "bw=" << bw;
        EXPECT_LT(r.gops_per_watt, 1600.0) << "bw=" << bw;
    }
}

TEST(EnergyModel, EfficiencyImprovesWithNarrowerData)
{
    const EnergyModel model(SoCConfig::sargantana());
    const uint64_t m = 128, n = 128, k = 256;
    double prev = 0.0;
    for (const unsigned bw : {8u, 6u, 4u, 2u}) {
        const auto geom = computeBsGeometry({bw, bw, true, true});
        const uint64_t cell_groups =
            uint64_t(kGroupCount(k, geom)) * (m / 4) * (n / 4) * 16;
        const uint64_t cycles = cell_groups * geom.group_cycles;
        const auto r =
            model.mixGemmEnergyFromShape(geom, m, n, k, cycles);
        EXPECT_GT(r.gops_per_watt, prev) << "bw=" << bw;
        prev = r.gops_per_watt;
    }
}

TEST(EnergyModel, PowerIsPlausibleForEdge)
{
    // The μ-engine + multiplier power the paper reports efficiency
    // against must be milliwatt-scale, not watts.
    const EnergyModel model(SoCConfig::sargantana());
    const auto geom = computeBsGeometry({8, 8, true, true});
    const uint64_t m = 256, n = 256, k = 256;
    const uint64_t cell_groups =
        uint64_t(kGroupCount(k, geom)) * (m / 4) * (n / 4) * 16;
    const uint64_t cycles = cell_groups * geom.group_cycles * 5 / 4;
    const auto r = model.mixGemmEnergyFromShape(geom, m, n, k, cycles);
    EXPECT_GT(r.avg_power_mw, 1.0);
    EXPECT_LT(r.avg_power_mw, 40.0);
}

TEST(EnergyModel, RejectsZeroTime)
{
    const EnergyModel model(SoCConfig::sargantana());
    const auto geom = computeBsGeometry({8, 8, true, true});
    EXPECT_THROW(model.mixGemmEnergy(geom, 1, 1, 0, 2), FatalError);
}

TEST(TechScaling, FactorsAreMonotone)
{
    EXPECT_NEAR(areaScaleFactor(65, 65), 1.0, 1e-12);
    const double to22 = areaScaleFactor(65, 22);
    EXPECT_GT(to22, 0.08);
    EXPECT_LT(to22, 0.16);
    EXPECT_LT(areaScaleFactor(65, 16), to22);
    EXPECT_GT(areaScaleFactor(22, 65), 1.0);
    EXPECT_THROW(areaScaleFactor(65, 7), FatalError);
}

TEST(TechScaling, EyerissAndUnpuAreaRatios)
{
    // Section V: scaled to 22 nm, Mix-GEMM needs ~96.8x and ~126.5x
    // less area than Eyeriss and UNPU.
    const double mixgemm_mm2 = 0.0136;
    const double eyeriss22 = scaleArea(12.25, 65, 22);
    const double unpu22 = scaleArea(16.0, 65, 22);
    EXPECT_NEAR(eyeriss22 / mixgemm_mm2, 96.8, 25.0);
    EXPECT_NEAR(unpu22 / mixgemm_mm2, 126.5, 32.0);
}

} // namespace
} // namespace mixgemm
