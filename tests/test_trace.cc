/**
 * @file
 * Tests for src/trace: ring wraparound semantics, multi-thread span
 * export (parsed back by a minimal JSON parser), the allocation-free
 * disabled path, log-histogram metrics, and — the load-bearing
 * invariant — bitwise identity of traced and untraced mixGemm runs
 * across thread counts and kernel modes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bs/geometry.h"
#include "common/random.h"
#include "gemm/mixgemm.h"
#include "runtime/backend.h"
#include "runtime/qgraph.h"
#include "trace/metrics.h"
#include "trace/session.h"
#include "trace/tracer.h"

// Global allocation counter: the disabled-tracing test pins TRACE_SCOPE
// to zero allocations, which needs the whole binary's operator new.
static std::atomic<uint64_t> g_allocations{0};

void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace mixgemm
{
namespace
{

/**
 * Minimal recursive-descent JSON validator: accepts exactly the JSON
 * grammar (objects, arrays, strings with escapes, numbers, literals)
 * and nothing else. Enough to prove the exporters emit well-formed
 * documents without a JSON dependency.
 */
class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text)
        : p_(text.data()), end_(text.data() + text.size())
    {
    }

    bool valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return p_ == end_;
    }

  private:
    void skipWs()
    {
        while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                             *p_ == '\r'))
            ++p_;
    }

    bool literal(const char *text)
    {
        const size_t len = std::strlen(text);
        if (static_cast<size_t>(end_ - p_) < len ||
            std::memcmp(p_, text, len) != 0)
            return false;
        p_ += len;
        return true;
    }

    bool string()
    {
        if (p_ >= end_ || *p_ != '"')
            return false;
        ++p_;
        while (p_ < end_ && *p_ != '"') {
            if (*p_ == '\\') {
                ++p_;
                if (p_ >= end_)
                    return false;
                if (*p_ == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++p_;
                        if (p_ >= end_ || !std::isxdigit(
                                              static_cast<unsigned char>(
                                                  *p_)))
                            return false;
                    }
                } else if (!std::strchr("\"\\/bfnrt", *p_)) {
                    return false;
                }
            } else if (static_cast<unsigned char>(*p_) < 0x20) {
                return false;
            }
            ++p_;
        }
        if (p_ >= end_)
            return false;
        ++p_; // closing quote
        return true;
    }

    bool number()
    {
        const char *start = p_;
        if (p_ < end_ && *p_ == '-')
            ++p_;
        while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_)))
            ++p_;
        if (p_ < end_ && *p_ == '.') {
            ++p_;
            while (p_ < end_ &&
                   std::isdigit(static_cast<unsigned char>(*p_)))
                ++p_;
        }
        if (p_ < end_ && (*p_ == 'e' || *p_ == 'E')) {
            ++p_;
            if (p_ < end_ && (*p_ == '+' || *p_ == '-'))
                ++p_;
            while (p_ < end_ &&
                   std::isdigit(static_cast<unsigned char>(*p_)))
                ++p_;
        }
        return p_ > start && (*start != '-' || p_ > start + 1);
    }

    bool value()
    {
        skipWs();
        if (p_ >= end_)
            return false;
        switch (*p_) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool object()
    {
        ++p_; // '{'
        skipWs();
        if (p_ < end_ && *p_ == '}') {
            ++p_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (p_ >= end_ || *p_ != ':')
                return false;
            ++p_;
            if (!value())
                return false;
            skipWs();
            if (p_ < end_ && *p_ == ',') {
                ++p_;
                continue;
            }
            break;
        }
        if (p_ >= end_ || *p_ != '}')
            return false;
        ++p_;
        return true;
    }

    bool array()
    {
        ++p_; // '['
        skipWs();
        if (p_ < end_ && *p_ == ']') {
            ++p_;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (p_ < end_ && *p_ == ',') {
                ++p_;
                continue;
            }
            break;
        }
        if (p_ >= end_ || *p_ != ']')
            return false;
        ++p_;
        return true;
    }

    const char *p_;
    const char *end_;
};

size_t
countSubstring(const std::string &text, const std::string &needle)
{
    size_t count = 0;
    for (size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        ++count;
    return count;
}

std::vector<int32_t>
randomNarrowMatrix(Rng &rng, uint64_t elems, unsigned bw, bool is_signed)
{
    std::vector<int32_t> data(elems);
    const int64_t lo = is_signed ? -(int64_t{1} << (bw - 1)) : 0;
    const int64_t hi = is_signed ? (int64_t{1} << (bw - 1)) - 1
                                 : (int64_t{1} << bw) - 1;
    for (auto &v : data)
        v = static_cast<int32_t>(rng.uniformInt(lo, hi));
    return data;
}

TEST(TraceRing, WraparoundKeepsNewestAndCountsDrops)
{
    TraceRing ring(0, 4);
    EXPECT_EQ(ring.capacity(), 4u);
    for (uint64_t i = 0; i < 10; ++i) {
        TraceEvent e;
        e.category = "test";
        e.start_ns = i;
        e.setName("event");
        ring.push(e);
    }
    EXPECT_EQ(ring.recorded(), 10u);
    EXPECT_EQ(ring.dropped(), 6u);
    const auto events = ring.events();
    ASSERT_EQ(events.size(), 4u);
    // The newest four, oldest first.
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].start_ns, 6 + i);
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(TraceRing(0, 1).capacity(), 4u);
    EXPECT_EQ(TraceRing(0, 5).capacity(), 8u);
    EXPECT_EQ(TraceRing(0, 64).capacity(), 64u);
}

TEST(Tracer, MultiThreadSpansExportValidJson)
{
    constexpr unsigned kThreads = 4;
    constexpr unsigned kSpansPerThread = 16;
    TraceSession session;
    {
        std::vector<std::thread> workers;
        for (unsigned t = 0; t < kThreads; ++t)
            workers.emplace_back([] {
                for (unsigned s = 0; s < kSpansPerThread; ++s) {
                    TRACE_SCOPE("outer", "work");
                    TRACE_SCOPE("inner", "nested \"quoted\"\n");
                }
            });
        for (auto &w : workers)
            w.join();
    }
    const Tracer &tracer = session.tracer();
    EXPECT_EQ(tracer.threadCount(), kThreads);
    EXPECT_EQ(tracer.eventsRecorded(),
              uint64_t{kThreads} * kSpansPerThread * 2);
    EXPECT_EQ(tracer.eventsDropped(), 0u);

    std::ostringstream os;
    tracer.writeJson(os);
    const std::string json = os.str();
    EXPECT_TRUE(JsonValidator(json).valid()) << json.substr(0, 400);
    EXPECT_EQ(countSubstring(json, "\"ph\":\"X\""),
              size_t{kThreads} * kSpansPerThread * 2);
    // One process_name plus one thread_name and one mixgemm_ring
    // (drop-count) metadata event per ring.
    EXPECT_EQ(countSubstring(json, "\"ph\":\"M\""),
              size_t{kThreads} * 2 + 1);
    EXPECT_EQ(countSubstring(json, "\"mixgemm_ring\""),
              size_t{kThreads});
    // The quote and newline in the span name must arrive escaped.
    EXPECT_NE(json.find("nested \\\"quoted\\\"\\n"), std::string::npos);
}

TEST(Tracer, SmallRingsWrapWithoutBreakingExport)
{
    TraceSession session(8);
    for (unsigned i = 0; i < 100; ++i) {
        TRACE_SCOPE("test", "span");
    }
    EXPECT_EQ(session.tracer().eventsRecorded(), 100u);
    EXPECT_EQ(session.tracer().eventsDropped(), 92u);
    std::ostringstream os;
    session.tracer().writeJson(os);
    EXPECT_TRUE(JsonValidator(os.str()).valid());
    EXPECT_EQ(countSubstring(os.str(), "\"ph\":\"X\""), 8u);
}

TEST(Tracer, DisabledPathDoesNotAllocate)
{
    ASSERT_EQ(Tracer::active(), nullptr);
    bool name_fn_called = false;
    const uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        TRACE_SCOPE("test", "literal");
        TraceSpan dynamic("test", [&] {
            name_fn_called = true;
            return std::string("dynamic-name");
        });
    }
    const uint64_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before);
    EXPECT_FALSE(name_fn_called); // name_fn must not run while disabled
}

TEST(Tracer, DynamicNamesRecordedAndTruncatedWhenActive)
{
    TraceSession session;
    {
        TraceSpan span("cat", [] {
            return std::string("layer-with-a-very-long-name-") +
                   std::string(64, 'x');
        });
    }
    const auto threads = session.tracer().snapshot();
    ASSERT_EQ(threads.size(), 1u);
    ASSERT_EQ(threads[0].second.size(), 1u);
    const TraceEvent &e = threads[0].second[0];
    EXPECT_EQ(std::string(e.category), "cat");
    // Copied and truncated to the fixed capacity, terminator included.
    EXPECT_EQ(std::strlen(e.name), TraceEvent::kNameCapacity - 1);
    EXPECT_EQ(std::string(e.name).substr(0, 11), "layer-with-");
}

TEST(Tracer, SequentialSessionsKeepRingsSeparate)
{
    {
        TraceSession first;
        TRACE_SCOPE("test", "first");
    }
    TraceSession second;
    {
        TRACE_SCOPE("test", "second");
    }
    // The thread's cached ring from the first session must not leak
    // into the second (generation key), and spans recorded before the
    // second session existed must not appear in it.
    EXPECT_EQ(second.tracer().eventsRecorded(), 1u);
    const auto threads = second.tracer().snapshot();
    ASSERT_EQ(threads.size(), 1u);
    EXPECT_EQ(std::string(threads[0].second[0].name), "second");
}

TEST(LogHistogram, ExactLowBucketsAndMonotoneIndex)
{
    for (uint64_t v = 0; v < 8; ++v)
        EXPECT_EQ(LogHistogram::bucketIndex(v), v);
    unsigned prev = 0;
    for (uint64_t v = 1; v < (uint64_t{1} << 40); v = v * 2 + 1) {
        const unsigned idx = LogHistogram::bucketIndex(v);
        EXPECT_GE(idx, prev);
        EXPECT_LT(idx, LogHistogram::kBuckets);
        prev = idx;
    }
    EXPECT_LT(LogHistogram::bucketIndex(~uint64_t{0}),
              LogHistogram::kBuckets);
}

TEST(LogHistogram, SummaryAndPercentiles)
{
    LogHistogram h;
    EXPECT_EQ(h.percentile(50), 0.0);
    for (uint64_t v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.sum(), 5050u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 100u);
    // Buckets are at most 12.5 % wide, so the bucket-midpoint estimate
    // sits within 12.5 % of the true order statistic.
    EXPECT_NEAR(h.percentile(50), 50.0, 50.0 * 0.125);
    EXPECT_NEAR(h.percentile(95), 95.0, 95.0 * 0.125);
    EXPECT_NEAR(h.percentile(99), 99.0, 99.0 * 0.125);

    LogHistogram single;
    for (int i = 0; i < 5; ++i)
        single.add(42);
    // Clamping to [min, max] makes a constant stream exact.
    EXPECT_EQ(single.percentile(50), 42.0);
    EXPECT_EQ(single.percentile(99), 42.0);
}

TEST(LogHistogram, MergeMatchesCombinedSamples)
{
    LogHistogram evens, odds, all;
    for (uint64_t v = 1; v <= 1000; ++v) {
        (v % 2 ? odds : evens).add(v);
        all.add(v);
    }
    LogHistogram merged = evens;
    merged.merge(odds);
    EXPECT_EQ(merged.count(), all.count());
    EXPECT_EQ(merged.sum(), all.sum());
    EXPECT_EQ(merged.min(), all.min());
    EXPECT_EQ(merged.max(), all.max());
    for (const double p : {10.0, 50.0, 95.0, 99.0})
        EXPECT_EQ(merged.percentile(p), all.percentile(p));
}

TEST(LogHistogram, PercentileMatchesSortedVectorOracleAtBoundaries)
{
    // Regression: the nearest-rank computation used
    // ceil(p / 100 * count) in floating point, and at exact bucket
    // boundaries (0.95 * 20 = 19.000000000000004) the representation
    // error pushed the rank one sample — and so potentially one log
    // bucket — too high. With 19 small samples and one huge one, p95
    // must report the small value's bucket, not the outlier's.
    LogHistogram skewed;
    for (int i = 0; i < 19; ++i)
        skewed.add(8);
    skewed.add(1000);
    EXPECT_EQ(LogHistogram::bucketIndex(static_cast<uint64_t>(
                  skewed.percentile(95))),
              LogHistogram::bucketIndex(8));
    // Same shape at p99 / count 100: rank 99 of 99 small + 1 big.
    LogHistogram skewed100;
    for (int i = 0; i < 99; ++i)
        skewed100.add(8);
    skewed100.add(1000);
    EXPECT_EQ(LogHistogram::bucketIndex(static_cast<uint64_t>(
                  skewed100.percentile(99))),
              LogHistogram::bucketIndex(8));

    // Every integer percentile against a sorted-vector nearest-rank
    // oracle, at counts chosen so p / 100 * count is a whole number for
    // many p (the boundary cases the bug hit) as well as counts where
    // it never is.
    Rng rng(20260818);
    for (const size_t count : {20u, 25u, 40u, 100u, 97u}) {
        LogHistogram h;
        std::vector<uint64_t> values;
        for (size_t i = 0; i < count; ++i) {
            const uint64_t v =
                static_cast<uint64_t>(rng.uniformInt(1, 1 << 20));
            values.push_back(v);
            h.add(v);
        }
        std::sort(values.begin(), values.end());
        for (unsigned p = 1; p <= 100; ++p) {
            // Exact integer nearest-rank: ceil(p * count / 100).
            const size_t rank =
                std::max<size_t>(1, (p * count + 99) / 100);
            const uint64_t oracle = values[rank - 1];
            EXPECT_EQ(LogHistogram::bucketIndex(static_cast<uint64_t>(
                          h.percentile(p))),
                      LogHistogram::bucketIndex(oracle))
                << "count " << count << " p" << p;
        }
    }
}

TEST(MetricSet, MergeIsOrderIndependent)
{
    MetricSet a, b, c;
    a.addNs("timer", 10);
    a.addNs("only_a", 1);
    b.addNs("timer", 1000);
    c.addNs("timer", 100000);

    MetricSet ab = a;
    ab.merge(b);
    ab.merge(c);
    MetricSet ba = c;
    ba.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab.all().at("timer").count(), 3u);
    EXPECT_EQ(ab.all().at("timer").sum(), ba.all().at("timer").sum());
    EXPECT_EQ(ab.all().at("timer").percentile(50),
              ba.all().at("timer").percentile(50));
    EXPECT_EQ(ab.all().count("only_a"), 1u);
}

TEST(MixGemmTrace, TracedRunsBitwiseIdenticalToUntraced)
{
    const uint64_t m = 33, n = 29, k = 37;
    const DataSizeConfig cfg{4, 4, true, true};
    Rng rng(7);
    const auto a = randomNarrowMatrix(rng, m * k, cfg.bwa, cfg.a_signed);
    const auto b = randomNarrowMatrix(rng, k * n, cfg.bwb, cfg.b_signed);
    const auto geometry = geometryForK(computeBsGeometry(cfg), k);

    BlockingParams base = BlockingParams::paperDefaults();
    base.mc = 16; // several macro tiles despite the small shape
    base.nc = 16;
    const auto reference = mixGemm(a, b, m, n, k, geometry, base);

    for (const unsigned threads : {1u, 3u}) {
        for (const KernelMode mode :
             {KernelMode::Fast, KernelMode::Modeled}) {
            TraceSession session;
            BlockingParams traced = base;
            traced.threads = threads;
            traced.kernel_mode = mode;
            traced.session = &session;
            traced.trace_label = "identity-check";
            const auto result =
                mixGemm(a, b, m, n, k, geometry, traced);
            EXPECT_EQ(result.c, reference.c)
                << "threads=" << threads << " mode="
                << (mode == KernelMode::Fast ? "fast" : "modeled");
            EXPECT_EQ(result.counters.all(), reference.counters.all());
            EXPECT_GT(session.tracer().eventsRecorded(), 0u);
            const auto reports = session.reports();
            ASSERT_EQ(reports.size(), 1u);
            EXPECT_EQ(reports[0].name, "identity-check");
            EXPECT_EQ(reports[0].m, m);
            EXPECT_GT(reports[0].bytes_packed, 0u);
            EXPECT_GT(
                reports[0].timers.all().at("macro_tile").count(), 0u);
        }
    }
}

TEST(TraceSession, ReportJsonIsValidAndCarriesCounters)
{
    TraceSession session;
    MixGemmBackend backend;
    backend.attachTraceSession(&session);
    backend.setTraceLabel("unit-gemm");
    Rng rng(11);
    const DataSizeConfig cfg{8, 8, true, true};
    const auto a = randomNarrowMatrix(rng, 12 * 16, 8, true);
    const auto b = randomNarrowMatrix(rng, 16 * 8, 8, true);
    backend.gemm(a, b, 12, 8, 16, cfg);
    backend.setTraceLabel("unit-gemm-2");
    backend.gemm(a, b, 12, 8, 16, cfg);

    std::ostringstream os;
    session.writeReportJson(os, {{"suite", "test \"escaped\""}});
    const std::string json = os.str();
    EXPECT_TRUE(JsonValidator(json).valid()) << json.substr(0, 400);
    EXPECT_NE(json.find("\"unit-gemm\""), std::string::npos);
    EXPECT_NE(json.find("\"unit-gemm-2\""), std::string::npos);
    EXPECT_NE(json.find("\"bs_ip\""), std::string::npos);
    EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
    EXPECT_NE(json.find("test \\\"escaped\\\""), std::string::npos);

    // Single-report serialization is itself a valid JSON object.
    const auto reports = session.reports();
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_TRUE(JsonValidator(runReportToJson(reports[0])).valid());
}

TEST(TraceSession, QuantizedGraphRecordsPerLayerTimersAndSpans)
{
    const uint64_t k = 8, n = 4;
    QNode node;
    node.kind = QNode::Kind::kLinear;
    node.spec.in_c = static_cast<unsigned>(k);
    node.spec.out_c = static_cast<unsigned>(n);
    node.spec.in_h = node.spec.in_w = 1;
    node.a_params = QuantParams{1.0, 0, 8, true};
    node.w_params = QuantParams{1.0, 0, 8, true};
    node.weights_q.resize(k * n);
    for (size_t i = 0; i < node.weights_q.size(); ++i)
        node.weights_q[i] = static_cast<int32_t>(i % 5) - 2;
    node.bias.assign(n, 0.0);
    const QuantizedGraph graph({node});

    TraceSession session;
    MixGemmBackend backend;
    backend.attachTraceSession(&session);
    std::vector<double> input(k);
    for (size_t i = 0; i < k; ++i)
        input[i] = static_cast<double>(i) - 3.0;
    const auto logits =
        graph.run(Tensor<double>({1, k}, input), backend);
    EXPECT_EQ(logits.size(), n);

    // Per-layer timer in the session metrics...
    const auto metrics = session.metrics();
    ASSERT_EQ(metrics.all().count("layer/linear#0"), 1u);
    EXPECT_EQ(metrics.all().at("layer/linear#0").count(), 1u);
    // ...one RunReport from the backend GEMM...
    EXPECT_EQ(session.reports().size(), 1u);
    // ...and a "layer" span with the dynamic per-layer name.
    bool found = false;
    for (const auto &[tid, events] : session.tracer().snapshot())
        for (const TraceEvent &e : events)
            if (e.category && std::string(e.category) == "layer" &&
                std::string(e.name) == "linear#0")
                found = true;
    EXPECT_TRUE(found);
}

} // namespace
} // namespace mixgemm
