/**
 * @file
 * Chaos plane and resilience tests: the circuit-breaker state machine
 * (closed -> open -> half-open -> closed, probe accounting, reopen on a
 * failed probe), retry-budget token-bucket properties under adversarial
 * schedules (never exceeds budget, refill monotonic under a backwards
 * clock), ChaosEngine determinism (pure function of seed x logical
 * coordinates, call-order independent), server integration under a
 * VirtualClock pump (a persistently failing rung opens its breaker,
 * fast-fails, then half-open probes close it once injection stops;
 * modeled hedges; backend quarantine and recovery; hot ladder reload
 * with requests in flight), chaos-off bitwise equivalence, same-seed
 * chaos-soak determinism, and the packed-weight store's crash-safety
 * satellites (stale temp sweep, load-fault self-heal).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "runtime/backend.h"
#include "runtime/qgraph.h"
#include "serve/chaos.h"
#include "serve/resilience.h"
#include "serve/server.h"
#include "serve/soak.h"
#include "store/store.h"
#include "tensor/packing.h"

namespace mixgemm
{
namespace
{

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Circuit breaker state machine
// ---------------------------------------------------------------------

BreakerOptions
quickBreaker()
{
    BreakerOptions options;
    options.enabled = true;
    options.window_ns = 1'000'000;
    options.min_samples = 4;
    options.failure_threshold = 0.5;
    options.open_ns = 1'000;
    options.half_open_probes = 2;
    options.close_after = 2;
    return options;
}

TEST(CircuitBreaker, DisabledBreakerIsTransparent)
{
    CircuitBreaker breaker; // default options: disabled
    for (int i = 0; i < 32; ++i) {
        const auto d = breaker.admit(static_cast<uint64_t>(i));
        EXPECT_TRUE(d.allow);
        EXPECT_FALSE(d.probe);
        EXPECT_EQ(breaker.onFailure(static_cast<uint64_t>(i), false),
                  BreakerEvent::kNone);
    }
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, ClosedOpensHalfOpensThenCloses)
{
    CircuitBreaker breaker(quickBreaker());
    uint64_t now = 100;

    // Below min_samples nothing trips, even at 100 % failure.
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(breaker.onFailure(now++, false), BreakerEvent::kNone);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

    // Fourth failure: window full, rate 1.0 >= 0.5 -> opens.
    EXPECT_EQ(breaker.onFailure(now++, false), BreakerEvent::kOpened);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

    // Open: requests fast-fail until the cooldown elapses.
    EXPECT_FALSE(breaker.admit(now).allow);

    // Cooldown elapsed: half-open, probes admitted.
    now += 2'000;
    const auto probe1 = breaker.admit(now);
    EXPECT_TRUE(probe1.allow);
    EXPECT_TRUE(probe1.probe);
    EXPECT_EQ(probe1.event, BreakerEvent::kHalfOpened);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

    const auto probe2 = breaker.admit(now);
    EXPECT_TRUE(probe2.probe);
    EXPECT_EQ(probe2.event, BreakerEvent::kNone);

    // close_after = 2 consecutive probe successes close it.
    EXPECT_EQ(breaker.onSuccess(now, /*probe=*/true),
              BreakerEvent::kNone);
    EXPECT_EQ(breaker.onSuccess(now, /*probe=*/true),
              BreakerEvent::kClosed);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    EXPECT_EQ(breaker.probesInFlight(), 0u);

    // The window was cleared on close: old failures cannot re-trip it.
    EXPECT_EQ(breaker.onFailure(now, false), BreakerEvent::kNone);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, FailedProbeReopens)
{
    CircuitBreaker breaker(quickBreaker());
    uint64_t now = 0;
    for (int i = 0; i < 4; ++i)
        breaker.onFailure(now, false);
    ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

    now += 2'000;
    ASSERT_TRUE(breaker.admit(now).probe);
    EXPECT_EQ(breaker.onFailure(now, /*probe=*/true),
              BreakerEvent::kReopened);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    EXPECT_EQ(breaker.probesInFlight(), 0u);

    // The new cooldown starts at the reopen time.
    EXPECT_FALSE(breaker.admit(now + 500).allow);
    EXPECT_TRUE(breaker.admit(now + 2'000).probe);
}

TEST(CircuitBreaker, ProbeSlotsAreBoundedAndAbandonReleases)
{
    CircuitBreaker breaker(quickBreaker());
    uint64_t now = 0;
    for (int i = 0; i < 4; ++i)
        breaker.onFailure(now, false);
    now += 2'000;

    // Exactly half_open_probes slots; further admits are denied.
    EXPECT_TRUE(breaker.admit(now).probe);
    EXPECT_TRUE(breaker.admit(now).probe);
    EXPECT_EQ(breaker.probesInFlight(), 2u);
    EXPECT_FALSE(breaker.admit(now).allow);

    // An abandoned probe (expired in queue, cancelled) frees its slot
    // without feeding the verdict.
    breaker.abandonProbe(true);
    EXPECT_EQ(breaker.probesInFlight(), 1u);
    EXPECT_TRUE(breaker.admit(now).probe);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreaker, MixedWindowRespectsThreshold)
{
    BreakerOptions options = quickBreaker();
    options.min_samples = 4;
    options.failure_threshold = 0.75;
    CircuitBreaker breaker(options);
    uint64_t now = 0;
    // 2/4 failures = 0.5 < 0.75: stays closed.
    breaker.onFailure(now++, false);
    breaker.onSuccess(now++, false);
    breaker.onFailure(now++, false);
    EXPECT_EQ(breaker.onSuccess(now++, false), BreakerEvent::kNone);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    // Two more failures push the rate to 4/6 = 0.66 — still under. A
    // seventh sample at 5/7 = 0.71 under, the eighth tips 6/8 = 0.75.
    breaker.onFailure(now++, false);
    breaker.onFailure(now++, false);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    breaker.onFailure(now++, false);
    EXPECT_EQ(breaker.onFailure(now++, false), BreakerEvent::kOpened);
}

// ---------------------------------------------------------------------
// Retry budget token bucket
// ---------------------------------------------------------------------

TEST(RetryBudget, NeverExceedsBudgetUnderAdversarialSchedule)
{
    RetryBudgetOptions options;
    options.enabled = true;
    options.tokens_per_s = 100.0; // 1 token per 10 ms
    options.burst = 5.0;
    RetryBudget budget(options);

    // Property: at any time t, grants <= burst + rate * elapsed(t),
    // for an adversarial schedule that bursts, idles, and rewinds.
    Rng rng(7);
    uint64_t now = 0;
    uint64_t max_seen = 0;
    for (int step = 0; step < 2'000; ++step) {
        const int kind = static_cast<int>(rng.uniformInt(0, 3));
        if (kind == 0)
            now += rng.uniformInt(0, 20'000'000); // jump ahead
        else if (kind == 1 && now > 1'000)
            now -= 1'000; // clock skew backwards
        budget.tryAcquire(now);
        max_seen = std::max(max_seen, now);
        const double ceiling =
            options.burst +
            options.tokens_per_s * static_cast<double>(max_seen) / 1e9;
        EXPECT_LE(static_cast<double>(budget.granted()),
                  ceiling + 1e-9)
            << "step " << step << " now " << now;
    }
    EXPECT_GT(budget.denied(), 0u);
}

TEST(RetryBudget, RefillIsMonotonicUnderBackwardsClock)
{
    RetryBudgetOptions options;
    options.enabled = true;
    options.tokens_per_s = 1'000.0;
    options.burst = 2.0;
    RetryBudget budget(options);

    EXPECT_TRUE(budget.tryAcquire(1'000'000));
    EXPECT_TRUE(budget.tryAcquire(1'000'000));
    const double drained = budget.level(1'000'000);
    EXPECT_LT(drained, 1.0);

    // A clock that goes backwards must refill nothing — and must not
    // debit the bucket either.
    EXPECT_EQ(budget.level(500'000), drained);
    EXPECT_FALSE(budget.tryAcquire(500'000));

    // Time moving forward refills at the configured rate, capped at
    // burst.
    EXPECT_GT(budget.level(2'000'000), drained);
    EXPECT_DOUBLE_EQ(budget.level(1'000'000'000), options.burst);
}

TEST(RetryBudget, DisabledBudgetAlwaysGrants)
{
    RetryBudget budget; // disabled
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(budget.tryAcquire(0));
    EXPECT_EQ(budget.denied(), 0u);
}

// ---------------------------------------------------------------------
// ChaosEngine determinism
// ---------------------------------------------------------------------

ChaosScenario
noisyScenario()
{
    ChaosScenario s;
    s.name = "test";
    s.throw_prob = 0.1;
    s.stall_prob = 0.2;
    s.stall_ns = 5'000;
    s.transient_prob = 0.3;
    s.queue_delay_prob = 0.25;
    s.queue_delay_ns = 700;
    s.clock_skew_prob = 0.2;
    s.clock_skew_ns = 300;
    s.store_fault_prob = 0.5;
    return s;
}

TEST(ChaosEngine, SameSeedSamePlansAnyCallOrder)
{
    const ChaosEngine a(42, noisyScenario());
    const ChaosEngine b(42, noisyScenario());

    // b is queried in reverse and with interleaved unrelated calls;
    // every plan must still match a's, because each decision is a pure
    // function of (seed, coordinates), not of engine call history.
    std::vector<ChaosAttemptPlan> plans_a;
    for (uint64_t seq = 0; seq < 64; ++seq)
        plans_a.push_back(a.planAttempt(seq, 1 + seq % 3, 0, 0));
    for (uint64_t seq = 64; seq-- > 0;) {
        (void)b.planSubmit(seq, 0);
        (void)b.planStoreFault(seq);
        const ChaosAttemptPlan plan =
            b.planAttempt(seq, 1 + seq % 3, 0, 0);
        EXPECT_EQ(static_cast<int>(plan.action),
                  static_cast<int>(plans_a[seq].action))
            << "seq " << seq;
        EXPECT_EQ(plan.stall_ns, plans_a[seq].stall_ns);
    }
    for (uint64_t seq = 0; seq < 64; ++seq) {
        const auto sa = a.planSubmit(seq, 0);
        const auto sb = b.planSubmit(seq, 0);
        EXPECT_EQ(sa.delay_ns, sb.delay_ns);
        EXPECT_EQ(sa.skew_ns, sb.skew_ns);
        EXPECT_EQ(a.planStoreFault(seq), b.planStoreFault(seq));
    }
}

TEST(ChaosEngine, DifferentSeedsDiverge)
{
    const ChaosEngine a(1, noisyScenario());
    const ChaosEngine b(2, noisyScenario());
    bool diverged = false;
    for (uint64_t seq = 0; seq < 256 && !diverged; ++seq) {
        diverged =
            a.planAttempt(seq, 1, 0, 0).action !=
                b.planAttempt(seq, 1, 0, 0).action ||
            a.planSubmit(seq, 0).delay_ns !=
                b.planSubmit(seq, 0).delay_ns;
    }
    EXPECT_TRUE(diverged);
}

TEST(ChaosEngine, WindowAndTierGateInjection)
{
    ChaosScenario s;
    s.transient_prob = 1.0;
    s.target_tier = 1;
    s.inject_until_ns = 1'000;
    const ChaosEngine engine(9, s);
    EXPECT_TRUE(engine.enabled());

    // Wrong tier: never injected.
    EXPECT_EQ(engine.planAttempt(0, 1, 0, 0).action,
              ChaosAttemptPlan::Action::kNone);
    // Right tier inside the window: always injected.
    EXPECT_EQ(engine.planAttempt(0, 1, 1, 0).action,
              ChaosAttemptPlan::Action::kTransient);
    // Window closed: injection stops.
    EXPECT_FALSE(engine.active(1'000));
    EXPECT_EQ(engine.planAttempt(0, 1, 1, 1'000).action,
              ChaosAttemptPlan::Action::kNone);
}

TEST(ChaosEngine, ProfilesResolveAndUnknownNameIsRejected)
{
    for (const char *name : {"rung-failure", "flaky-backend", "storm",
                             "stall-hedge", "stall-crash"}) {
        const auto profile = chaosProfileByName(name, 1'000'000'000);
        ASSERT_TRUE(profile.ok()) << name;
        EXPECT_EQ(profile->scenario.name, name);
        EXPECT_TRUE(profile->breaker.enabled) << name;
        EXPECT_TRUE(profile->retry_budget.enabled) << name;
    }
    const auto bad = chaosProfileByName("nope", 1'000'000'000);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(bad.status().message().find("rung-failure"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Server integration under the VirtualClock pump
// ---------------------------------------------------------------------

constexpr uint64_t kK = 32;
constexpr uint64_t kN = 8;

QuantizedGraph
makeLinearGraph(uint64_t seed)
{
    Rng rng(seed);
    QNode lin;
    lin.kind = QNode::Kind::kLinear;
    lin.spec.in_c = static_cast<unsigned>(kK);
    lin.spec.out_c = static_cast<unsigned>(kN);
    lin.spec.kh = lin.spec.kw = 1;
    lin.spec.in_h = lin.spec.in_w = 1;
    lin.weights_q.resize(kK * kN);
    for (auto &w : lin.weights_q)
        w = static_cast<int32_t>(rng.uniformInt(-20, 20));
    lin.bias.assign(kN, 0.25);
    lin.a_params = QuantParams{0.05, 0, 8, true};
    lin.w_params = QuantParams{0.05, 0, 8, true};
    return QuantizedGraph({lin});
}

Tensor<double>
makeInput(uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> data(kK);
    for (auto &v : data)
        v = rng.uniformReal(-1.0, 1.0);
    return Tensor<double>({1, kK}, std::move(data));
}

ServerOptions
pumpOptions(VirtualClock &clock)
{
    ServerOptions options;
    options.workers = 0;
    options.virtual_clock = &clock;
    options.degradation.enabled = false;
    options.queue_capacity = 8;
    return options;
}

uint64_t
registerLinear(InferenceServer &server, unsigned tiers = 1,
               uint64_t graph_seed = 7)
{
    std::vector<TierSpec> ladder;
    const char *labels[] = {"full", "eco", "min"};
    for (unsigned t = 0; t < tiers; ++t) {
        TierSpec tier;
        tier.graph = makeLinearGraph(graph_seed);
        tier.label = labels[t % 3];
        ladder.push_back(std::move(tier));
    }
    auto id = server.registerGraph("lin", std::move(ladder), {1, kK});
    EXPECT_TRUE(id.ok()) << id.status().toString();
    return *id;
}

bool
logContains(const InferenceServer &server, const std::string &needle)
{
    for (const std::string &line : server.decisionLog())
        if (line.find(needle) != std::string::npos)
            return true;
    return false;
}

ServeRequest
makeRequest(uint64_t graph_id, int priority = 0,
            uint64_t deadline_ns = 0)
{
    ServeRequest request;
    request.graph_id = graph_id;
    request.input = makeInput(11);
    request.priority = priority;
    request.deadline_ns = deadline_ns;
    return request;
}

TEST(ChaosServer, FailingRungOpensBreakerFastFailsThenRecovers)
{
    // The acceptance scenario in miniature: rung 0 fails every attempt
    // inside the injection window. The breaker opens, fast-fails at
    // admission, then half-open probes close it once injection stops.
    VirtualClock clock;
    ChaosScenario scenario;
    scenario.transient_prob = 1.0;
    scenario.target_tier = 0;
    // The window must dwarf the retry backoff (~1 ms of virtual time
    // per failed request), or retries escape the injection.
    scenario.inject_until_ns = 50'000'000;
    ChaosEngine chaos(5, scenario);

    ServerOptions options = pumpOptions(clock);
    options.chaos = &chaos;
    options.breaker.enabled = true;
    options.breaker.window_ns = 50'000'000;
    options.breaker.min_samples = 4;
    options.breaker.failure_threshold = 0.5;
    options.breaker.open_ns = 10'000'000;
    options.breaker.half_open_probes = 1;
    options.breaker.close_after = 1;
    options.max_retries = 1;
    InferenceServer server(options);
    const uint64_t id = registerLinear(server);

    // Four failing requests trip the breaker.
    for (int i = 0; i < 4; ++i) {
        auto f = server.submit(makeRequest(id));
        ASSERT_EQ(server.pump(1), 1u);
        EXPECT_EQ(f.get().status.code(), StatusCode::kUnavailable);
    }
    EXPECT_TRUE(logContains(server, "chaos kind=transient"));
    EXPECT_TRUE(logContains(server, "breaker_open graph=lin tier=0"));
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.breaker_open_events, 1u);
    EXPECT_EQ(stats.breakers_open, 1u);
    EXPECT_GT(stats.retries, 0u);

    // While open, admission fast-fails without queueing anything.
    auto fast = server.submit(makeRequest(id));
    EXPECT_EQ(fast.get().status.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(logContains(server, "breaker_fast_fail"));
    stats = server.stats();
    EXPECT_GE(stats.breaker_fast_fails, 1u);
    EXPECT_EQ(server.queueDepth(), 0u);

    // Past the cooldown and past the injection window: the next
    // request is a half-open probe, it succeeds, and close_after = 1
    // closes the breaker.
    clock.advanceToNs(60'000'000);
    auto probe = server.submit(makeRequest(id));
    ASSERT_EQ(server.pump(1), 1u);
    EXPECT_TRUE(probe.get().status.ok());
    EXPECT_TRUE(logContains(server, "breaker_half_open"));
    EXPECT_TRUE(logContains(server, "breaker_probe"));
    EXPECT_TRUE(logContains(server, "breaker_close graph=lin tier=0"));
    stats = server.stats();
    EXPECT_EQ(stats.breaker_close_events, 1u);
    EXPECT_EQ(stats.breakers_open, 0u);
    EXPECT_EQ(stats.breaker_probes, 1u);

    // Healthy again: ordinary requests flow.
    auto after = server.submit(makeRequest(id));
    ASSERT_EQ(server.pump(1), 1u);
    EXPECT_TRUE(after.get().status.ok());
}

TEST(ChaosServer, RetryBudgetBoundsRetriesUnderInjection)
{
    VirtualClock clock;
    ChaosScenario scenario;
    scenario.transient_prob = 1.0;
    ChaosEngine chaos(6, scenario);

    ServerOptions options = pumpOptions(clock);
    options.chaos = &chaos;
    options.max_retries = 3;
    options.retry_budget.enabled = true;
    options.retry_budget.tokens_per_s = 0.0; // nothing ever refills
    options.retry_budget.burst = 2.0;
    InferenceServer server(options);
    const uint64_t id = registerLinear(server);

    // Every attempt fails; only two retries exist in the whole budget,
    // so across three requests at most two retries happen and the rest
    // are denied and logged.
    for (int i = 0; i < 3; ++i) {
        auto f = server.submit(makeRequest(id));
        ASSERT_EQ(server.pump(1), 1u);
        EXPECT_EQ(f.get().status.code(), StatusCode::kUnavailable);
    }
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.retries, 2u);
    EXPECT_GT(stats.retry_budget_denied, 0u);
    EXPECT_TRUE(logContains(server, "retry_denied_budget"));
}

TEST(ChaosServer, ModeledHedgeWinsOnStalledAttempt)
{
    VirtualClock clock;
    ChaosScenario scenario;
    scenario.stall_prob = 1.0;
    scenario.stall_ns = 10'000'000;
    ChaosEngine chaos(8, scenario);

    ServerOptions options = pumpOptions(clock);
    options.chaos = &chaos;
    options.hedge.enabled = true;
    options.hedge.delay_ns = 1'000'000; // < stall -> hedge fires
    InferenceServer server(options);
    const uint64_t id = registerLinear(server);

    auto f = server.submit(makeRequest(id));
    ASSERT_EQ(server.pump(1), 1u);
    EXPECT_TRUE(f.get().status.ok());
    EXPECT_TRUE(logContains(server, "chaos kind=stall"));
    EXPECT_TRUE(logContains(server, "hedge_launch"));
    EXPECT_TRUE(logContains(server, "hedge_win"));
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.hedges_launched, 1u);
    EXPECT_EQ(stats.hedge_wins, 1u);
    EXPECT_EQ(stats.completed_ok, 1u);
    // The hedge charged delay + service rather than the full stall.
    EXPECT_LT(clock.nowNs(), scenario.stall_ns);
}

TEST(ChaosServer, QuarantineAfterConsecutiveFailuresThenRecovery)
{
    VirtualClock clock;
    ChaosScenario scenario;
    scenario.transient_prob = 1.0;
    scenario.inject_until_ns = 1'000'000;
    ChaosEngine chaos(12, scenario);

    ServerOptions options = pumpOptions(clock);
    options.chaos = &chaos;
    options.max_retries = 0;
    options.health.enabled = true;
    options.health.quarantine_after = 2;
    // Release well past the injection window: sitting out the
    // quarantine advances virtual time beyond inject_until_ns, so the
    // recovered backend's first attempt is clean.
    options.health.quarantine_ns = 2'000'000;
    InferenceServer server(options);
    const uint64_t id = registerLinear(server);

    for (int i = 0; i < 2; ++i) {
        auto f = server.submit(makeRequest(id));
        ASSERT_EQ(server.pump(1), 1u);
        EXPECT_EQ(f.get().status.code(), StatusCode::kUnavailable);
    }
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.backend_quarantines, 1u);
    EXPECT_EQ(stats.backends_quarantined, 1u);
    EXPECT_TRUE(logContains(server, "quarantine worker="));

    // Next dispatch sits out the quarantine (the pump advances virtual
    // time to the release point), recycles the backend, and — with the
    // injection window over by then — completes fine.
    auto f = server.submit(makeRequest(id));
    ASSERT_EQ(server.pump(1), 1u);
    EXPECT_TRUE(f.get().status.ok());
    EXPECT_TRUE(logContains(server, "quarantine_recover worker="));
    stats = server.stats();
    EXPECT_EQ(stats.backend_recoveries, 1u);
    EXPECT_EQ(stats.backends_quarantined, 0u);
}

TEST(ChaosServer, ChaosOffIsBitwiseIdenticalToNoEngine)
{
    // A present-but-inert chaos plane (all probabilities zero, every
    // resilience option disabled) must leave the decision log
    // byte-identical to a server built with no engine at all — pinned
    // across thread counts and kernel modes via the modeled service
    // path in pump mode.
    const auto runOnce = [](bool with_engine, KernelMode mode) {
        VirtualClock clock;
        ChaosScenario off;
        ChaosEngine engine(99, off);
        ServerOptions options;
        options.workers = 0;
        options.virtual_clock = &clock;
        options.queue_capacity = 8;
        options.kernel_mode = mode;
        if (with_engine)
            options.chaos = &engine;
        InferenceServer server(options);
        const uint64_t id = registerLinear(server);
        std::vector<std::future<ServeResponse>> futures;
        for (int i = 0; i < 6; ++i) {
            futures.push_back(server.submit(makeRequest(
                id, i % 3, i % 2 ? clock.nowNs() + 50'000'000 : 0)));
            if (i % 2)
                server.pump(1);
            clock.advanceNs(1'000);
        }
        server.pump(16);
        for (auto &f : futures)
            f.wait();
        return server.decisionLog();
    };
    for (const KernelMode mode :
         {KernelMode::Fast, KernelMode::Modeled}) {
        const auto base = runOnce(false, mode);
        const auto inert = runOnce(true, mode);
        EXPECT_EQ(base, inert);
    }
}

// ---------------------------------------------------------------------
// Hot model reload
// ---------------------------------------------------------------------

TEST(HotReload, SwapsLadderWhileRequestsAreQueued)
{
    VirtualClock clock;
    InferenceServer server(pumpOptions(clock));
    const uint64_t id = registerLinear(server, 1, /*graph_seed=*/7);

    // Queue work, then swap the ladder underneath it before pumping.
    auto before = server.submit(makeRequest(id));
    std::vector<TierSpec> next;
    TierSpec tier;
    tier.graph = makeLinearGraph(21);
    tier.label = "full";
    next.push_back(std::move(tier));
    const auto generation = server.reloadGraph(id, std::move(next));
    ASSERT_TRUE(generation.ok()) << generation.status().toString();
    EXPECT_EQ(*generation, 1u);

    ASSERT_EQ(server.pump(1), 1u);
    EXPECT_TRUE(before.get().status.ok());
    EXPECT_TRUE(logContains(server, "reload graph=lin generation=1"));
    EXPECT_EQ(server.stats().graph_reloads, 1u);

    // The swapped weights actually serve: output matches a direct run
    // of the NEW graph.
    MixGemmBackend direct(1, KernelMode::Fast);
    const std::vector<double> expected =
        makeLinearGraph(21).run(makeInput(11), direct);
    auto after = server.submit(makeRequest(id));
    ASSERT_EQ(server.pump(1), 1u);
    const ServeResponse response = after.get();
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.output, expected);

    // A second reload bumps the generation again.
    std::vector<TierSpec> third;
    TierSpec t3;
    t3.graph = makeLinearGraph(22);
    t3.label = "full";
    third.push_back(std::move(t3));
    const auto gen2 = server.reloadGraph(id, std::move(third));
    ASSERT_TRUE(gen2.ok());
    EXPECT_EQ(*gen2, 2u);
}

TEST(HotReload, RejectsUnknownIdAndBadLadders)
{
    VirtualClock clock;
    InferenceServer server(pumpOptions(clock));
    const uint64_t id = registerLinear(server);

    EXPECT_EQ(server.reloadGraph(id + 5, {}).status().code(),
              StatusCode::kNotFound);
    EXPECT_EQ(server.reloadGraph(id, {}).status().code(),
              StatusCode::kInvalidArgument);

    // A reload that shrinks the ladder still serves (tiers clamp).
    const uint64_t wide = registerLinear(server, 3);
    std::vector<TierSpec> narrow;
    TierSpec tier;
    tier.graph = makeLinearGraph(7);
    tier.label = "full";
    narrow.push_back(std::move(tier));
    ASSERT_TRUE(server.reloadGraph(wide, std::move(narrow)).ok());
    auto f = server.submit(makeRequest(wide));
    ASSERT_EQ(server.pump(1), 1u);
    EXPECT_TRUE(f.get().status.ok());
}

// ---------------------------------------------------------------------
// Chaos soak determinism
// ---------------------------------------------------------------------

SoakConfig
quickChaosSoak(const std::string &scenario)
{
    SoakConfig config;
    config.seed = 42;
    config.duration_s = 0.4;
    config.arrival_hz = 600.0;
    config.chaos_scenario = scenario;
    config.emit_decision_log = false;
    return config;
}

TEST(ChaosSoak, SameSeedChaosSoakIsByteIdentical)
{
    const SoakResult a = runServeSoak(quickChaosSoak("rung-failure"));
    const SoakResult b = runServeSoak(quickChaosSoak("rung-failure"));
    EXPECT_EQ(a.decision_hash, b.decision_hash);
    EXPECT_EQ(a.stats.submitted, b.stats.submitted);
    EXPECT_EQ(a.stats.breaker_fast_fails, b.stats.breaker_fast_fails);
    EXPECT_EQ(a.chaos.total(), b.chaos.total());

    // The scenario did what it says: the rung-0 breaker opened under
    // injection and closed again after the window.
    EXPECT_GE(a.stats.breaker_open_events, 1u);
    EXPECT_GE(a.stats.breaker_close_events, 1u);
    EXPECT_GT(a.stats.breaker_fast_fails, 0u);
    EXPECT_GT(a.chaos.transients, 0u);
    EXPECT_GT(a.stats.completed_ok, 0u);
    EXPECT_EQ(a.stats.breakers_open, 0u); // healthy at drain

    // JSON report carries the resilience section.
    const std::string json = a.toJson();
    EXPECT_NE(json.find("\"chaos_scenario\":\"rung-failure\""),
              std::string::npos);
    EXPECT_NE(json.find("\"resilience\":"), std::string::npos);
}

TEST(ChaosSoak, DifferentSeedsDiverge)
{
    SoakConfig a_config = quickChaosSoak("flaky-backend");
    SoakConfig b_config = a_config;
    b_config.seed = 43;
    const SoakResult a = runServeSoak(a_config);
    const SoakResult b = runServeSoak(b_config);
    EXPECT_NE(a.decision_hash, b.decision_hash);
}

// ---------------------------------------------------------------------
// Store crash-safety satellites
// ---------------------------------------------------------------------

struct TempDir
{
    fs::path path;

    TempDir()
    {
        static int counter = 0;
        path = fs::temp_directory_path() /
               ("mixgemm_chaos_test_" + std::to_string(::getpid()) +
                "_" + std::to_string(counter++));
        fs::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

TEST(ChaosStore, StaleTempFilesAreSweptOnOpen)
{
    TempDir dir;
    // Simulate a crash mid-persist: a staged temp file that never got
    // renamed into place.
    {
        std::ofstream os(dir.path / "deadbeefdeadbeef.mgw.tmp");
        os << "partial garbage";
    }
    std::ofstream(dir.path / "keep.mgw") << "not a temp file";

    StoreOptions options;
    options.dir = dir.path.string();
    PackedWeightStore store(options);
    EXPECT_EQ(store.stats().stale_tmp_swept, 1u);
    EXPECT_FALSE(fs::exists(dir.path / "deadbeefdeadbeef.mgw.tmp"));
    EXPECT_TRUE(fs::exists(dir.path / "keep.mgw"));
}

TEST(ChaosStore, LoadFaultHookForcesSelfHealingRepack)
{
    TempDir dir;
    const QuantizedGraph graph = makeLinearGraph(7);

    // First store persists the artifact.
    {
        StoreOptions options;
        options.dir = dir.path.string();
        PackedWeightStore store(options);
        auto model = store.load(graph, nullptr);
        ASSERT_TRUE(model.ok()) << model.status().toString();
        EXPECT_EQ(store.stats().artifact_writes, 1u);
    }

    // Second store finds the artifact but the injected fault rejects
    // the load; the store must self-heal by re-packing — the same path
    // a corrupt mapping takes — and still return a usable model.
    StoreOptions options;
    options.dir = dir.path.string();
    uint64_t faulted = 0;
    options.load_fault_hook = [&faulted](uint64_t load_index) {
        ++faulted;
        return load_index == 0
                   ? Status::dataLoss("chaos: injected artifact fault")
                   : Status();
    };
    PackedWeightStore store(options);
    auto healed = store.load(graph, nullptr);
    ASSERT_TRUE(healed.ok()) << healed.status().toString();
    EXPECT_EQ(faulted, 1u);
    EXPECT_EQ(store.stats().rejected, 1u);
    EXPECT_EQ(store.stats().packs, 1u);
    EXPECT_FALSE((*healed)->entries.empty());

    // A third store with no hook loads the (re-persisted or original)
    // artifact cleanly.
    StoreOptions clean;
    clean.dir = dir.path.string();
    PackedWeightStore verify(clean);
    auto loaded = verify.load(graph, nullptr);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(verify.stats().artifact_loads, 1u);
}

} // namespace
} // namespace mixgemm
