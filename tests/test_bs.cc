/**
 * @file
 * Unit and property tests for the binary-segmentation core (src/bs):
 * geometry (Eq. 3-7), the Fig. 1 worked example, the Fig. 4 kua/kub and
 * accumulation-group cycle counts, cluster datapath exactness for every
 * supported (bwa, bwb) combination signed and unsigned, μ-vector packing,
 * and the functional μ-engine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <span>
#include <vector>

#include "bs/cluster.h"
#include "bs/engine.h"
#include "bs/expand.h"
#include "bs/geometry.h"
#include "bs/microvector.h"
#include "common/logging.h"
#include "common/random.h"

namespace mixgemm
{
namespace
{

DataSizeConfig
makeConfig(unsigned bwa, unsigned bwb, bool a_signed = true,
           bool b_signed = true)
{
    DataSizeConfig c;
    c.bwa = bwa;
    c.bwb = bwb;
    c.a_signed = a_signed;
    c.b_signed = b_signed;
    return c;
}

int64_t
naiveDot(const std::vector<int32_t> &a, const std::vector<int32_t> &b)
{
    int64_t acc = 0;
    for (size_t i = 0; i < a.size(); ++i)
        acc += int64_t{a[i]} * b[i];
    return acc;
}

/** Draw a random value covering the full range of the (bw, sign) format. */
int32_t
randomNarrow(Rng &rng, unsigned bw, bool is_signed)
{
    if (is_signed)
        return static_cast<int32_t>(
            rng.uniformInt(-(int64_t{1} << (bw - 1)),
                           (int64_t{1} << (bw - 1)) - 1));
    return static_cast<int32_t>(rng.uniformInt(0, (int64_t{1} << bw) - 1));
}

// ---------------------------------------------------------------------
// Geometry (Eq. 3-7)
// ---------------------------------------------------------------------

TEST(BsGeometry, PaperExampleFig1)
{
    // Fig. 1: bwa = 3, bwb = 2 on a 16-bit multiplier -> cw = 8,
    // input-cluster size = 2.
    const auto g = computeBsGeometry(makeConfig(3, 2, false, false), 16);
    EXPECT_EQ(g.cw, 8u);
    EXPECT_EQ(g.cluster_size, 2u);
    EXPECT_EQ(g.slice_lsb, 8u);
    EXPECT_EQ(g.slice_msb, 15u);
}

TEST(BsGeometry, ClusterSizeRange64Bit)
{
    // Section II-B: a 64-bit multiplier sustains 3 MAC/cycle at 8-bit up
    // to 7 MAC/cycle at 2-bit.
    EXPECT_EQ(clusterSizeFor(8, 8, 64), 3u);
    EXPECT_EQ(clusterSizeFor(2, 2, 64), 7u);
    for (unsigned bwa = 2; bwa <= 8; ++bwa) {
        for (unsigned bwb = 2; bwb <= 8; ++bwb) {
            const unsigned n = clusterSizeFor(bwa, bwb, 64);
            EXPECT_GE(n, 3u) << "a" << bwa << "-w" << bwb;
            EXPECT_LE(n, 7u) << "a" << bwa << "-w" << bwb;
        }
    }
}

TEST(BsGeometry, Eq3Eq4Consistency)
{
    for (const auto &cfg : allSupportedConfigs()) {
        const auto g = computeBsGeometry(cfg);
        // Eq. 3 with equality for the chosen cluster size.
        EXPECT_EQ(g.cw, 1 + cfg.bwa + cfg.bwb +
                            ceilLog2(g.cluster_size + 1));
        // The cluster fits the multiplier (Eq. 4) ...
        EXPECT_LE(g.cluster_size * g.cw, g.mul_width);
        // ... and one more element would not.
        const unsigned cw_next =
            1 + cfg.bwa + cfg.bwb + ceilLog2(g.cluster_size + 2);
        EXPECT_GT((g.cluster_size + 1) * cw_next, g.mul_width);
        // Eq. 6/7.
        EXPECT_EQ(g.slice_lsb, (g.cluster_size - 1) * g.cw);
        EXPECT_EQ(g.slice_msb, g.slice_lsb + g.cw - 1);
    }
}

TEST(BsGeometry, MicroVectorElementCounts)
{
    // Section III-A: chunks range from 8 elements (8-bit) to 32 (2-bit).
    EXPECT_EQ(elemsPerMicroVector(8), 8u);
    EXPECT_EQ(elemsPerMicroVector(7), 9u);
    EXPECT_EQ(elemsPerMicroVector(6), 10u);
    EXPECT_EQ(elemsPerMicroVector(5), 12u);
    EXPECT_EQ(elemsPerMicroVector(4), 16u);
    EXPECT_EQ(elemsPerMicroVector(3), 21u);
    EXPECT_EQ(elemsPerMicroVector(2), 32u);
}

TEST(BsGeometry, KuSelectionMatchesFig4)
{
    EXPECT_EQ(selectKu(makeConfig(8, 8)),
              (std::pair<unsigned, unsigned>{4, 4}));
    EXPECT_EQ(selectKu(makeConfig(8, 6)),
              (std::pair<unsigned, unsigned>{4, 3}));
    EXPECT_EQ(selectKu(makeConfig(6, 4)),
              (std::pair<unsigned, unsigned>{3, 2}));
}

TEST(BsGeometry, GroupCyclesMatchPaperExamples)
{
    // Section III-B: the Control Unit advances the AccMem address after
    // 12, 12, and 9 accumulation cycles for a8-w8, a8-w6, and a6-w4.
    EXPECT_EQ(computeBsGeometry(makeConfig(8, 8)).group_cycles, 12u);
    EXPECT_EQ(computeBsGeometry(makeConfig(8, 6)).group_cycles, 12u);
    EXPECT_EQ(computeBsGeometry(makeConfig(6, 4)).group_cycles, 9u);
}

TEST(BsGeometry, A2W2MicroVectorTakesFiveCycles)
{
    // Section IV-B: 32 elements per μ-vector at 7 MAC/cycle -> 5 cycles.
    const auto g = computeBsGeometry(makeConfig(2, 2));
    EXPECT_EQ(g.kua, g.kub);
    EXPECT_EQ(g.group_cycles % g.kua, 0u);
    EXPECT_EQ(g.group_cycles / g.kua, 5u);
}

TEST(BsGeometry, ChunksNeverExceedClusterOrBoundaries)
{
    for (const auto &cfg : allSupportedConfigs()) {
        const auto g = computeBsGeometry(cfg);
        const auto chunks = dsuChunkSchedule(g);
        unsigned pos = 0;
        for (const unsigned c : chunks) {
            ASSERT_GE(c, 1u);
            ASSERT_LE(c, g.cluster_size);
            // A chunk never crosses an A or B μ-vector boundary.
            EXPECT_LE(pos % g.elems_per_avec + c, g.elems_per_avec);
            EXPECT_LE(pos % g.elems_per_bvec + c, g.elems_per_bvec);
            pos += c;
        }
        EXPECT_EQ(pos, g.group_extent);
    }
}

TEST(BsGeometry, MacsPerCycleScalesWithNarrowerData)
{
    const double m88 = computeBsGeometry(makeConfig(8, 8)).macsPerCycle();
    const double m44 = computeBsGeometry(makeConfig(4, 4)).macsPerCycle();
    const double m22 = computeBsGeometry(makeConfig(2, 2)).macsPerCycle();
    EXPECT_LT(m88, m44);
    EXPECT_LT(m44, m22);
    EXPECT_GE(m88, 2.5);
    EXPECT_GE(m22, 6.0);
}

TEST(BsGeometry, RejectsUnsupportedWidths)
{
    EXPECT_THROW(computeBsGeometry(makeConfig(1, 8)), FatalError);
    EXPECT_THROW(computeBsGeometry(makeConfig(8, 9)), FatalError);
    EXPECT_THROW(computeBsGeometry(makeConfig(8, 8), 4), FatalError);
}

TEST(BsGeometry, AllSupportedConfigsCount)
{
    EXPECT_EQ(allSupportedConfigs().size(), 49u);
}

TEST(BsGeometry, PaddingOverheadSmallOnAverage)
{
    // Section III-C: ~2.4 % average padding overhead across configs.
    double total = 0.0;
    for (const auto &cfg : allSupportedConfigs())
        total += computeBsGeometry(cfg).paddingOverhead();
    const double avg = total / 49.0;
    EXPECT_GE(avg, 0.0);
    EXPECT_LE(avg, 0.06);
}

// ---------------------------------------------------------------------
// Cluster datapath
// ---------------------------------------------------------------------

TEST(BsCluster, Fig1WorkedExample)
{
    // a = [4, 7, 3, 6], b = [3, 2, 0, 1]: inner product 32 computed as
    // two 2-element cluster multiplications extracting 26 and 6.
    const auto g = computeBsGeometry(makeConfig(3, 2, false, false), 16);
    const std::vector<int32_t> a0{4, 7};
    const std::vector<int32_t> b0{3, 2};
    const std::vector<int32_t> a1{3, 6};
    const std::vector<int32_t> b1{0, 1};
    EXPECT_EQ(clusterInnerProduct(a0, b0, g), 26);
    EXPECT_EQ(clusterInnerProduct(a1, b1, g), 6);
    EXPECT_EQ(clusterInnerProduct(a0, b0, g) +
                  clusterInnerProduct(a1, b1, g),
              32);
}

struct ClusterParam
{
    unsigned bwa;
    unsigned bwb;
    bool a_signed;
    bool b_signed;
};

class ClusterDatapathTest : public ::testing::TestWithParam<ClusterParam>
{
};

TEST_P(ClusterDatapathTest, MatchesNaiveDotOnRandomChunks)
{
    const auto p = GetParam();
    const auto g =
        computeBsGeometry(makeConfig(p.bwa, p.bwb, p.a_signed, p.b_signed));
    Rng rng(1000 + p.bwa * 16 + p.bwb + p.a_signed + 2 * p.b_signed);
    for (int iter = 0; iter < 400; ++iter) {
        const unsigned n = static_cast<unsigned>(
            rng.uniformInt(1, g.cluster_size));
        std::vector<int32_t> a(n);
        std::vector<int32_t> b(n);
        for (unsigned i = 0; i < n; ++i) {
            a[i] = randomNarrow(rng, p.bwa, p.a_signed);
            b[i] = randomNarrow(rng, p.bwb, p.b_signed);
        }
        ASSERT_EQ(clusterInnerProduct(a, b, g), naiveDot(a, b))
            << g.config.name() << " iter " << iter;
    }
}

TEST_P(ClusterDatapathTest, SliceExtractionMatchesExactExtraction)
{
    const auto p = GetParam();
    const auto g =
        computeBsGeometry(makeConfig(p.bwa, p.bwb, p.a_signed, p.b_signed));
    Rng rng(2000 + p.bwa * 16 + p.bwb + p.a_signed + 2 * p.b_signed);
    for (int iter = 0; iter < 400; ++iter) {
        std::vector<int32_t> a(g.cluster_size);
        std::vector<int32_t> b(g.cluster_size);
        for (unsigned i = 0; i < g.cluster_size; ++i) {
            a[i] = randomNarrow(rng, p.bwa, p.a_signed);
            b[i] = randomNarrow(rng, p.bwb, p.b_signed);
        }
        const int128 prod = clusterMultiply(packClusterA(a, g),
                                            packClusterB(b, g), g);
        ASSERT_EQ(extractInnerProduct(prod, g),
                  extractInnerProductExact(prod, g))
            << g.config.name();
    }
}

TEST_P(ClusterDatapathTest, CornerValueChunks)
{
    const auto p = GetParam();
    const auto g =
        computeBsGeometry(makeConfig(p.bwa, p.bwb, p.a_signed, p.b_signed));
    const int32_t a_min =
        p.a_signed ? -(1 << (p.bwa - 1)) : 0;
    const int32_t a_max =
        p.a_signed ? (1 << (p.bwa - 1)) - 1 : (1 << p.bwa) - 1;
    const int32_t b_min =
        p.b_signed ? -(1 << (p.bwb - 1)) : 0;
    const int32_t b_max =
        p.b_signed ? (1 << (p.bwb - 1)) - 1 : (1 << p.bwb) - 1;
    const int32_t a_vals[] = {a_min, a_max, 0, 1};
    const int32_t b_vals[] = {b_min, b_max, 0, 1};
    for (const int32_t av : a_vals) {
        for (const int32_t bv : b_vals) {
            std::vector<int32_t> a(g.cluster_size, av);
            std::vector<int32_t> b(g.cluster_size, bv);
            ASSERT_EQ(clusterInnerProduct(a, b, g), naiveDot(a, b))
                << g.config.name() << " a=" << av << " b=" << bv;
        }
    }
}

std::vector<ClusterParam>
allClusterParams()
{
    std::vector<ClusterParam> params;
    for (unsigned bwa = 2; bwa <= 8; ++bwa)
        for (unsigned bwb = 2; bwb <= 8; ++bwb)
            for (const bool as : {false, true})
                for (const bool bs : {false, true})
                    params.push_back({bwa, bwb, as, bs});
    return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ClusterDatapathTest,
    ::testing::ValuesIn(allClusterParams()),
    [](const ::testing::TestParamInfo<ClusterParam> &info) {
        const auto &p = info.param;
        return strCat("a", p.bwa, (p.a_signed ? "s" : "u"), "_w", p.bwb,
                      (p.b_signed ? "s" : "u"));
    });

// ---------------------------------------------------------------------
// μ-vector packing
// ---------------------------------------------------------------------

TEST(MicroVector, RoundTripAllWidths)
{
    Rng rng(77);
    for (unsigned bw = 2; bw <= 8; ++bw) {
        for (const bool is_signed : {false, true}) {
            const unsigned n = elemsPerMicroVector(bw);
            std::vector<int32_t> elems(n);
            for (auto &e : elems)
                e = randomNarrow(rng, bw, is_signed);
            const uint64_t word = packMicroVector(elems, bw, is_signed);
            EXPECT_EQ(unpackMicroVector(word, bw, is_signed, n), elems);
        }
    }
}

TEST(MicroVector, PartialPackZeroPads)
{
    const std::vector<int32_t> elems{1, -2, 3};
    const uint64_t word = packMicroVector(elems, 8, true);
    const auto back = unpackMicroVector(word, 8, true, 8);
    EXPECT_EQ(back[0], 1);
    EXPECT_EQ(back[1], -2);
    EXPECT_EQ(back[2], 3);
    for (unsigned i = 3; i < 8; ++i)
        EXPECT_EQ(back[i], 0);
}

TEST(MicroVector, RejectsOutOfRangeValues)
{
    const std::vector<int32_t> too_big{128};
    EXPECT_THROW(packMicroVector(too_big, 8, true), PanicError);
    const std::vector<int32_t> negative{-1};
    EXPECT_THROW(packMicroVector(negative, 8, false), PanicError);
    const std::vector<int32_t> too_many(9, 0);
    EXPECT_THROW(packMicroVector(too_many, 8, true), PanicError);
}

TEST(MicroVector, StreamPacking)
{
    std::vector<int32_t> elems(20);
    std::iota(elems.begin(), elems.end(), 0);
    const auto words = packMicroVectorStream(elems, 8, true);
    ASSERT_EQ(words.size(), 3u);
    EXPECT_EQ(microVectorElement(words[0], 8, true, 0), 0);
    EXPECT_EQ(microVectorElement(words[1], 8, true, 0), 8);
    EXPECT_EQ(microVectorElement(words[2], 8, true, 3), 19);
    EXPECT_EQ(microVectorElement(words[2], 8, true, 7), 0);
}

// ---------------------------------------------------------------------
// Functional μ-engine
// ---------------------------------------------------------------------

/** Issue one accumulation group worth of data for @p geometry. */
void
issueGroup(BsEngine &engine, const BsGeometry &g,
           const std::vector<int32_t> &a, const std::vector<int32_t> &b)
{
    const auto a_words =
        packMicroVectorStream(a, g.config.bwa, g.config.a_signed);
    const auto b_words =
        packMicroVectorStream(b, g.config.bwb, g.config.b_signed);
    for (unsigned k = 0; k < g.group_pairs; ++k) {
        const uint64_t aw = k < a_words.size() ? a_words[k] : 0;
        const uint64_t bw = k < b_words.size() ? b_words[k] : 0;
        engine.ip(aw, bw);
    }
}

class BsEngineConfigTest
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(BsEngineConfigTest, AccumulatesGroupsAcrossSlots)
{
    const auto [bwa, bwb] = GetParam();
    const auto g = computeBsGeometry(makeConfig(bwa, bwb));
    BsEngine engine;
    const unsigned slots = 4;
    engine.set(g, slots);
    Rng rng(31 + bwa * 8 + bwb);

    std::vector<int64_t> expected(slots, 0);
    const unsigned rounds = 3;
    for (unsigned r = 0; r < rounds; ++r) {
        for (unsigned s = 0; s < slots; ++s) {
            std::vector<int32_t> a(g.group_extent);
            std::vector<int32_t> b(g.group_extent);
            for (unsigned i = 0; i < g.group_extent; ++i) {
                a[i] = randomNarrow(rng, bwa, true);
                b[i] = randomNarrow(rng, bwb, true);
            }
            expected[s] += naiveDot(a, b);
            issueGroup(engine, g, a, b);
        }
    }
    EXPECT_EQ(engine.pairsIssued(),
              uint64_t{rounds} * slots * g.group_pairs);
    EXPECT_EQ(engine.busyCycles(),
              uint64_t{rounds} * slots * g.group_cycles);
    for (unsigned s = 0; s < slots; ++s)
        EXPECT_EQ(engine.get(s), expected[s]) << "slot " << s;
}

INSTANTIATE_TEST_SUITE_P(
    MixedConfigs, BsEngineConfigTest,
    ::testing::Values(std::pair<unsigned, unsigned>{8, 8},
                      std::pair<unsigned, unsigned>{8, 6},
                      std::pair<unsigned, unsigned>{6, 4},
                      std::pair<unsigned, unsigned>{8, 2},
                      std::pair<unsigned, unsigned>{4, 4},
                      std::pair<unsigned, unsigned>{2, 2},
                      std::pair<unsigned, unsigned>{5, 5},
                      std::pair<unsigned, unsigned>{7, 3},
                      std::pair<unsigned, unsigned>{3, 7},
                      std::pair<unsigned, unsigned>{2, 8}),
    [](const auto &info) {
        return strCat("a", info.param.first, "_w", info.param.second);
    });

TEST(BsEngine, GetClearsSlot)
{
    const auto g = computeBsGeometry(makeConfig(8, 8));
    BsEngine engine;
    engine.set(g, 1);
    std::vector<int32_t> ones(g.group_extent, 1);
    issueGroup(engine, g, ones, ones);
    EXPECT_EQ(engine.get(0), static_cast<int64_t>(g.group_extent));
    EXPECT_EQ(engine.get(0), 0);
}

TEST(BsEngine, ErrorsOnProtocolViolations)
{
    BsEngine engine;
    EXPECT_THROW(engine.ip(0, 0), FatalError);
    EXPECT_THROW(engine.get(0), FatalError);

    const auto g = computeBsGeometry(makeConfig(8, 8));
    engine.set(g, 2);
    EXPECT_THROW(engine.get(5), FatalError);
    engine.ip(0, 0); // one pair of a 4-pair group in flight
    EXPECT_THROW(engine.get(0), FatalError);
    EXPECT_THROW(BsEngine(0), FatalError);
    BsEngine small(4);
    EXPECT_THROW(small.set(g, 5), FatalError);
}

TEST(BsEngine, SetReconfiguresBetweenDataSizes)
{
    BsEngine engine;
    const auto g88 = computeBsGeometry(makeConfig(8, 8));
    engine.set(g88, 1);
    std::vector<int32_t> ones88(g88.group_extent, 1);
    issueGroup(engine, g88, ones88, ones88);
    EXPECT_EQ(engine.get(0), static_cast<int64_t>(g88.group_extent));

    const auto g24 = computeBsGeometry(makeConfig(2, 4));
    engine.set(g24, 1);
    std::vector<int32_t> ones24(g24.group_extent, 1);
    issueGroup(engine, g24, ones24, ones24);
    EXPECT_EQ(engine.get(0), static_cast<int64_t>(g24.group_extent));
}

TEST(BsEngine, MixedPrecisionZeroPaddedBWords)
{
    // a8-w2: kua = 4, kub = 1; pairs 1..3 carry a zero B word.
    const auto g = computeBsGeometry(makeConfig(8, 2));
    EXPECT_EQ(g.kua, 4u);
    EXPECT_EQ(g.kub, 1u);
    BsEngine engine;
    engine.set(g, 1);
    std::vector<int32_t> a(g.group_extent);
    std::vector<int32_t> b(g.group_extent);
    Rng rng(9);
    for (unsigned i = 0; i < g.group_extent; ++i) {
        a[i] = randomNarrow(rng, 8, true);
        b[i] = randomNarrow(rng, 2, true);
    }
    issueGroup(engine, g, a, b);
    EXPECT_EQ(engine.get(0), naiveDot(a, b));
}

// ---------------------------------------------------------------------
// Word-domain expansion (bs/expand.h)
// ---------------------------------------------------------------------

TEST(BsExpand, MatchesPerElementClusterPackingAllConfigs)
{
    // The SWAR bw -> cw expansion of a packed μ-vector must equal the
    // per-element packClusterA/packClusterB of the same chunk, for every
    // supported geometry, signed and unsigned.
    Rng rng(77);
    for (bool sgn : {true, false}) {
        for (const auto &cfg : allSupportedConfigs(sgn)) {
            const auto g = computeBsGeometry(cfg);
            const auto plan = makeExpansionPlan(g);
            const auto schedule = dsuChunkSchedule(g);
            ASSERT_EQ(plan.chunkCount(), schedule.size());

            std::vector<int32_t> a(g.group_extent), b(g.group_extent);
            for (unsigned i = 0; i < g.group_extent; ++i) {
                a[i] = randomNarrow(rng, cfg.bwa, cfg.a_signed);
                b[i] = randomNarrow(rng, cfg.bwb, cfg.b_signed);
            }
            const auto a_words =
                packMicroVectorStream(a, cfg.bwa, cfg.a_signed);
            const auto b_words =
                packMicroVectorStream(b, cfg.bwb, cfg.b_signed);
            ASSERT_EQ(a_words.size(), g.kua);
            ASSERT_EQ(b_words.size(), g.kub);

            std::vector<uint64_t> ca(plan.chunkCount());
            std::vector<uint64_t> cb(plan.chunkCount());
            expandGroupA(a_words.data(), g, plan, ca.data());
            expandGroupB(b_words.data(), g, plan, cb.data());

            unsigned pos = 0;
            for (size_t c = 0; c < schedule.size(); ++c) {
                const unsigned len = schedule[c];
                const std::span<const int32_t> ae(a.data() + pos, len);
                const std::span<const int32_t> be(b.data() + pos, len);
                EXPECT_EQ(ca[c], packClusterA(ae, g))
                    << "a" << cfg.bwa << "-w" << cfg.bwb << " chunk "
                    << c;
                EXPECT_EQ(cb[c], packClusterB(be, g))
                    << "a" << cfg.bwa << "-w" << cfg.bwb << " chunk "
                    << c;
                pos += len;
            }
            ASSERT_EQ(pos, g.group_extent);
        }
    }
}

TEST(BsExpand, PlanChunksRespectMicroVectorBoundaries)
{
    for (const auto &cfg : allSupportedConfigs()) {
        const auto g = computeBsGeometry(cfg);
        const auto plan = makeExpansionPlan(g);
        for (const auto &chunk : plan.chunks) {
            ASSERT_GE(chunk.len, 1u);
            ASSERT_LE(chunk.len, g.cluster_size);
            // The chunk's last element stays inside the word its first
            // element starts in — the invariant that makes one shifted
            // word read per operand sufficient.
            EXPECT_LE(chunk.a_shift + chunk.len * cfg.bwa, 64u);
            EXPECT_LE(chunk.b_shift + chunk.len * cfg.bwb, 64u);
            EXPECT_LT(chunk.a_word, g.kua);
            EXPECT_LT(chunk.b_word, g.kub);
        }
    }
}

TEST(BsExpand, ClusterPanelDotEqualsNaiveDot)
{
    Rng rng(78);
    for (const auto &cfg :
         {makeConfig(8, 8), makeConfig(5, 3), makeConfig(2, 2),
          makeConfig(8, 2, false, true), makeConfig(4, 6, false, false)}) {
        const auto g = computeBsGeometry(cfg);
        const auto plan = makeExpansionPlan(g);
        // Two consecutive groups expanded back to back: the panel dot
        // streams across the group boundary exactly like the cached
        // cluster panels do.
        const unsigned groups = 2;
        std::vector<uint64_t> ca(groups * plan.chunkCount());
        std::vector<uint64_t> cb(groups * plan.chunkCount());
        int64_t expected = 0;
        for (unsigned grp = 0; grp < groups; ++grp) {
            std::vector<int32_t> a(g.group_extent), b(g.group_extent);
            for (unsigned i = 0; i < g.group_extent; ++i) {
                a[i] = randomNarrow(rng, cfg.bwa, cfg.a_signed);
                b[i] = randomNarrow(rng, cfg.bwb, cfg.b_signed);
            }
            expected += naiveDot(a, b);
            const auto aw = packMicroVectorStream(a, cfg.bwa,
                                                  cfg.a_signed);
            const auto bw = packMicroVectorStream(b, cfg.bwb,
                                                  cfg.b_signed);
            expandGroupA(aw.data(), g, plan,
                         ca.data() + grp * plan.chunkCount());
            expandGroupB(bw.data(), g, plan,
                         cb.data() + grp * plan.chunkCount());
        }
        EXPECT_EQ(clusterPanelDot(ca.data(), cb.data(),
                                  groups * plan.chunkCount(), g),
                  expected)
            << "a" << cfg.bwa << "-w" << cfg.bwb;
    }
}

TEST(BsEngine, IpGroupMatchesIpSequence)
{
    Rng rng(79);
    for (const auto &cfg :
         {makeConfig(8, 8), makeConfig(8, 2), makeConfig(3, 7),
          makeConfig(2, 2, false, false), makeConfig(6, 4, false, true)}) {
        const auto g = computeBsGeometry(cfg);
        BsEngine scalar, batched;
        const unsigned slots = 2;
        scalar.set(g, slots);
        batched.set(g, slots);
        const unsigned rounds = 2;
        for (unsigned r = 0; r < rounds; ++r) {
            for (unsigned s = 0; s < slots; ++s) {
                std::vector<int32_t> a(g.group_extent), b(g.group_extent);
                for (unsigned i = 0; i < g.group_extent; ++i) {
                    a[i] = randomNarrow(rng, cfg.bwa, cfg.a_signed);
                    b[i] = randomNarrow(rng, cfg.bwb, cfg.b_signed);
                }
                const auto aw = packMicroVectorStream(a, cfg.bwa,
                                                      cfg.a_signed);
                const auto bw = packMicroVectorStream(b, cfg.bwb,
                                                      cfg.b_signed);
                issueGroup(scalar, g, a, b);
                batched.ipGroup(aw.data(), bw.data());
            }
        }
        EXPECT_EQ(batched.pairsIssued(), scalar.pairsIssued());
        EXPECT_EQ(batched.busyCycles(), scalar.busyCycles());
        for (unsigned s = 0; s < slots; ++s)
            EXPECT_EQ(batched.get(s), scalar.get(s))
                << "a" << cfg.bwa << "-w" << cfg.bwb << " slot " << s;
    }
}

TEST(MicroVector, UnpackToMatchesUnpack)
{
    Rng rng(80);
    for (unsigned bw = 2; bw <= 8; ++bw) {
        for (bool sgn : {true, false}) {
            const unsigned count = elemsPerMicroVector(bw);
            std::vector<int32_t> elems(count);
            for (auto &v : elems)
                v = randomNarrow(rng, bw, sgn);
            const uint64_t word = packMicroVector(elems, bw, sgn);
            const auto ref = unpackMicroVector(word, bw, sgn, count);
            std::vector<int32_t> flat(count, -12345);
            unpackMicroVectorTo(word, bw, sgn, count, flat.data());
            EXPECT_EQ(flat, ref) << "bw " << bw;
            std::vector<int32_t> appended{7, 7};
            unpackMicroVectorInto(word, bw, sgn, count, appended);
            ASSERT_EQ(appended.size(), count + 2);
            EXPECT_EQ(appended[0], 7);
            EXPECT_EQ(appended[1], 7);
            EXPECT_TRUE(std::equal(ref.begin(), ref.end(),
                                   appended.begin() + 2));
        }
    }
}

} // namespace
} // namespace mixgemm
