/**
 * @file
 * μ-kernel registry and autotuner tests: every registered SIMD kernel
 * must be bitwise identical — C and counter totals — to both the
 * scalar fast path and the modeled μ-engine, across the full
 * data-size-configuration matrix, edge shapes, register-blocking
 * shapes and thread counts; tuning files must round-trip through JSON
 * back to the exact same dispatch.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "gemm/kernels/autotune.h"
#include "gemm/kernels/kernel.h"
#include "gemm/mixgemm.h"
#include "gemm/reference.h"
#include "trace/session.h"

namespace mixgemm
{
namespace
{

DataSizeConfig
makeConfig(unsigned bwa, unsigned bwb, bool a_signed, bool b_signed)
{
    DataSizeConfig c;
    c.bwa = bwa;
    c.bwb = bwb;
    c.a_signed = a_signed;
    c.b_signed = b_signed;
    return c;
}

std::vector<int32_t>
randomMatrix(Rng &rng, uint64_t elems, unsigned bw, bool is_signed)
{
    std::vector<int32_t> data(elems);
    for (auto &v : data) {
        if (is_signed)
            v = static_cast<int32_t>(
                rng.uniformInt(-(int64_t{1} << (bw - 1)),
                               (int64_t{1} << (bw - 1)) - 1));
        else
            v = static_cast<int32_t>(
                rng.uniformInt(0, (int64_t{1} << bw) - 1));
    }
    return data;
}

struct RunSpec
{
    uint64_t m, n, k;
    DataSizeConfig config;
    unsigned threads = 1;
    BlockingParams blocking = BlockingParams::paperDefaults();
};

/**
 * Run one GEMM three ways — modeled, fast with the registry bypassed
 * (the PR-2 scalar per-cell loop) and fast with SIMD dispatch — and
 * require bitwise-equal C and counter maps, anchored to the naive
 * reference. Returns the SIMD run's dispatched kernel name.
 */
std::string
expectThreeWayIdentical(Rng &rng, const RunSpec &spec)
{
    const auto a = randomMatrix(rng, spec.m * spec.k, spec.config.bwa,
                                spec.config.a_signed);
    const auto b = randomMatrix(rng, spec.k * spec.n, spec.config.bwb,
                                spec.config.b_signed);
    const auto geometry =
        geometryForK(computeBsGeometry(spec.config), spec.k);

    BlockingParams blocking = spec.blocking;
    blocking.threads = spec.threads;
    blocking.kernel_mode = KernelMode::Modeled;
    const auto modeled =
        mixGemm(a, b, spec.m, spec.n, spec.k, geometry, blocking);

    blocking.kernel_mode = KernelMode::Fast;
    blocking.simd = SimdLevel::Off;
    const auto scalar =
        mixGemm(a, b, spec.m, spec.n, spec.k, geometry, blocking);

    blocking.simd = SimdLevel::Auto;
    const auto simd =
        mixGemm(a, b, spec.m, spec.n, spec.k, geometry, blocking);

    const std::string label =
        spec.config.name() + (spec.config.a_signed ? " s" : " u") +
        (spec.config.b_signed ? "s" : "u") + " " +
        std::to_string(spec.m) + "x" + std::to_string(spec.n) + "x" +
        std::to_string(spec.k) + " t" + std::to_string(spec.threads) +
        " mr" + std::to_string(spec.blocking.mr) + " nr" +
        std::to_string(spec.blocking.nr) + " -> " + simd.micro_kernel;
    EXPECT_EQ(scalar.micro_kernel, "legacy") << label;
    EXPECT_EQ(modeled.micro_kernel, "modeled") << label;
    EXPECT_EQ(scalar.c, modeled.c) << label;
    EXPECT_EQ(simd.c, modeled.c) << label;
    EXPECT_EQ(scalar.counters.all(), modeled.counters.all()) << label;
    EXPECT_EQ(simd.counters.all(), modeled.counters.all()) << label;
    EXPECT_EQ(simd.c, referenceGemmInt(a, b, spec.m, spec.n, spec.k))
        << label;
    return simd.micro_kernel;
}

// ---------------------------------------------------------------------
// Registry sanity
// ---------------------------------------------------------------------

TEST(KernelRegistry, CoversAllShapesWithUniqueNames)
{
    const auto &registry = microKernelRegistry();
    ASSERT_FALSE(registry.empty());
    std::vector<std::string> names;
    bool shapes[2][2] = {};
    for (const MicroKernel &k : registry) {
        EXPECT_NE(k.fn, nullptr) << k.name;
        EXPECT_TRUE((k.mr == 4 || k.mr == 8) &&
                    (k.nr == 4 || k.nr == 8))
            << k.name;
        EXPECT_LE(k.lanes, simdMaxLanes()) << k.name;
        names.push_back(k.name);
        shapes[k.mr == 8][k.nr == 8] = true;
    }
    EXPECT_TRUE(shapes[0][0] && shapes[0][1] && shapes[1][0] &&
                shapes[1][1]);
    std::sort(names.begin(), names.end());
    EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) ==
                names.end())
        << "duplicate kernel names";
    for (const MicroKernel &k : registry)
        EXPECT_EQ(findMicroKernel(k.name), &k);
    EXPECT_EQ(findMicroKernel("no_such_kernel"), nullptr);
}

TEST(KernelRegistry, SelectionRespectsShapeLevelAndSpecialization)
{
    const auto geometry = computeBsGeometry(makeConfig(8, 8, true, true));
    // Auto: the widest applicable kernel for the shape.
    const MicroKernel *autos =
        selectMicroKernel(geometry, 4, 4, SimdLevel::Auto);
    ASSERT_NE(autos, nullptr);
    EXPECT_EQ(autos->mr, 4u);
    EXPECT_EQ(autos->nr, 4u);
    EXPECT_EQ(autos->lanes, simdMaxLanes());
    if (simdMaxLanes() > 1) {
        // a8-w8 has a slice-specialized instantiation (cw 19).
        EXPECT_EQ(autos->cw, geometry.cw);
        EXPECT_EQ(autos->lsb, geometry.slice_lsb);
    }
    // Scalar level: the 1-lane fallback.
    const MicroKernel *scalar =
        selectMicroKernel(geometry, 8, 4, SimdLevel::Scalar);
    ASSERT_NE(scalar, nullptr);
    EXPECT_EQ(scalar->lanes, 1u);
    EXPECT_EQ(scalar->mr, 8u);
    // Off: registry bypassed.
    EXPECT_EQ(selectMicroKernel(geometry, 4, 4, SimdLevel::Off), nullptr);
    // Unregistered shapes keep the legacy loop.
    EXPECT_EQ(selectMicroKernel(geometry, 3, 5, SimdLevel::Auto),
              nullptr);
    // A forced name that exists and applies wins over Auto.
    const MicroKernel *forced = selectMicroKernel(
        geometry, 8, 4, SimdLevel::Auto, "scalar_8x4");
    ASSERT_NE(forced, nullptr);
    EXPECT_EQ(forced->name, "scalar_8x4");
    // A bogus forced name falls back to automatic selection.
    const MicroKernel *fallback = selectMicroKernel(
        geometry, 8, 4, SimdLevel::Auto, "no_such_kernel");
    ASSERT_NE(fallback, nullptr);
    EXPECT_EQ(fallback->lanes, simdMaxLanes());
}

// ---------------------------------------------------------------------
// Three-way identity: SIMD ≡ scalar-fast ≡ modeled
// ---------------------------------------------------------------------

TEST(KernelIdentity, AllConfigsAllThreadCounts)
{
    // The full 49-configuration matrix at an edge shape (m, n not
    // multiples of mr/nr; k crossing several group boundaries), at the
    // issue's 1/3/8 thread counts.
    Rng rng(20260810);
    for (const auto &cfg : allSupportedConfigs(true))
        expectThreeWayIdentical(rng, {13, 11, 70, cfg, 1});
    for (const auto &cfg : allSupportedConfigs(false))
        expectThreeWayIdentical(rng, {13, 11, 70, cfg, 3});
    Rng rng8(20260811);
    BlockingParams tiled = BlockingParams::paperDefaults();
    tiled.mc = 8;
    tiled.nc = 8;
    tiled.kc = 64;
    for (const auto &cfg : allSupportedConfigs(true))
        expectThreeWayIdentical(rng8, {13, 11, 70, cfg, 8, tiled});
}

TEST(KernelIdentity, EdgeShapes)
{
    Rng rng(20260812);
    const DataSizeConfig configs[] = {
        makeConfig(8, 8, true, true),
        makeConfig(8, 4, false, true),
        makeConfig(4, 8, true, false),
        makeConfig(4, 4, true, true),
        makeConfig(3, 2, true, true),
        makeConfig(2, 2, false, false),
    };
    for (const auto &cfg : configs) {
        for (unsigned threads : {1u, 3u, 8u}) {
            expectThreeWayIdentical(rng, {1, 1, 1, cfg, threads});
            expectThreeWayIdentical(rng, {5, 3, 7, cfg, threads});
            expectThreeWayIdentical(rng, {9, 7, 53, cfg, threads});
            expectThreeWayIdentical(rng, {17, 13, 129, cfg, threads});
        }
    }
}

TEST(KernelIdentity, AllRegisterBlockShapes)
{
    // Every registered mr x nr shape dispatches a SIMD kernel and
    // stays identical, including when the shape does not divide the
    // matrix (interior + edge split) or the cache blocks.
    Rng rng(20260813);
    const auto cfg_signed = makeConfig(8, 8, true, true);
    const auto cfg_mixed = makeConfig(5, 3, false, true);
    constexpr std::pair<unsigned, unsigned> kShapes[] = {
        {4, 4}, {8, 4}, {4, 8}, {8, 8}};
    for (const auto &[mr, nr] : kShapes) {
        BlockingParams blocking = BlockingParams::paperDefaults();
        blocking.mr = mr;
        blocking.nr = nr;
        for (unsigned threads : {1u, 3u}) {
            const std::string kernel = expectThreeWayIdentical(
                rng, {22, 19, 150, cfg_signed, threads, blocking});
            if (simdMaxLanes() > 1) {
                EXPECT_NE(kernel, "legacy")
                    << mr << "x" << nr << " t" << threads;
            }
            expectThreeWayIdentical(
                rng, {22, 19, 150, cfg_mixed, threads, blocking});
        }
        // Cache blocks that are not multiples of the register block.
        BlockingParams ragged = blocking;
        ragged.mc = mr + 1;
        ragged.nc = nr + 3;
        ragged.kc = 48;
        expectThreeWayIdentical(
            rng, {22, 19, 150, cfg_signed, 3, ragged});
    }
}

TEST(KernelIdentity, PropertySweepRandomShapes)
{
    Rng rng(20260814);
    const auto signed_cfgs = allSupportedConfigs(true);
    for (unsigned iter = 0; iter < 40; ++iter) {
        DataSizeConfig cfg =
            signed_cfgs[static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(signed_cfgs.size()) - 1))];
        cfg.a_signed = rng.uniformInt(0, 1) != 0;
        cfg.b_signed = rng.uniformInt(0, 1) != 0;
        RunSpec spec;
        spec.m = static_cast<uint64_t>(rng.uniformInt(1, 24));
        spec.n = static_cast<uint64_t>(rng.uniformInt(1, 24));
        spec.k = static_cast<uint64_t>(rng.uniformInt(1, 130));
        spec.config = cfg;
        spec.threads = static_cast<unsigned>(rng.uniformInt(1, 8));
        spec.blocking.mr = rng.uniformInt(0, 1) != 0 ? 4 : 8;
        spec.blocking.nr = rng.uniformInt(0, 1) != 0 ? 4 : 8;
        spec.blocking.mc = std::max<uint64_t>(
            spec.blocking.mr,
            static_cast<uint64_t>(rng.uniformInt(4, 16)));
        spec.blocking.nc = std::max<uint64_t>(
            spec.blocking.nr,
            static_cast<uint64_t>(rng.uniformInt(4, 16)));
        spec.blocking.kc = static_cast<uint64_t>(rng.uniformInt(32, 96));
        expectThreeWayIdentical(rng, spec);
    }
}

TEST(KernelIdentity, EverySimdLevelMatches)
{
    Rng rng(20260815);
    const auto cfg = makeConfig(8, 8, true, true);
    const auto a = randomMatrix(rng, 13 * 70, cfg.bwa, cfg.a_signed);
    const auto b = randomMatrix(rng, 70 * 11, cfg.bwb, cfg.b_signed);
    const auto geometry = geometryForK(computeBsGeometry(cfg), 70);
    BlockingParams blocking = BlockingParams::paperDefaults();
    blocking.kernel_mode = KernelMode::Modeled;
    const auto modeled = mixGemm(a, b, 13, 11, 70, geometry, blocking);
    blocking.kernel_mode = KernelMode::Fast;
    for (SimdLevel level :
         {SimdLevel::Off, SimdLevel::Scalar, SimdLevel::V128,
          SimdLevel::V256, SimdLevel::V512, SimdLevel::Auto}) {
        blocking.simd = level;
        const auto run = mixGemm(a, b, 13, 11, 70, geometry, blocking);
        EXPECT_EQ(run.c, modeled.c) << simdLevelName(level);
        EXPECT_EQ(run.counters.all(), modeled.counters.all())
            << simdLevelName(level);
    }
}

TEST(KernelIdentity, RunReportRecordsDispatchedKernel)
{
    Rng rng(20260816);
    const auto cfg = makeConfig(8, 8, true, true);
    const auto a = randomMatrix(rng, 8 * 64, cfg.bwa, cfg.a_signed);
    const auto b = randomMatrix(rng, 64 * 8, cfg.bwb, cfg.b_signed);
    const auto geometry = geometryForK(computeBsGeometry(cfg), 64);
    TraceSession session;
    BlockingParams blocking = BlockingParams::paperDefaults();
    blocking.session = &session;
    const auto fast = mixGemm(a, b, 8, 8, 64, geometry, blocking);
    blocking.kernel_mode = KernelMode::Modeled;
    mixGemm(a, b, 8, 8, 64, geometry, blocking);
    const auto reports = session.reports();
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(reports[0].kernel, fast.micro_kernel);
    EXPECT_FALSE(reports[0].kernel.empty());
    EXPECT_NE(reports[0].kernel, "modeled");
    EXPECT_EQ(reports[1].kernel, "modeled");
    // The kernel id must survive JSON serialization.
    EXPECT_NE(runReportToJson(reports[0]).find("\"kernel\": \"" +
                                               fast.micro_kernel + "\""),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Autotuner round trip
// ---------------------------------------------------------------------

TEST(Autotune, TuningSetJsonRoundTrip)
{
    TuningSet set;
    set.preset = "test-soc";
    set.simd_bits = 64 * simdMaxLanes();
    TuningEntry e;
    e.config = "a8-w8";
    e.a_signed = true;
    e.b_signed = true;
    e.mc = 128;
    e.nc = 256;
    e.kc = 256;
    e.mr = 8;
    e.nr = 4;
    e.kernel = "scalar_8x4";
    e.gops = 12.5;
    e.probe_m = 64;
    e.probe_n = 64;
    e.probe_k = 128;
    set.upsert(e);

    const auto parsed = TuningSet::fromJson(set.toJson());
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_EQ(parsed->preset, "test-soc");
    EXPECT_EQ(parsed->simd_bits, set.simd_bits);
    ASSERT_EQ(parsed->entries.size(), 1u);
    const TuningEntry &r = parsed->entries[0];
    EXPECT_EQ(r.config, e.config);
    EXPECT_EQ(r.mc, e.mc);
    EXPECT_EQ(r.nc, e.nc);
    EXPECT_EQ(r.kc, e.kc);
    EXPECT_EQ(r.mr, e.mr);
    EXPECT_EQ(r.nr, e.nr);
    EXPECT_EQ(r.kernel, e.kernel);
    EXPECT_NEAR(r.gops, e.gops, 1e-9);
    EXPECT_EQ(r.probe_k, e.probe_k);
}

TEST(Autotune, RejectsMalformedTuningFiles)
{
    EXPECT_FALSE(TuningSet::fromJson("not json").ok());
    EXPECT_FALSE(TuningSet::fromJson("[]").ok());
    EXPECT_FALSE(TuningSet::fromJson("{\"entries\": 3}").ok());
    // An entry with impossible blocking is rejected at load time.
    EXPECT_FALSE(
        TuningSet::fromJson(
            "{\"entries\": [{\"config\": \"a8-w8\", \"mc\": 0, "
            "\"nc\": 1, \"kc\": 1, \"mr\": 1, \"nr\": 1}]}")
            .ok());
    // And so is a nonsense config name.
    EXPECT_FALSE(
        TuningSet::fromJson(
            "{\"entries\": [{\"config\": \"a9-w99\", \"mc\": 4, "
            "\"nc\": 4, \"kc\": 4, \"mr\": 4, \"nr\": 4}]}")
            .ok());
}

TEST(Autotune, PersistReloadSameDispatch)
{
    // Quick-tune one configuration on a small probe, save to disk,
    // reload, and require the reloaded entry to drive the exact same
    // dispatch (same μ-kernel name in MixGemmResult).
    AutotuneOptions options;
    options.configs = {makeConfig(8, 8, true, true)};
    options.quick = true;
    options.m = 32;
    options.n = 32;
    options.k = 64;
    options.threads = 1;
    const TuningSet tuned = runAutotune(options, nullptr);
    ASSERT_EQ(tuned.entries.size(), 1u);
    const TuningEntry &entry = tuned.entries[0];
    EXPECT_FALSE(entry.kernel.empty());
    EXPECT_GT(entry.gops, 0.0);

    const std::string path =
        testing::TempDir() + "mixgemm_tuning_roundtrip.json";
    ASSERT_TRUE(tuned.save(path).ok());
    const auto reloaded = TuningSet::load(path);
    std::remove(path.c_str());
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().toString();
    const DataSizeConfig cfg = makeConfig(8, 8, true, true);
    const TuningEntry *found = reloaded->find(cfg);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->kernel, entry.kernel);

    Rng rng(20260817);
    const auto a = randomMatrix(rng, 16 * 64, cfg.bwa, cfg.a_signed);
    const auto b = randomMatrix(rng, 64 * 16, cfg.bwb, cfg.b_signed);
    const auto geometry = geometryForK(computeBsGeometry(cfg), 64);
    BlockingParams tuned_params =
        blockingForConfig(&*reloaded, cfg, 32 * 1024, 512 * 1024);
    EXPECT_EQ(tuned_params.mr, entry.mr);
    EXPECT_EQ(tuned_params.kc, entry.kc);
    const auto run = mixGemm(a, b, 16, 16, 64, geometry, tuned_params);
    EXPECT_EQ(run.micro_kernel, entry.kernel);
    // And an untuned config falls back to the analytical derivation.
    const DataSizeConfig other = makeConfig(6, 6, true, true);
    const BlockingParams derived =
        blockingForConfig(&*reloaded, other, 32 * 1024, 512 * 1024);
    EXPECT_TRUE(derived.micro_kernel.empty());
}

} // namespace
} // namespace mixgemm
