/**
 * @file
 * Content-addressed packed-weight store tests: artifact round trips,
 * the adversarial artifact suite (truncations, bit flips, wrong
 * endianness/version, out-of-bounds payload ranges, raw noise — all
 * must come back as structured Status errors before anything is
 * adopted; these run under ASan/UBSan in CI), bitwise identity of
 * mmap-loaded vs freshly packed panels across the full 49-configuration
 * matrix and {1,3,8} threads x {Fast, Modeled}, zero-copy adoption
 * (pack-counter regression), LRU eviction + refault determinism, and
 * copy-on-write isolation of borrowed (mapped) word storage.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "bs/geometry.h"
#include "common/random.h"
#include "common/status.h"
#include "dnn/models.h"
#include "gemm/kernels/autotune.h"
#include "runtime/backend.h"
#include "runtime/qgraph.h"
#include "store/artifact.h"
#include "store/modelgen.h"
#include "store/store.h"
#include "tensor/packing.h"

namespace mixgemm
{
namespace
{

namespace fs = std::filesystem;

/** Self-cleaning unique scratch directory for artifact files. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        static int counter = 0;
        path = fs::temp_directory_path() /
               ("mixgemm_store_test_" + std::to_string(::getpid()) +
                "_" + std::to_string(counter++));
        fs::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string file(const std::string &name) const
    {
        return (path / name).string();
    }
};

/** One quantized linear node of the given shape and bitwidths, with
 * deterministic in-range weight codes. */
QuantizedGraph
linearGraph(uint64_t k, uint64_t n, unsigned a_bits, unsigned w_bits,
            uint64_t seed)
{
    Rng rng(seed);
    QNode lin;
    lin.kind = QNode::Kind::kLinear;
    lin.spec.in_c = static_cast<unsigned>(k);
    lin.spec.out_c = static_cast<unsigned>(n);
    lin.spec.kh = lin.spec.kw = 1;
    lin.spec.in_h = lin.spec.in_w = 1;
    lin.weights_q.resize(k * n);
    const int64_t lo = -(int64_t{1} << (w_bits - 1));
    const int64_t hi = (int64_t{1} << (w_bits - 1)) - 1;
    for (auto &w : lin.weights_q)
        w = static_cast<int32_t>(rng.uniformInt(lo, hi));
    lin.bias.assign(n, 0.0);
    lin.a_params = QuantParams{1.0 / 64, 0, a_bits, true};
    lin.w_params = QuantParams{1.0 / 64, 0, w_bits, true};
    return QuantizedGraph({lin});
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << path;
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

// Header field offsets per the documented v1 layout (artifact.h). The
// tests mirror them on purpose: moving a field is a format change and
// must bump kArtifactVersion.
constexpr size_t kOffVersion = 8;
constexpr size_t kOffKey = 16;
constexpr size_t kOffFileBytes = 32;
constexpr size_t kOffPayloadFnv = 40;
constexpr size_t kOffHeaderFnv = 48;
constexpr size_t kNodeRecordBytes = 80;
constexpr size_t kNodeOffWordsOff = 40;

/** Recompute both checksums after a deliberate mutation, so the test
 * reaches the validation layer *behind* them. */
void
reseal(std::vector<uint8_t> &file)
{
    ASSERT_GE(file.size(), kArtifactHeaderBytes);
    const uint64_t payload =
        artifactChecksum(file.data() + kArtifactHeaderBytes,
                         file.size() - kArtifactHeaderBytes);
    std::memcpy(file.data() + kOffPayloadFnv, &payload, 8);
    const uint64_t header = artifactChecksum(file.data(), kOffHeaderFnv);
    std::memcpy(file.data() + kOffHeaderFnv, &header, 8);
}

/** Pack a small two-node graph and serialize it; returns the bytes. */
std::vector<uint8_t>
makeValidArtifact(const TempDir &dir, const std::string &name,
                  std::string tuning_json = "")
{
    QuantizedGraph graph = linearGraph(19, 7, 8, 4, 42);
    auto packed = packGraphWeights(graph);
    EXPECT_TRUE(packed.ok()) << packed.status().toString();
    packed->tuning_json = std::move(tuning_json);
    const std::string path = dir.file(name);
    const Status s = writeArtifact(*packed, path);
    EXPECT_TRUE(s.ok()) << s.toString();
    return readFile(path);
}

// ---------------------------------------------------------------------
// Artifact round trip
// ---------------------------------------------------------------------

TEST(Artifact, RoundTripIsBitwiseIdentical)
{
    TempDir dir;
    const QuantizedGraph graph =
        syntheticQuantizedGraph(alexNet(), 6, 4, /*seed=*/3,
                                /*max_layers=*/3);
    auto fresh = packGraphWeights(graph);
    ASSERT_TRUE(fresh.ok()) << fresh.status().toString();
    fresh->tuning_json = "{\"preset\": \"host\"}";
    const std::string path = dir.file("model.mgw");
    ASSERT_TRUE(writeArtifact(*fresh, path).ok());

    auto loaded = loadArtifact(path, /*verify_checksum=*/true,
                               fresh->key);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_TRUE(loaded->from_cache);
    EXPECT_EQ(loaded->key, fresh->key);
    EXPECT_EQ(loaded->tuning_json, fresh->tuning_json);
    EXPECT_GT(loaded->mapped_bytes, 0u);
    ASSERT_EQ(loaded->entries.size(), fresh->entries.size());
    for (size_t i = 0; i < fresh->entries.size(); ++i) {
        const CompressedB &got = loaded->entries[i].weights;
        const CompressedB &want = fresh->entries[i].weights;
        EXPECT_EQ(loaded->entries[i].node_index,
                  fresh->entries[i].node_index);
        EXPECT_TRUE(got.borrowsStorage());
        ASSERT_EQ(got.words().size(), want.words().size());
        EXPECT_TRUE(std::equal(got.words().begin(), got.words().end(),
                               want.words().begin()));
        // The artifact carries the cluster panels; adoption marks them
        // built without any expansion work.
        ASSERT_TRUE(got.clusterPanelsBuilt());
        want.ensureClusterPanels();
        ASSERT_EQ(got.clusterPanelWordCount(),
                  want.clusterPanelWordCount());
        if (got.clusterPanelWordCount() > 0) {
            EXPECT_EQ(std::memcmp(got.groupClusters(0, 0),
                                  want.groupClusters(0, 0),
                                  got.clusterPanelWordCount() * 8),
                      0);
        }
    }
}

TEST(Artifact, ContentKeyTracksEveryPackingInput)
{
    const QuantizedGraph base = linearGraph(19, 7, 8, 4, 42);
    const uint64_t key = weightContentKey(base);
    EXPECT_EQ(weightContentKey(linearGraph(19, 7, 8, 4, 42)), key);
    // Different weights, shape, or precision must all re-key.
    EXPECT_NE(weightContentKey(linearGraph(19, 7, 8, 4, 43)), key);
    EXPECT_NE(weightContentKey(linearGraph(19, 8, 8, 4, 42)), key);
    EXPECT_NE(weightContentKey(linearGraph(19, 7, 8, 3, 42)), key);
    EXPECT_NE(weightContentKey(linearGraph(19, 7, 4, 8, 42)), key);
}

// ---------------------------------------------------------------------
// Adversarial artifacts
// ---------------------------------------------------------------------

TEST(ArtifactAdversarial, EveryTruncationFailsCleanly)
{
    TempDir dir;
    const std::vector<uint8_t> valid = makeValidArtifact(dir, "v.mgw");
    ASSERT_GT(valid.size(), kArtifactHeaderBytes);
    const std::string path = dir.file("trunc.mgw");
    std::vector<size_t> cuts = {0, 1, 7, kArtifactHeaderBytes - 1,
                                kArtifactHeaderBytes,
                                kArtifactHeaderBytes + 1,
                                valid.size() - 1};
    for (size_t cut = 0; cut < valid.size(); cut += 41)
        cuts.push_back(cut);
    for (const size_t cut : cuts) {
        writeFile(path, {valid.begin(), valid.begin() + cut});
        const auto r = loadArtifact(path);
        EXPECT_FALSE(r.ok()) << "truncation at " << cut;
    }
}

TEST(ArtifactAdversarial, EveryBitFlipIsDetected)
{
    TempDir dir;
    const std::vector<uint8_t> valid = makeValidArtifact(dir, "v.mgw");
    const std::string path = dir.file("flip.mgw");
    // Two independent checksums (header + payload) mean a flip anywhere
    // in the file — including inside either checksum field — must be
    // rejected. Striding keeps the sweep fast while still hitting the
    // header, both checksum fields, the node table, and the payloads.
    std::vector<size_t> positions = {kOffVersion, kOffKey, kOffFileBytes,
                                     kOffPayloadFnv, kOffHeaderFnv,
                                     valid.size() - 1};
    for (size_t pos = 0; pos < valid.size(); pos += 97)
        positions.push_back(pos);
    for (const size_t pos : positions) {
        std::vector<uint8_t> mutated = valid;
        mutated[pos] ^= uint8_t{1} << (pos % 8);
        writeFile(path, mutated);
        const auto r = loadArtifact(path);
        EXPECT_FALSE(r.ok()) << "bit flip at byte " << pos;
    }
}

TEST(ArtifactAdversarial, WrongEndianRejectedBeforeChecksums)
{
    TempDir dir;
    std::vector<uint8_t> file = makeValidArtifact(dir, "v.mgw");
    // A foreign-endian writer stores the marker byte-swapped. The
    // endianness gate fires before the checksum pass, so no resealing
    // can smuggle the file through.
    const uint32_t swapped = 0x04030201;
    std::memcpy(file.data() + kArtifactEndianOffset, &swapped, 4);
    reseal(file);
    const std::string path = dir.file("endian.mgw");
    writeFile(path, file);
    const auto r = loadArtifact(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(r.status().message().find("endian"), std::string::npos);
}

TEST(ArtifactAdversarial, FutureVersionRejectedAsFailedPrecondition)
{
    TempDir dir;
    std::vector<uint8_t> file = makeValidArtifact(dir, "v.mgw");
    const uint32_t future = kArtifactVersion + 1;
    std::memcpy(file.data() + kOffVersion, &future, 4);
    reseal(file);
    const std::string path = dir.file("version.mgw");
    writeFile(path, file);
    const auto r = loadArtifact(path);
    ASSERT_FALSE(r.ok());
    // Version mismatch is "regenerate me", not "corrupt": a different
    // code from data loss so the store can distinguish.
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ArtifactAdversarial, BadMagicAndSizeMismatchRejected)
{
    TempDir dir;
    std::vector<uint8_t> file = makeValidArtifact(dir, "v.mgw");
    {
        std::vector<uint8_t> mutated = file;
        std::memcpy(mutated.data(), "ONNXPROT", 8);
        reseal(mutated);
        const std::string path = dir.file("magic.mgw");
        writeFile(path, mutated);
        EXPECT_FALSE(loadArtifact(path).ok());
    }
    {
        // Trailing garbage: file_bytes no longer matches the true size.
        std::vector<uint8_t> mutated = file;
        mutated.push_back(0xAB);
        const std::string path = dir.file("grown.mgw");
        writeFile(path, mutated);
        EXPECT_FALSE(loadArtifact(path).ok());
    }
}

TEST(ArtifactAdversarial, ContentKeyMismatchRejected)
{
    TempDir dir;
    const QuantizedGraph graph = linearGraph(19, 7, 8, 4, 42);
    auto packed = packGraphWeights(graph);
    ASSERT_TRUE(packed.ok());
    const std::string path = dir.file("keyed.mgw");
    ASSERT_TRUE(writeArtifact(*packed, path).ok());
    EXPECT_TRUE(loadArtifact(path, true, packed->key).ok());
    const auto r = loadArtifact(path, true, packed->key + 1);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ArtifactAdversarial, OutOfBoundsPayloadRangeRejected)
{
    TempDir dir;
    std::vector<uint8_t> file = makeValidArtifact(dir, "v.mgw");
    // Point the first node's packed words far past the end of the file
    // and reseal both checksums: the structural bounds check is the
    // last line of defense and must hold on its own.
    const size_t node0 = kArtifactHeaderBytes;
    const uint64_t huge = uint64_t{1} << 60;
    std::memcpy(file.data() + node0 + kNodeOffWordsOff, &huge, 8);
    reseal(file);
    const std::string path = dir.file("oob.mgw");
    writeFile(path, file);
    const auto r = loadArtifact(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);

    // Same with an offset inside the file but a count that overflows
    // past the end.
    std::vector<uint8_t> file2 = makeValidArtifact(dir, "v2.mgw");
    constexpr size_t kNodeOffWordsCount = kNodeOffWordsOff + 8;
    const uint64_t huge_count = uint64_t{1} << 61;
    std::memcpy(file2.data() + node0 + kNodeOffWordsCount, &huge_count,
                8);
    reseal(file2);
    const std::string path2 = dir.file("oob2.mgw");
    writeFile(path2, file2);
    EXPECT_FALSE(loadArtifact(path2).ok());
}

TEST(ArtifactAdversarial, RawNoiseNeverCrashes)
{
    TempDir dir;
    Rng rng(2024);
    const std::string path = dir.file("noise.mgw");
    for (const size_t size : {1u, 8u, 55u, 56u, 57u, 400u, 4096u}) {
        std::vector<uint8_t> noise(size);
        for (auto &b : noise)
            b = static_cast<uint8_t>(rng.uniformInt(0, 255));
        writeFile(path, noise);
        EXPECT_FALSE(loadArtifact(path).ok()) << size << " noise bytes";
    }
    EXPECT_FALSE(loadArtifact(dir.file("missing.mgw")).ok());
}

// ---------------------------------------------------------------------
// The store: cold pack, warm mmap, residency, eviction, self-healing
// ---------------------------------------------------------------------

TEST(Store, ColdPackThenWarmMmapThenResidentHit)
{
    TempDir dir;
    const QuantizedGraph graph =
        syntheticQuantizedGraph(alexNet(), 4, 4, 3, 2);
    StoreOptions options;
    options.dir = dir.path.string();

    PackedWeightStore cold(options);
    auto first = cold.load(graph);
    ASSERT_TRUE(first.ok()) << first.status().toString();
    EXPECT_FALSE((*first)->from_cache);
    EXPECT_EQ(cold.stats().misses, 1u);
    EXPECT_EQ(cold.stats().packs, 1u);
    EXPECT_EQ(cold.stats().artifact_writes, 1u);
    ASSERT_TRUE(fs::exists(cold.artifactPath((*first)->key)));

    // A fresh store (fresh process, in effect) must resolve via mmap
    // with zero packing or expansion work — the zero-copy gate.
    PackedWeightStore warm(options);
    const PackCounters before = packCounters();
    auto second = warm.load(graph);
    const PackCounters after = packCounters();
    ASSERT_TRUE(second.ok()) << second.status().toString();
    EXPECT_TRUE((*second)->from_cache);
    EXPECT_EQ(warm.stats().hits, 1u);
    EXPECT_EQ(warm.stats().artifact_loads, 1u);
    EXPECT_EQ(warm.stats().packs, 0u);
    EXPECT_EQ(after.b_packs, before.b_packs);
    EXPECT_EQ(after.cluster_builds, before.cluster_builds);
    EXPECT_GT(after.adoptions, before.adoptions);
    for (const PackedEntry &entry : (*second)->entries)
        EXPECT_TRUE(entry.weights.borrowsStorage());

    // Same store again: resident hit, same model object.
    auto third = warm.load(graph);
    ASSERT_TRUE(third.ok());
    EXPECT_EQ(third->get(), second->get());
    EXPECT_EQ(warm.stats().hits, 2u);
    EXPECT_EQ(warm.stats().artifact_loads, 1u);
}

TEST(Store, SelfHealsOverCorruptArtifact)
{
    TempDir dir;
    const QuantizedGraph graph = linearGraph(33, 9, 4, 4, 7);
    StoreOptions options;
    options.dir = dir.path.string();
    uint64_t key = 0;
    {
        PackedWeightStore store(options);
        auto model = store.load(graph);
        ASSERT_TRUE(model.ok());
        key = (*model)->key;
    }
    const std::string path =
        PackedWeightStore(options).artifactPath(key);
    std::vector<uint8_t> bytes = readFile(path);
    bytes[bytes.size() - 3] ^= 0x40; // corrupt the payload
    writeFile(path, bytes);

    // The corrupt artifact is rejected, silently re-packed over, and
    // the rewritten artifact is valid again.
    PackedWeightStore store(options);
    auto model = store.load(graph);
    ASSERT_TRUE(model.ok()) << model.status().toString();
    EXPECT_FALSE((*model)->from_cache);
    EXPECT_EQ(store.stats().rejected, 1u);
    EXPECT_EQ(store.stats().packs, 1u);
    EXPECT_EQ(store.stats().artifact_writes, 1u);
    EXPECT_TRUE(loadArtifact(path, true, key).ok());
}

TEST(Store, LruEvictionAndRefaultAreDeterministic)
{
    // Disk off: the store degrades to a resident pack cache, which is
    // exactly the LRU surface under test.
    StoreOptions options;
    options.dir = "";
    options.resident_budget_bytes = 1;
    PackedWeightStore store(options);

    const QuantizedGraph g1 = linearGraph(33, 9, 4, 4, 1);
    const QuantizedGraph g2 = linearGraph(33, 9, 4, 4, 2);
    auto first = store.load(g1);
    ASSERT_TRUE(first.ok());
    const std::vector<uint64_t> words1((*first)->entries[0]
                                           .weights.words()
                                           .begin(),
                                       (*first)->entries[0]
                                           .weights.words()
                                           .end());

    // Loading g2 blows the 1-byte budget; g1 (LRU) is evicted while g2
    // itself is kept — the budget never evicts the model just loaded.
    auto second = store.load(g2);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(store.stats().evictions, 1u);
    EXPECT_EQ(store.stats().resident_models, 1u);

    // The in-flight shared_ptr kept the evicted model fully usable.
    EXPECT_EQ((*first)->entries[0].weights.words().size(),
              words1.size());

    // Refault: packing is deterministic, so the rebuilt panels are
    // bitwise identical to the evicted ones.
    auto again = store.load(g1);
    ASSERT_TRUE(again.ok());
    EXPECT_NE(again->get(), first->get());
    ASSERT_EQ((*again)->entries[0].weights.words().size(),
              words1.size());
    EXPECT_TRUE(std::equal(words1.begin(), words1.end(),
                           (*again)->entries[0].weights.words().begin()));
    EXPECT_EQ(store.stats().misses, 3u);
    EXPECT_EQ(store.stats().hits, 0u);
}

TEST(Store, TuningMetadataRidesInTheArtifact)
{
    TempDir dir;
    const QuantizedGraph graph = linearGraph(33, 9, 8, 8, 11);
    TuningSet tuning;
    TuningEntry entry;
    entry.config = "a8-w8";
    entry.mc = 96;
    entry.nc = 88;
    entry.kc = 80;
    entry.kernel = "scalar";
    tuning.upsert(entry);

    StoreOptions options;
    options.dir = dir.path.string();
    {
        PackedWeightStore store(options);
        ASSERT_TRUE(store.load(graph, &tuning).ok());
    }
    PackedWeightStore warm(options);
    auto model = warm.load(graph);
    ASSERT_TRUE(model.ok());
    ASSERT_TRUE((*model)->from_cache);
    auto parsed = TuningSet::fromJson((*model)->tuning_json);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    const TuningEntry *found =
        parsed->find(DataSizeConfig{8, 8, true, true});
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->mc, 96u);
    EXPECT_EQ(found->kernel, "scalar");
}

// ---------------------------------------------------------------------
// Bitwise identity: mmap-loaded panels across the full config matrix
// ---------------------------------------------------------------------

TEST(StoreIdentity, MmapEqualsFreshAcrossConfigsThreadsAndKernels)
{
    TempDir dir;
    StoreOptions options;
    options.dir = dir.path.string();
    constexpr uint64_t kM = 6, kN = 9, kK = 35;
    Rng rng(5150);

    for (const DataSizeConfig &cfg : allSupportedConfigs()) {
        const QuantizedGraph graph =
            linearGraph(kK, kN, cfg.bwa, cfg.bwb, 1000 + cfg.bwa * 10 +
                                                      cfg.bwb);
        {
            PackedWeightStore cold(options);
            ASSERT_TRUE(cold.load(graph).ok());
        }
        PackedWeightStore warm(options);
        auto model = warm.load(graph);
        ASSERT_TRUE(model.ok()) << cfg.name();
        ASSERT_TRUE((*model)->from_cache) << cfg.name();
        auto index = PackedModelIndex::build(*model, graph);
        ASSERT_TRUE(index.ok()) << cfg.name();

        std::vector<int32_t> a(kM * kK);
        const int64_t lo = -(int64_t{1} << (cfg.bwa - 1));
        const int64_t hi = (int64_t{1} << (cfg.bwa - 1)) - 1;
        for (auto &v : a)
            v = static_cast<int32_t>(rng.uniformInt(lo, hi));
        const std::span<const int32_t> weights =
            graph.nodes()[0].weights_q;

        for (const unsigned threads : {1u, 3u, 8u}) {
            for (const KernelMode mode :
                 {KernelMode::Fast, KernelMode::Modeled}) {
                MixGemmBackend fresh(threads, mode);
                const auto want =
                    fresh.gemm(a, weights, kM, kN, kK, cfg);

                MixGemmBackend mapped(threads, mode);
                mapped.setPrepacked(index->get());
                const auto got =
                    mapped.gemm(a, weights, kM, kN, kK, cfg);
                EXPECT_EQ(mapped.prepackHits(), 1u)
                    << cfg.name() << " threads=" << threads;
                EXPECT_EQ(got, want)
                    << cfg.name() << " threads=" << threads
                    << " mode="
                    << (mode == KernelMode::Fast ? "fast" : "modeled");
            }
        }
    }
}

TEST(StoreIdentity, IndexMissesOnForeignPointerShapeOrConfig)
{
    TempDir dir;
    StoreOptions options;
    options.dir = dir.path.string();
    const QuantizedGraph graph = linearGraph(33, 9, 8, 4, 77);
    PackedWeightStore store(options);
    auto model = store.load(graph);
    ASSERT_TRUE(model.ok());
    auto index = PackedModelIndex::build(*model, graph);
    ASSERT_TRUE(index.ok());

    const int32_t *data = graph.nodes()[0].weights_q.data();
    const DataSizeConfig cfg{8, 4, true, true};
    EXPECT_NE((*index)->find(data, 33, 9, cfg), nullptr);
    // Different pointer, shape, or config must all miss rather than
    // hand back the wrong panels.
    const std::vector<int32_t> other(33 * 9, 1);
    EXPECT_EQ((*index)->find(other.data(), 33, 9, cfg), nullptr);
    EXPECT_EQ((*index)->find(data, 33, 8, cfg), nullptr);
    EXPECT_EQ((*index)->find(data, 32, 9, cfg), nullptr);
    const DataSizeConfig cfg88{8, 8, true, true};
    EXPECT_EQ((*index)->find(data, 33, 9, cfg88), nullptr);
}

// ---------------------------------------------------------------------
// Borrowed storage: copy-on-write isolation
// ---------------------------------------------------------------------

TEST(Store, MutatingAdoptedPanelsCopiesInsteadOfWritingTheMapping)
{
    TempDir dir;
    const QuantizedGraph graph = linearGraph(19, 7, 8, 4, 42);
    auto packed = packGraphWeights(graph);
    ASSERT_TRUE(packed.ok());
    const std::string path = dir.file("cow.mgw");
    ASSERT_TRUE(writeArtifact(*packed, path).ok());

    auto loaded = loadArtifact(path);
    ASSERT_TRUE(loaded.ok());
    CompressedB &b = loaded->entries[0].weights;
    ASSERT_TRUE(b.borrowsStorage());
    const uint64_t original = b.word(0, 0, 0);

    // First mutation detaches into owned storage (copy-on-write);
    // the mapped artifact must remain byte-identical on disk.
    b.setWord(b.wordIndex(0, 0, 0), original ^ 0xFFull);
    EXPECT_FALSE(b.borrowsStorage());
    EXPECT_EQ(b.word(0, 0, 0), original ^ 0xFFull);

    auto reloaded = loadArtifact(path, /*verify_checksum=*/true);
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().toString();
    EXPECT_EQ(reloaded->entries[0].weights.word(0, 0, 0), original);
}

} // namespace
} // namespace mixgemm
