/**
 * @file
 * Tests for library conveniences added beyond the core reproduction:
 * transposed-operand packing (BLAS op(A)/op(B)), the im2col lowering
 * variant, batched network timing, and the sub-byte software baseline's
 * place in the performance ordering.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "dnn/models.h"
#include "dnn/network_timing.h"
#include "gemm/mixgemm.h"
#include "gemm/reference.h"
#include "sim/gemm_timing.h"
#include "soc/soc_config.h"
#include "tensor/conv.h"
#include "tensor/packing.h"

namespace mixgemm
{
namespace
{

TEST(TransposedPacking, ColumnMajorAMatchesRowMajor)
{
    const auto g = computeBsGeometry({6, 6, true, true});
    const uint64_t m = 7, k = 45;
    Rng rng(3);
    std::vector<int32_t> a(m * k);
    for (auto &v : a)
        v = static_cast<int32_t>(rng.uniformInt(-32, 31));
    // Column-major copy (k x m).
    std::vector<int32_t> at(k * m);
    for (uint64_t r = 0; r < m; ++r)
        for (uint64_t c = 0; c < k; ++c)
            at[c * m + r] = a[r * k + c];

    const CompressedA direct(a, m, k, g);
    const auto transposed = CompressedA::fromColumnMajor(at, m, k, g);
    ASSERT_EQ(direct.words().size(), transposed.words().size());
    for (size_t i = 0; i < direct.words().size(); ++i)
        ASSERT_EQ(direct.words()[i], transposed.words()[i]);
}

TEST(TransposedPacking, TransposedBMatchesRowMajor)
{
    const auto g = computeBsGeometry({4, 4, true, true});
    const uint64_t k = 70, n = 5;
    Rng rng(4);
    std::vector<int32_t> b(k * n);
    for (auto &v : b)
        v = static_cast<int32_t>(rng.uniformInt(-8, 7));
    std::vector<int32_t> bt(n * k); // n x k (each column contiguous)
    for (uint64_t r = 0; r < k; ++r)
        for (uint64_t c = 0; c < n; ++c)
            bt[c * k + r] = b[r * n + c];

    const CompressedB direct(b, k, n, g);
    const auto transposed = CompressedB::fromTransposed(bt, k, n, g);
    ASSERT_EQ(direct.words().size(), transposed.words().size());
    for (size_t i = 0; i < direct.words().size(); ++i)
        ASSERT_EQ(direct.words()[i], transposed.words()[i]);
}

TEST(TransposedPacking, GemmWithTransposedOperandsIsCorrect)
{
    const auto g = computeBsGeometry({8, 8, true, true});
    const uint64_t m = 9, n = 6, k = 40;
    Rng rng(5);
    std::vector<int32_t> a(m * k);
    std::vector<int32_t> b(k * n);
    for (auto &v : a)
        v = static_cast<int32_t>(rng.uniformInt(-128, 127));
    for (auto &v : b)
        v = static_cast<int32_t>(rng.uniformInt(-128, 127));
    std::vector<int32_t> at(k * m);
    std::vector<int32_t> bt(n * k);
    for (uint64_t r = 0; r < m; ++r)
        for (uint64_t c = 0; c < k; ++c)
            at[c * m + r] = a[r * k + c];
    for (uint64_t r = 0; r < k; ++r)
        for (uint64_t c = 0; c < n; ++c)
            bt[c * k + r] = b[r * n + c];

    const auto ca = CompressedA::fromColumnMajor(at, m, k, g);
    const auto cb = CompressedB::fromTransposed(bt, k, n, g);
    const auto result = mixGemm(ca, cb);
    const auto expected = referenceGemmInt(a, b, m, n, k);
    for (size_t i = 0; i < expected.size(); ++i)
        ASSERT_EQ(result.c[i], expected[i]);
}

TEST(TransposedPacking, RejectsBadSizes)
{
    const auto g = computeBsGeometry({8, 8, true, true});
    const std::vector<int32_t> data(10, 0);
    EXPECT_THROW(CompressedA::fromColumnMajor(data, 3, 4, g),
                 FatalError);
    EXPECT_THROW(CompressedB::fromTransposed(data, 3, 4, g),
                 FatalError);
}

TEST(Im2col, IsTheTransposeOfIm2row)
{
    ConvSpec spec;
    spec.in_c = 3;
    spec.in_h = spec.in_w = 7;
    spec.out_c = 4;
    spec.kh = spec.kw = 3;
    spec.pad = 1;
    Rng rng(6);
    Tensor<double> input({1, 3, 7, 7});
    for (auto &v : input.flat())
        v = rng.normal();
    const auto rows = im2row(input, spec);
    const auto cols = im2col(input, spec);
    ASSERT_EQ(cols.dim(0), rows.dim(1));
    ASSERT_EQ(cols.dim(1), rows.dim(0));
    for (size_t r = 0; r < rows.dim(0); ++r)
        for (size_t c = 0; c < rows.dim(1); ++c)
            ASSERT_DOUBLE_EQ(cols.at(c, r), rows.at(r, c));
}

TEST(BatchedTiming, BatchAmortizesFullyConnectedLayers)
{
    // AlexNet's m = 1 FC layers waste most of the 4x4 tile at batch 1;
    // batching recovers throughput (Section II-A: im2row can take rows
    // "from a batch of multiple input images").
    const GemmTimingModel timing(SoCConfig::sargantana());
    const auto model = alexNet();
    const DataSizeConfig cfg{8, 8, true, true};
    const auto b1 = timeNetworkMixGemm(model, timing, cfg, true, 1);
    const auto b8 = timeNetworkMixGemm(model, timing, cfg, true, 8);
    EXPECT_GT(b8.gops, b1.gops * 1.05)
        << "batching must improve AlexNet throughput";
    // Per-image work is identical.
    EXPECT_NEAR(static_cast<double>(b8.total_cycles) / 8.0,
                static_cast<double>(b1.total_cycles),
                static_cast<double>(b1.total_cycles) * 0.35);
    EXPECT_THROW(timeNetworkMixGemm(model, timing, cfg, true, 0),
                 FatalError);
}

TEST(SubByteSoftware, SitsBetweenDgemmAndMixGemm)
{
    const GemmTimingModel model(SoCConfig::sargantana());
    const uint64_t s = 256;
    const auto dgemm = model.dgemm(s, s, s);
    for (const unsigned bw : {4u, 2u}) {
        const auto sw = model.subByteSoftware(s, s, s, bw);
        const auto mix = model.mixGemm(
            s, s, s, computeBsGeometry({bw, bw, true, true}));
        EXPECT_LT(sw.cycles, dgemm.cycles) << bw;
        EXPECT_LT(mix.cycles, sw.cycles) << bw;
    }
    EXPECT_THROW(model.subByteSoftware(8, 8, 8, 1), FatalError);
}

TEST(SubByteSoftware, FlatAcrossDataSizes)
{
    // The Introduction's point: software decompression throughput does
    // not improve as operands shrink.
    const GemmTimingModel model(SoCConfig::sargantana());
    const uint64_t s = 256;
    const auto c8 = model.subByteSoftware(s, s, s, 8).cycles;
    const auto c2 = model.subByteSoftware(s, s, s, 2).cycles;
    EXPECT_NEAR(static_cast<double>(c2) / c8, 1.0, 0.1);
}

} // namespace
} // namespace mixgemm
