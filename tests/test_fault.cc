/**
 * @file
 * Fault-injection engine and ABFT tests: a fault plan must be a pure
 * function of (seed, logical GEMM shape) — identical fault sites,
 * corrupted output, and fault counters at every thread count and under
 * both μ-kernels — and FaultPolicy::Off must be bitwise-transparent.
 * On top of that, the ABFT policies must honor their contracts:
 * Detect flags every corrupting accumulator/inner-product fault,
 * DetectRetry corrects all transient faults, DetectFallback degrades
 * the whole GEMM to the Modeled kernel, and persistent (stuck-at) or
 * input (packed SRAM) faults are honestly reported as uncorrectable.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "fault/campaign.h"
#include "fault/injector.h"
#include "gemm/mixgemm.h"
#include "gemm/reference.h"
#include "tensor/packing.h"

namespace mixgemm
{
namespace
{

std::vector<int32_t>
randomMatrix(Rng &rng, uint64_t elems, unsigned bw, bool is_signed)
{
    std::vector<int32_t> data(elems);
    const int64_t lo = is_signed ? -(int64_t{1} << (bw - 1)) : 0;
    const int64_t hi = is_signed ? (int64_t{1} << (bw - 1)) - 1
                                 : (int64_t{1} << bw) - 1;
    for (auto &v : data)
        v = static_cast<int32_t>(rng.uniformInt(lo, hi));
    return data;
}

/** Fixed operands shared by every test in this file. */
struct Operands
{
    uint64_t m = 24;
    uint64_t n = 20;
    uint64_t k = 48;
    DataSizeConfig config{8, 8, true, true};
    CompressedA a;
    CompressedB b;
    std::vector<int64_t> golden;

    static const Operands &instance()
    {
        static const Operands ops;
        return ops;
    }

  private:
    Operands()
        : a(makeA()), b(makeB()),
          golden(mixGemm(a, b, blocking()).c)
    {
    }

    static BsGeometry geometry()
    {
        return computeBsGeometry(DataSizeConfig{8, 8, true, true});
    }
    static CompressedA makeA()
    {
        Rng rng(42);
        return CompressedA(randomMatrix(rng, 24 * 48, 8, true), 24, 48,
                           geometry());
    }
    static CompressedB makeB()
    {
        Rng rng(43);
        return CompressedB(randomMatrix(rng, 48 * 20, 8, true), 48, 20,
                           geometry());
    }

  public:
    /** Small tiles so the shape decomposes into 2 x 2 macro tiles. */
    static BlockingParams blocking()
    {
        BlockingParams params;
        params.mc = 16;
        params.nc = 16;
        params.kc = 64;
        params.mr = 4;
        params.nr = 4;
        return params;
    }
};

using PlannedKey = std::tuple<unsigned, uint64_t, uint64_t, unsigned>;

std::vector<PlannedKey>
plannedKeys(const FaultInjector &injector)
{
    std::vector<PlannedKey> keys;
    for (const PlannedFault &f : injector.planned())
        keys.emplace_back(static_cast<unsigned>(f.site), f.coord,
                          f.mask, static_cast<unsigned>(f.model));
    return keys;
}

struct FaultRun
{
    std::vector<int64_t> c;
    std::map<std::string, uint64_t> counters;
    std::vector<PlannedKey> planned;
    uint64_t injected = 0;
    AbftOutcome abft;
};

FaultRun
runWithFault(FaultSite site, FaultModel model, uint64_t seed,
             unsigned threads, KernelMode mode, FaultPolicy policy,
             unsigned max_faults = 1, unsigned bits = 1)
{
    const Operands &ops = Operands::instance();
    FaultSpec spec;
    spec.seed = seed;
    spec.site = site;
    spec.model = model;
    spec.max_faults = max_faults;
    spec.bits_per_fault = bits;
    FaultInjector injector({spec});

    BlockingParams params = Operands::blocking();
    params.threads = threads;
    params.kernel_mode = mode;
    params.fault = &injector;
    params.fault_policy = policy;
    const MixGemmResult result = mixGemm(ops.a, ops.b, params);
    return {result.c, result.counters.all(), plannedKeys(injector),
            injector.injectedCount(), result.abft};
}

// ---------------------------------------------------------------------
// Vocabulary and plan basics
// ---------------------------------------------------------------------

TEST(FaultVocabulary, NamesRoundTrip)
{
    for (unsigned s = 0; s < kFaultSiteCount; ++s) {
        const auto site = static_cast<FaultSite>(s);
        const auto back = faultSiteFromName(faultSiteName(site));
        ASSERT_TRUE(back.ok());
        EXPECT_EQ(*back, site);
    }
    for (const auto model : {FaultModel::BitFlip, FaultModel::StuckAt0,
                             FaultModel::StuckAt1}) {
        const auto back = faultModelFromName(faultModelName(model));
        ASSERT_TRUE(back.ok());
        EXPECT_EQ(*back, model);
    }
    for (const auto policy :
         {FaultPolicy::Off, FaultPolicy::Detect, FaultPolicy::DetectRetry,
          FaultPolicy::DetectFallback}) {
        const auto back = faultPolicyFromName(faultPolicyName(policy));
        ASSERT_TRUE(back.ok());
        EXPECT_EQ(*back, policy);
    }
    EXPECT_FALSE(faultSiteFromName("bogus").ok());
    EXPECT_FALSE(faultModelFromName("bogus").ok());
    EXPECT_FALSE(faultPolicyFromName("bogus").ok());
}

TEST(FaultVocabulary, SpecValidation)
{
    FaultSpec good;
    EXPECT_TRUE(validateFaultSpec(good).ok());
    FaultSpec bad_bits = good;
    bad_bits.bits_per_fault = 0;
    EXPECT_FALSE(validateFaultSpec(bad_bits).ok());
    bad_bits.bits_per_fault = 65;
    EXPECT_FALSE(validateFaultSpec(bad_bits).ok());
    FaultSpec bad_acc = good;
    bad_acc.acc_bits = 0;
    EXPECT_FALSE(validateFaultSpec(bad_acc).ok());
}

TEST(FaultInjectorTest, CorruptBitsModels)
{
    EXPECT_EQ(FaultInjector::corruptBits(0b1010, 0b0110,
                                         FaultModel::BitFlip),
              0b1100u);
    EXPECT_EQ(FaultInjector::corruptBits(0b1010, 0b0110,
                                         FaultModel::StuckAt0),
              0b1000u);
    EXPECT_EQ(FaultInjector::corruptBits(0b1010, 0b0110,
                                         FaultModel::StuckAt1),
              0b1110u);
}

TEST(FaultInjectorTest, PlanIsSeedDeterministicAndBudgeted)
{
    GemmPlanShape shape;
    shape.m = 24;
    shape.n = 20;
    shape.k_groups = 6;
    shape.mc = 16;
    shape.nc = 16;
    shape.kua = 4;
    shape.kub = 4;

    FaultSpec spec;
    spec.seed = 7;
    spec.site = FaultSite::Accumulator;
    spec.max_faults = 3;
    FaultInjector one({spec});
    one.beginGemm(shape);
    FaultInjector two({spec});
    two.beginGemm(shape);
    EXPECT_EQ(plannedKeys(one), plannedKeys(two));
    EXPECT_LE(one.planned().size(), 3u);
    EXPECT_FALSE(one.planned().empty());
    // Distinct seed, distinct plan (astronomically unlikely to match).
    spec.seed = 8;
    FaultInjector three({spec});
    three.beginGemm(shape);
    EXPECT_NE(plannedKeys(one), plannedKeys(three));
    // Coordinates are in range for the site.
    for (const PlannedFault &f : one.planned()) {
        EXPECT_EQ(f.site, FaultSite::Accumulator);
        EXPECT_LT(f.coord, shape.m * shape.n);
    }
}

TEST(FaultInjectorTest, TargetTileConfinesAccumulatorFaults)
{
    GemmPlanShape shape;
    shape.m = 24;
    shape.n = 20;
    shape.k_groups = 6;
    shape.mc = 16;
    shape.nc = 16;
    shape.kua = 4;
    shape.kub = 4;
    // Tile index 1 of the jc-outer/ic-inner enumeration: ic tile 1
    // (rows 16..24), jc tile 0 (cols 0..16).
    FaultSpec spec;
    spec.seed = 11;
    spec.site = FaultSite::Accumulator;
    spec.max_faults = 8;
    spec.target_tile = 1;
    FaultInjector injector({spec});
    injector.beginGemm(shape);
    ASSERT_FALSE(injector.planned().empty());
    for (const PlannedFault &f : injector.planned()) {
        const uint64_t row = f.coord / shape.n;
        const uint64_t col = f.coord % shape.n;
        EXPECT_GE(row, 16u);
        EXPECT_LT(row, 24u);
        EXPECT_LT(col, 16u);
    }
}

// ---------------------------------------------------------------------
// Injection determinism across threads and kernel modes
// ---------------------------------------------------------------------

/** Sites whose faulted output must agree across BOTH kernel modes. */
const FaultSite kCrossKernelSites[] = {
    FaultSite::PackedA,
    FaultSite::PackedB,
    FaultSite::BsIpResult,
    FaultSite::Accumulator,
};

TEST(FaultDeterminism, SameSeedSameFaultsAcrossThreadsAndKernels)
{
    for (const FaultSite site : kCrossKernelSites) {
        const FaultRun base =
            runWithFault(site, FaultModel::BitFlip, 123, 1,
                         KernelMode::Fast, FaultPolicy::Off);
        for (const unsigned threads : {1u, 3u, 8u}) {
            for (const KernelMode mode :
                 {KernelMode::Fast, KernelMode::Modeled}) {
                const FaultRun run =
                    runWithFault(site, FaultModel::BitFlip, 123, threads,
                                 mode, FaultPolicy::Off);
                const std::string label =
                    std::string(faultSiteName(site)) + " t" +
                    std::to_string(threads) +
                    (mode == KernelMode::Fast ? " fast" : " modeled");
                EXPECT_EQ(run.planned, base.planned) << label;
                ASSERT_EQ(run.c, base.c) << label;
                EXPECT_EQ(run.injected, base.injected) << label;
                EXPECT_EQ(run.counters, base.counters) << label;
            }
        }
    }
}

TEST(FaultDeterminism, ClusterPanelFaultsDeterministicUnderFastPath)
{
    const FaultRun base =
        runWithFault(FaultSite::ClusterPanelA, FaultModel::BitFlip, 321,
                     1, KernelMode::Fast, FaultPolicy::Off);
    for (const unsigned threads : {3u, 8u}) {
        const FaultRun run =
            runWithFault(FaultSite::ClusterPanelA, FaultModel::BitFlip,
                         321, threads, KernelMode::Fast,
                         FaultPolicy::Off);
        EXPECT_EQ(run.planned, base.planned);
        ASSERT_EQ(run.c, base.c);
        EXPECT_EQ(run.counters, base.counters);
    }
    // Panels do not exist under the Modeled kernel: the plan arms
    // nothing and the output is clean.
    const FaultRun modeled =
        runWithFault(FaultSite::ClusterPanelA, FaultModel::BitFlip, 321,
                     1, KernelMode::Modeled, FaultPolicy::Off);
    EXPECT_TRUE(modeled.planned.empty());
    EXPECT_EQ(modeled.c, Operands::instance().golden);
}

TEST(FaultDeterminism, AccumulatorAndIpFlipsAlwaysCorrupt)
{
    // Accumulator and inner-product coordinates always name a real
    // in-range cell, so a 1-bit flip is never masked by padding.
    for (const FaultSite site :
         {FaultSite::Accumulator, FaultSite::BsIpResult}) {
        const FaultRun run = runWithFault(site, FaultModel::BitFlip, 55,
                                          3, KernelMode::Fast,
                                          FaultPolicy::Off);
        EXPECT_NE(run.c, Operands::instance().golden)
            << faultSiteName(site);
        EXPECT_EQ(run.injected, 1u) << faultSiteName(site);
    }
}

// ---------------------------------------------------------------------
// Policy transparency: clean runs
// ---------------------------------------------------------------------

TEST(FaultPolicyTest, CleanRunsBitwiseIdenticalAcrossPolicies)
{
    const Operands &ops = Operands::instance();
    BlockingParams off = Operands::blocking();
    off.fault_policy = FaultPolicy::Off;
    const MixGemmResult base = mixGemm(ops.a, ops.b, off);
    EXPECT_EQ(base.c, ops.golden);

    for (const FaultPolicy policy :
         {FaultPolicy::Detect, FaultPolicy::DetectRetry,
          FaultPolicy::DetectFallback}) {
        for (const KernelMode mode :
             {KernelMode::Fast, KernelMode::Modeled}) {
            BlockingParams params = Operands::blocking();
            params.fault_policy = policy;
            params.kernel_mode = mode;
            params.threads = 3;
            const MixGemmResult run = mixGemm(ops.a, ops.b, params);
            ASSERT_EQ(run.c, base.c) << faultPolicyName(policy);
            EXPECT_EQ(run.abft.tiles_flagged, 0u);
            EXPECT_EQ(run.abft.tiles_checked, 4u);
            EXPECT_FALSE(run.abft.fell_back);
            // The compute counters (everything except the ABFT
            // bookkeeping) must match the Off run exactly.
            for (const auto &[name, value] : base.counters.all()) {
                EXPECT_EQ(run.counters.get(name), value)
                    << faultPolicyName(policy) << " " << name;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Detection, correction, and graceful degradation
// ---------------------------------------------------------------------

TEST(FaultPolicyTest, DetectFlagsButReturnsCorruptOutput)
{
    const FaultRun run =
        runWithFault(FaultSite::Accumulator, FaultModel::BitFlip, 99, 1,
                     KernelMode::Fast, FaultPolicy::Detect);
    EXPECT_NE(run.c, Operands::instance().golden);
    EXPECT_EQ(run.abft.tiles_flagged, 1u);
    EXPECT_EQ(run.abft.retries, 0u);
    EXPECT_EQ(run.abft.tiles_corrected, 0u);
}

TEST(FaultPolicyTest, DetectRetryCorrectsTransientFaults)
{
    for (const FaultSite site :
         {FaultSite::Accumulator, FaultSite::BsIpResult}) {
        for (const KernelMode mode :
             {KernelMode::Fast, KernelMode::Modeled}) {
            for (const unsigned threads : {1u, 3u}) {
                const FaultRun run =
                    runWithFault(site, FaultModel::BitFlip, 77, threads,
                                 mode, FaultPolicy::DetectRetry);
                const std::string label =
                    std::string(faultSiteName(site)) +
                    (mode == KernelMode::Fast ? " fast" : " modeled");
                ASSERT_EQ(run.c, Operands::instance().golden) << label;
                EXPECT_EQ(run.abft.tiles_flagged, 1u) << label;
                EXPECT_EQ(run.abft.tiles_corrected, 1u) << label;
                EXPECT_EQ(run.abft.tiles_uncorrected, 0u) << label;
                EXPECT_GE(run.abft.retries, 1u) << label;
            }
        }
    }
}

TEST(FaultPolicyTest, DetectRetryHealsCorruptedPanelsViaModeledBackoff)
{
    // A cluster-panel fault persists across same-kernel retries (the
    // corrupted cache is reread), so correction must come from the
    // retry ladder's Modeled backoff, which bypasses the panels.
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        const FaultRun run =
            runWithFault(FaultSite::ClusterPanelA, FaultModel::BitFlip,
                         seed, 1, KernelMode::Fast,
                         FaultPolicy::DetectRetry);
        ASSERT_EQ(run.c, Operands::instance().golden)
            << "seed " << seed;
        EXPECT_EQ(run.abft.tiles_uncorrected, 0u);
    }
}

TEST(FaultPolicyTest, StuckAtAccumulatorHonestlyUncorrected)
{
    // A stuck-at accumulator bit reapplies on every recompute; if it
    // corrupts at all, retries cannot fix it and the driver must say so.
    const FaultRun run =
        runWithFault(FaultSite::Accumulator, FaultModel::StuckAt1, 13, 1,
                     KernelMode::Fast, FaultPolicy::DetectRetry);
    if (run.abft.tiles_flagged > 0) {
        EXPECT_EQ(run.abft.tiles_corrected, 0u);
        EXPECT_EQ(run.abft.tiles_uncorrected, run.abft.tiles_flagged);
        EXPECT_NE(run.c, Operands::instance().golden);
    } else {
        // The forced bit already held that value: no corruption at all.
        EXPECT_EQ(run.c, Operands::instance().golden);
    }
}

TEST(FaultPolicyTest, DetectFallbackDegradesWholeGemm)
{
    const FaultRun run =
        runWithFault(FaultSite::BsIpResult, FaultModel::BitFlip, 202, 3,
                     KernelMode::Fast, FaultPolicy::DetectFallback);
    EXPECT_TRUE(run.abft.fell_back);
    ASSERT_EQ(run.c, Operands::instance().golden);
    EXPECT_EQ(run.abft.tiles_uncorrected, 0u);
}

TEST(FaultPolicyTest, PackedFaultsDetectedAsInputCorruption)
{
    // Packed-SRAM corruption changes the operands themselves:
    // recomputation cannot help, and the tile checksums (built from the
    // corrupted operands) stay consistent. The operand checksum snapshot
    // is what must catch it whenever the flip lands on a live element.
    const FaultRun run =
        runWithFault(FaultSite::PackedA, FaultModel::BitFlip, 31, 1,
                     KernelMode::Fast, FaultPolicy::Detect);
    if (run.c != Operands::instance().golden) {
        EXPECT_GT(run.abft.input_k_mismatches, 0u);
    }
    EXPECT_EQ(run.abft.tiles_flagged, 0u);
}

TEST(FaultPolicyTest, FaultCountersFlowIntoCounterSet)
{
    const FaultRun run =
        runWithFault(FaultSite::Accumulator, FaultModel::BitFlip, 99, 1,
                     KernelMode::Fast, FaultPolicy::DetectRetry);
    auto get = [&](const std::string &name) -> uint64_t {
        for (const auto &[key, value] : run.counters)
            if (key == name)
                return value;
        return 0;
    };
    EXPECT_EQ(get("faults_injected"), run.injected);
    EXPECT_EQ(get("abft_tiles_checked"), 4u);
    EXPECT_EQ(get("abft_tiles_flagged"), 1u);
    EXPECT_EQ(get("abft_tiles_corrected"), 1u);
    EXPECT_GE(get("abft_retries"), 1u);
}

TEST(FaultPolicyTest, MultiBitUpsetsDetectedAndCorrected)
{
    const FaultRun run = runWithFault(FaultSite::Accumulator,
                                      FaultModel::BitFlip, 404, 3,
                                      KernelMode::Fast,
                                      FaultPolicy::DetectRetry,
                                      /*max_faults=*/3, /*bits=*/3);
    ASSERT_EQ(run.c, Operands::instance().golden);
    EXPECT_GE(run.abft.tiles_flagged, 1u);
    EXPECT_EQ(run.abft.tiles_uncorrected, 0u);
}

// ---------------------------------------------------------------------
// Campaign smoke: the sweep engine agrees with the single-run contracts
// ---------------------------------------------------------------------

TEST(FaultCampaignTest, SmallCampaignMeetsCoverageContract)
{
    CampaignConfig config;
    config.m = 24;
    config.n = 20;
    config.k = 48;
    config.runs_per_cell = 3;
    config.sites = {FaultSite::Accumulator};
    config.policies = {FaultPolicy::Detect, FaultPolicy::DetectRetry};
    const CampaignResult result = runFaultCampaign(config);

    ASSERT_EQ(result.cells.size(), 2u);
    EXPECT_TRUE(result.clean_runs_identical);
    EXPECT_GT(result.clean_detect_secs, 0.0);
    for (const CampaignCell &cell : result.cells) {
        // Single-bit accumulator flips: every corrupting fault detected.
        EXPECT_EQ(cell.escaped_runs, 0u);
        EXPECT_EQ(cell.detected_runs, cell.runs);
        if (cell.policy == FaultPolicy::DetectRetry) {
            EXPECT_EQ(cell.corrected_runs, cell.runs);
            EXPECT_EQ(cell.corrupted_runs, 0u);
            EXPECT_DOUBLE_EQ(cell.min_accuracy, 1.0);
        } else {
            EXPECT_EQ(cell.corrupted_runs, cell.runs);
        }
    }
    // The artifact parses as non-empty JSON-looking text with the two
    // cells present (full JSON validation lives in the CI workflow).
    const std::string json = result.toJson();
    EXPECT_NE(json.find("\"detection_coverage\": 1"), std::string::npos);
    EXPECT_NE(json.find("detect_retry"), std::string::npos);
}

TEST(FaultCampaignTest, CampaignIsSeedReproducible)
{
    CampaignConfig config;
    config.m = 16;
    config.n = 12;
    config.k = 32;
    config.runs_per_cell = 2;
    config.threads = 3;
    config.sites = {FaultSite::Accumulator, FaultSite::PackedB};
    config.policies = {FaultPolicy::Off, FaultPolicy::Detect};
    const CampaignResult one = runFaultCampaign(config);
    config.threads = 1;
    const CampaignResult two = runFaultCampaign(config);
    ASSERT_EQ(one.cells.size(), two.cells.size());
    for (size_t i = 0; i < one.cells.size(); ++i) {
        EXPECT_EQ(one.cells[i].corrupted_runs, two.cells[i].corrupted_runs);
        EXPECT_EQ(one.cells[i].detected_runs, two.cells[i].detected_runs);
        EXPECT_EQ(one.cells[i].faults_injected,
                  two.cells[i].faults_injected);
        EXPECT_DOUBLE_EQ(one.cells[i].mean_accuracy,
                         two.cells[i].mean_accuracy);
    }
}

} // namespace
} // namespace mixgemm
