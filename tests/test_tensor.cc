/**
 * @file
 * Unit tests for src/tensor: the dense tensor container, im2row conv
 * lowering against direct convolution (including strides, padding, and
 * grouped/depthwise layers), and the compressed μ-vector matrix formats.
 */

#include <gtest/gtest.h>

#include "bs/microvector.h"
#include "common/logging.h"
#include "common/random.h"
#include "gemm/mixgemm.h"
#include "tensor/conv.h"
#include "tensor/packing.h"
#include "tensor/tensor.h"

namespace mixgemm
{
namespace
{

Tensor<double>
randomTensor(std::vector<size_t> shape, Rng &rng)
{
    Tensor<double> t(std::move(shape));
    for (auto &v : t.flat())
        v = rng.normal();
    return t;
}

/** Reference GEMM: C = A * B on doubles. */
Tensor<double>
matmul(const Tensor<double> &a, const Tensor<double> &b)
{
    const size_t m = a.dim(0);
    const size_t k = a.dim(1);
    const size_t n = b.dim(1);
    Tensor<double> c({m, n});
    for (size_t i = 0; i < m; ++i)
        for (size_t l = 0; l < k; ++l)
            for (size_t j = 0; j < n; ++j)
                c.at(i, j) += a.at(i, l) * b.at(l, j);
    return c;
}

TEST(Tensor, ShapeAndAccess)
{
    Tensor<double> t({2, 3});
    EXPECT_EQ(t.size(), 6u);
    EXPECT_EQ(t.rank(), 2u);
    t.at(1, 2) = 5.0;
    EXPECT_DOUBLE_EQ(t[5], 5.0);
    Tensor<int> u({2, 2, 2, 2});
    u.at(1, 1, 1, 1) = 9;
    EXPECT_EQ(u[15], 9);
    EXPECT_THROW(Tensor<double>(std::vector<size_t>{}), FatalError);
    EXPECT_THROW(Tensor<double>({2}, {1.0}), FatalError);
}

TEST(ConvSpec, OutputDimsAndMacs)
{
    ConvSpec s;
    s.in_c = 3;
    s.in_h = s.in_w = 224;
    s.out_c = 64;
    s.kh = s.kw = 7;
    s.stride = 2;
    s.pad = 3;
    EXPECT_EQ(s.outH(), 112u);
    EXPECT_EQ(s.outW(), 112u);
    EXPECT_EQ(s.gemmM(), 112u * 112u);
    EXPECT_EQ(s.gemmK(), 3u * 49u);
    EXPECT_EQ(s.gemmN(), 64u);
    EXPECT_EQ(s.macs(), uint64_t{112} * 112 * 147 * 64);
}

TEST(ConvSpec, ValidationErrors)
{
    ConvSpec s;
    s.in_c = 3;
    s.groups = 2;
    EXPECT_THROW(s.validate(), FatalError);
    s = ConvSpec{};
    s.kh = 5;
    s.in_h = 3;
    EXPECT_THROW(s.validate(), FatalError);
    s = ConvSpec{};
    s.stride = 0;
    EXPECT_THROW(s.validate(), FatalError);
}

struct ConvCase
{
    ConvSpec spec;
    const char *label;
};

class ConvLoweringTest : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvLoweringTest, Im2rowGemmMatchesDirectConv)
{
    const ConvSpec spec = GetParam().spec;
    Rng rng(123);
    const unsigned cg = spec.in_c / spec.groups;
    const auto input = randomTensor({1, spec.in_c, spec.in_h, spec.in_w},
                                    rng);
    const auto weights =
        randomTensor({spec.out_c, cg, spec.kh, spec.kw}, rng);
    const auto expected = directConv(input, weights, spec);

    Tensor<double> actual({1, spec.out_c, spec.outH(), spec.outW()});
    for (unsigned g = 0; g < spec.groups; ++g) {
        const auto a = im2row(input, spec, g);
        const auto b = weightsToGemmB(weights, spec, g);
        EXPECT_EQ(a.dim(0), spec.gemmM());
        EXPECT_EQ(a.dim(1), spec.gemmK());
        EXPECT_EQ(b.dim(0), spec.gemmK());
        EXPECT_EQ(b.dim(1), spec.gemmN());
        gemmOutputToConv(matmul(a, b), spec, g, actual);
    }
    for (size_t i = 0; i < expected.size(); ++i)
        ASSERT_NEAR(actual[i], expected[i], 1e-9) << "element " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvLoweringTest,
    ::testing::Values(
        ConvCase{{3, 8, 8, 4, 3, 3, 1, 1, 1}, "basic3x3"},
        ConvCase{{3, 9, 9, 8, 3, 3, 2, 1, 1}, "stride2"},
        ConvCase{{4, 7, 7, 6, 1, 1, 1, 0, 1}, "pointwise"},
        ConvCase{{8, 6, 6, 8, 3, 3, 1, 1, 8}, "depthwise"},
        ConvCase{{4, 10, 10, 8, 5, 5, 2, 2, 2}, "grouped5x5"},
        ConvCase{{1, 5, 5, 3, 5, 5, 1, 0, 1}, "fullframe"}),
    [](const auto &info) { return info.param.label; });

TEST(Packing, GroupCount)
{
    const auto g = computeBsGeometry({8, 8, true, true});
    ASSERT_EQ(g.group_extent, 32u);
    EXPECT_EQ(kGroupCount(1, g), 1u);
    EXPECT_EQ(kGroupCount(32, g), 1u);
    EXPECT_EQ(kGroupCount(33, g), 2u);
    EXPECT_EQ(kGroupCount(64, g), 2u);
}

class PackingConfigTest
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(PackingConfigTest, RoundTripsThroughWords)
{
    const auto [bwa, bwb] = GetParam();
    const auto g = computeBsGeometry({bwa, bwb, true, true});
    Rng rng(50 + bwa * 8 + bwb);
    const uint64_t m = 5;
    const uint64_t k = g.group_extent * 2 + 7; // force padded tail group
    const uint64_t n = 4;

    std::vector<int32_t> a(m * k);
    std::vector<int32_t> b(k * n);
    for (auto &v : a)
        v = static_cast<int32_t>(
            rng.uniformInt(-(1 << (bwa - 1)), (1 << (bwa - 1)) - 1));
    for (auto &v : b)
        v = static_cast<int32_t>(
            rng.uniformInt(-(1 << (bwb - 1)), (1 << (bwb - 1)) - 1));

    const CompressedA ca(a, m, k, g);
    const CompressedB cb(b, k, n, g);
    EXPECT_EQ(ca.kGroups(), kGroupCount(k, g));
    EXPECT_EQ(cb.kGroups(), kGroupCount(k, g));

    // Decode every element back out of the μ-vector words.
    for (uint64_t row = 0; row < m; ++row) {
        for (uint64_t kk = 0; kk < k; ++kk) {
            const unsigned grp =
                static_cast<unsigned>(kk / g.group_extent);
            const unsigned off =
                static_cast<unsigned>(kk % g.group_extent);
            const unsigned w = off / g.elems_per_avec;
            const unsigned e = off % g.elems_per_avec;
            ASSERT_EQ(microVectorElement(ca.word(row, grp, w), bwa, true,
                                         e),
                      a[row * k + kk])
                << "A row " << row << " k " << kk;
        }
    }
    for (uint64_t col = 0; col < n; ++col) {
        for (uint64_t kk = 0; kk < k; ++kk) {
            const unsigned grp =
                static_cast<unsigned>(kk / g.group_extent);
            const unsigned off =
                static_cast<unsigned>(kk % g.group_extent);
            const unsigned w = off / g.elems_per_bvec;
            const unsigned e = off % g.elems_per_bvec;
            ASSERT_EQ(microVectorElement(cb.word(col, grp, w), bwb, true,
                                         e),
                      b[kk * n + col])
                << "B col " << col << " k " << kk;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PackingConfigTest,
    ::testing::Values(std::pair<unsigned, unsigned>{8, 8},
                      std::pair<unsigned, unsigned>{8, 6},
                      std::pair<unsigned, unsigned>{6, 4},
                      std::pair<unsigned, unsigned>{8, 2},
                      std::pair<unsigned, unsigned>{3, 7},
                      std::pair<unsigned, unsigned>{2, 2}),
    [](const auto &info) {
        return strCat("a", info.param.first, "_w", info.param.second);
    });

TEST(Packing, PaddingEncodesIntegerCodeZeroForSignedGeometries)
{
    // Partial accumulation groups are padded with the integer *code* 0
    // (raw zero bits), never a quantized zero-point. For signed
    // geometries a nonzero code would decode to a nonzero value and
    // corrupt every GEMM over a k that is not a multiple of the group
    // extent; the asymmetric-quantization runtime also relies on code-0
    // padding (its rank-1 zero-point correction covers exactly k
    // terms — see test_qlinear.cc for the end-to-end proof).
    for (const bool is_signed : {true, false}) {
        for (const auto &[bwa, bwb] :
             {std::pair<unsigned, unsigned>{8, 8},
              std::pair<unsigned, unsigned>{8, 6},
              std::pair<unsigned, unsigned>{3, 5}}) {
            const auto g =
                computeBsGeometry({bwa, bwb, is_signed, is_signed});
            const uint64_t k = g.group_extent + 3; // padded tail group
            const uint64_t m = 2, n = 2;
            // All-(-1) signed (or all-max unsigned) data makes any
            // padding bit pattern that leaks into real positions
            // visible.
            const int32_t fill_a = is_signed ? -1 : (1 << bwa) - 1;
            const int32_t fill_b = is_signed ? -1 : (1 << bwb) - 1;
            const std::vector<int32_t> a(m * k, fill_a);
            const std::vector<int32_t> b(k * n, fill_b);
            const CompressedA ca(a, m, k, g);
            const CompressedB cb(b, k, n, g);

            // Every padded position of the tail group decodes to 0.
            const unsigned tail = ca.kGroups() - 1;
            for (uint64_t row = 0; row < m; ++row)
                for (unsigned off = 3; off < g.group_extent; ++off) {
                    const unsigned w = off / g.elems_per_avec;
                    const unsigned e = off % g.elems_per_avec;
                    ASSERT_EQ(microVectorElement(ca.word(row, tail, w),
                                                 bwa, is_signed, e),
                              0)
                        << "a" << bwa << (is_signed ? "s" : "u")
                        << " row " << row << " off " << off;
                }
            for (uint64_t col = 0; col < n; ++col)
                for (unsigned off = 3; off < g.group_extent; ++off) {
                    const unsigned w = off / g.elems_per_bvec;
                    const unsigned e = off % g.elems_per_bvec;
                    ASSERT_EQ(microVectorElement(cb.word(col, tail, w),
                                                 bwb, is_signed, e),
                              0)
                        << "w" << bwb << (is_signed ? "s" : "u")
                        << " col " << col << " off " << off;
                }
        }
    }
}

TEST(Packing, PaddedTailContributesNothingToGemm)
{
    // The padded positions multiply to exact zeros: a GEMM over
    // k = extent + 3 equals the first-group product plus only the three
    // real tail elements, for signed data where any sign-extension slip
    // in the padding would show up immediately.
    Rng rng(606);
    const auto g = computeBsGeometry({8, 8, true, true});
    const uint64_t extent = g.group_extent;
    const uint64_t k = extent + 3;
    const uint64_t m = 5, n = 6;
    std::vector<int32_t> a(m * k);
    std::vector<int32_t> b(k * n);
    for (auto &v : a)
        v = static_cast<int32_t>(rng.uniformInt(-128, 127));
    for (auto &v : b)
        v = static_cast<int32_t>(rng.uniformInt(-128, 127));
    std::vector<int64_t> expected(m * n, 0);
    for (uint64_t i = 0; i < m; ++i)
        for (uint64_t l = 0; l < k; ++l)
            for (uint64_t j = 0; j < n; ++j)
                expected[i * n + j] +=
                    int64_t{a[i * k + l]} * b[l * n + j];
    const CompressedA ca(a, m, k, g);
    const CompressedB cb(b, k, n, g);
    const auto mix = mixGemm(ca, cb);
    EXPECT_EQ(mix.c, expected);
}

TEST(Packing, CompressionRatioVsDouble)
{
    // Section IV-B: compressed operands shrink the problem size 8x to
    // 32x relative to 64-bit DGEMM elements.
    for (const unsigned bw : {8u, 4u, 2u}) {
        const auto g = computeBsGeometry({bw, bw, true, true});
        const uint64_t k = g.group_extent * 4; // no tail padding
        const std::vector<int32_t> a(16 * k, 1);
        const CompressedA ca(a, 16, k, g);
        const double dgemm_bytes = 16.0 * k * 8.0;
        const double ratio = dgemm_bytes / ca.bytes();
        EXPECT_NEAR(ratio, 64.0 / bw, 64.0 / bw * 0.01) << "bw=" << bw;
    }
}

TEST(Packing, PaddingOverheadSmall)
{
    // a8-w6: kua*8 = 32 vs kub*10 = 30 -> A carries 2 padded elements
    // per 30-element group.
    const auto g = computeBsGeometry({8, 6, true, true});
    const uint64_t k = g.group_extent * 10;
    const std::vector<int32_t> a(4 * k, 1);
    const CompressedA ca(a, 4, k, g);
    const double overhead =
        static_cast<double>(ca.bytes()) / ca.idealBytes() - 1.0;
    EXPECT_NEAR(overhead, 32.0 / 30.0 - 1.0, 1e-9);
}

TEST(Packing, RejectsBadShapes)
{
    const auto g = computeBsGeometry({8, 8, true, true});
    const std::vector<int32_t> data(10, 0);
    EXPECT_THROW(CompressedA(data, 2, 4, g), FatalError);
    EXPECT_THROW(CompressedA(data, 0, 10, g), FatalError);
    EXPECT_THROW(CompressedB(data, 4, 2, g), FatalError);
}

} // namespace
} // namespace mixgemm
