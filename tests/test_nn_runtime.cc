/**
 * @file
 * Tests for src/nn and src/runtime: dataset determinism, numerical
 * gradient checks on the layers, full FP32 and QAT training runs on the
 * synthetic dataset (accuracy thresholds + bitwidth trend), and the
 * deployment path: exported quantized graphs must produce identical
 * results through the naive and Mix-GEMM backends — the Fig. 3
 * workflow end to end.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "nn/dataset.h"
#include "nn/qat.h"
#include "runtime/backend.h"
#include "runtime/qgraph.h"

namespace mixgemm
{
namespace
{

TEST(PatternDataset, DeterministicAndBalanced)
{
    PatternDataset a(64, 5);
    PatternDataset b(64, 5);
    ASSERT_EQ(a.size(), 64u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.samples()[i].label, b.samples()[i].label);
        for (size_t j = 0; j < a.samples()[i].image.size(); ++j)
            ASSERT_DOUBLE_EQ(a.samples()[i].image[j],
                             b.samples()[i].image[j]);
    }
    unsigned counts[PatternDataset::kNumClasses] = {};
    for (const auto &s : a.samples())
        counts[s.label]++;
    for (const unsigned c : counts)
        EXPECT_EQ(c, 64u / PatternDataset::kNumClasses);
}

TEST(PatternDataset, ValuesInUnitRange)
{
    PatternDataset d(32, 9);
    for (const auto &s : d.samples())
        for (const double v : s.image.flat()) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
}

TEST(PatternDataset, DifferentSeedsDiffer)
{
    PatternDataset a(16, 1);
    PatternDataset b(16, 2);
    double diff = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        for (size_t j = 0; j < a.samples()[i].image.size(); ++j)
            diff += std::abs(a.samples()[i].image[j] -
                             b.samples()[i].image[j]);
    EXPECT_GT(diff, 1.0);
}

/** Numerical check of dL/dx for a layer, L = sum(w_proj * output). */
template <typename LayerT>
void
checkInputGradient(LayerT &layer, Tensor<double> x, double tol)
{
    Rng rng(99);
    auto out = layer.forward(x, false);
    Tensor<double> proj(out.shape());
    for (auto &v : proj.flat())
        v = rng.uniformReal(-1.0, 1.0);
    const auto analytic = layer.backward(proj);

    const double eps = 1e-5;
    for (size_t i = 0; i < x.size(); i += std::max<size_t>(1,
                                                           x.size() / 7)) {
        Tensor<double> xp = x;
        xp[i] += eps;
        const auto op = layer.forward(xp, false);
        Tensor<double> xm = x;
        xm[i] -= eps;
        const auto om = layer.forward(xm, false);
        double lp = 0.0;
        double lm = 0.0;
        for (size_t j = 0; j < op.size(); ++j) {
            lp += proj[j] * op[j];
            lm += proj[j] * om[j];
        }
        const double numeric = (lp - lm) / (2 * eps);
        EXPECT_NEAR(analytic[i], numeric, tol) << "input " << i;
    }
}

TEST(Layers, Conv2dInputGradient)
{
    Rng rng(3);
    Conv2d conv(2, 3, 3, 1, QatConfig{}, rng);
    Tensor<double> x({1, 2, 5, 5});
    for (auto &v : x.flat())
        v = rng.normal();
    checkInputGradient(conv, x, 1e-6);
}

TEST(Layers, LinearInputGradient)
{
    Rng rng(4);
    Linear fc(10, 4, QatConfig{}, rng);
    Tensor<double> x({1, 10});
    for (auto &v : x.flat())
        v = rng.normal();
    checkInputGradient(fc, x, 1e-6);
}

TEST(Layers, ReluAndPoolGradients)
{
    Relu relu;
    Tensor<double> x({1, 1, 2, 2}, {1.0, -2.0, 0.5, -0.1});
    const auto out = relu.forward(x, false);
    EXPECT_DOUBLE_EQ(out[1], 0.0);
    Tensor<double> g({1, 1, 2, 2}, {1.0, 1.0, 1.0, 1.0});
    const auto dx = relu.backward(g);
    EXPECT_DOUBLE_EQ(dx[0], 1.0);
    EXPECT_DOUBLE_EQ(dx[1], 0.0);

    MaxPool2 pool;
    Tensor<double> p({1, 1, 2, 2}, {4.0, 1.0, 2.0, 3.0});
    const auto pooled = pool.forward(p, false);
    ASSERT_EQ(pooled.size(), 1u);
    EXPECT_DOUBLE_EQ(pooled[0], 4.0);
    Tensor<double> pg({1, 1, 1, 1}, {2.5});
    const auto pdx = pool.backward(pg);
    EXPECT_DOUBLE_EQ(pdx[0], 2.5);
    EXPECT_DOUBLE_EQ(pdx[1], 0.0);
}

TEST(Layers, FakeQuantSteps)
{
    FakeQuant fq(3, false); // signed 3-bit: q in [-4, 3]
    Tensor<double> x({1, 4}, {1.0, 0.26, -1.0, 0.0});
    fq.apply(x, false);
    // absmax 1.0 -> scale 1/3; values snap to multiples of 1/3.
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(x[2], -1.0, 1e-12);
    EXPECT_NEAR(x[3], 0.0, 1e-12);
    EXPECT_THROW(FakeQuant(1, false), FatalError);
}

TEST(Qat, SoftmaxCrossEntropyGradient)
{
    Tensor<double> logits({1, 4}, {2.0, 1.0, 0.5, -1.0});
    double loss = 0.0;
    const auto grad = softmaxCrossEntropyGrad(logits, 1, loss);
    EXPECT_GT(loss, 0.0);
    double sum = 0.0;
    for (const double g : grad.flat())
        sum += g;
    EXPECT_NEAR(sum, 0.0, 1e-12);
    EXPECT_LT(grad[1], 0.0) << "true-class gradient is negative";
    EXPECT_THROW(softmaxCrossEntropyGrad(logits, 9, loss), FatalError);
}

/** Shared trained networks (training is the slow part; do it once). */
struct Trained
{
    double fp32_acc;
    double q8_acc;
    double q4_acc;
    double q2_acc;
    Network q4_net;
    PatternDataset test{160, 777};

    Trained()
    {
        const PatternDataset train_data(480, 123);
        TrainConfig tc;

        Network fp = makeSmallCnn(QatConfig{false, 8, 8});
        train(fp, train_data, tc);
        fp32_acc = evaluate(fp, test);

        Network q8 = makeSmallCnn(QatConfig{true, 8, 8});
        train(q8, train_data, tc);
        q8_acc = evaluate(q8, test);

        q4_net = makeSmallCnn(QatConfig{true, 4, 4});
        train(q4_net, train_data, tc);
        q4_acc = evaluate(q4_net, test);

        // Paper methodology: 2-bit configurations retrain from a
        // higher-precision checkpoint at a reduced learning rate.
        Network q2 = makeSmallCnn(QatConfig{true, 2, 2});
        copyParameters(q4_net, q2);
        TrainConfig warm = tc;
        warm.lr = tc.lr / 3;
        train(q2, train_data, warm);
        q2_acc = evaluate(q2, test);
    }
};

Trained &
trained()
{
    static Trained t;
    return t;
}

TEST(Qat, Fp32TrainingLearnsTheTask)
{
    EXPECT_GT(trained().fp32_acc, 0.85);
}

TEST(Qat, EightBitQatMatchesFp32Closely)
{
    EXPECT_GT(trained().q8_acc, trained().fp32_acc - 0.06);
}

TEST(Qat, FourBitStillLearns)
{
    EXPECT_GT(trained().q4_acc, 0.70);
}

TEST(Qat, TwoBitDegradesButBeatsChance)
{
    EXPECT_GT(trained().q2_acc, 1.5 / PatternDataset::kNumClasses);
    EXPECT_LT(trained().q2_acc, trained().q8_acc + 0.02);
}

TEST(Runtime, ExportRequiresQat)
{
    Network fp = makeSmallCnn(QatConfig{false, 8, 8});
    EXPECT_THROW(QuantizedGraph::fromNetwork(fp), FatalError);
}

TEST(Runtime, BackendsProduceIdenticalLogits)
{
    const auto graph = QuantizedGraph::fromNetwork(trained().q4_net);
    NaiveBackend naive;
    MixGemmBackend mix;
    const PatternDataset probe(24, 31415);
    for (const auto &s : probe.samples()) {
        const auto l_naive = graph.run(s.image, naive);
        const auto l_mix = graph.run(s.image, mix);
        ASSERT_EQ(l_naive.size(), l_mix.size());
        for (size_t i = 0; i < l_naive.size(); ++i)
            ASSERT_DOUBLE_EQ(l_naive[i], l_mix[i]);
    }
    EXPECT_GT(mix.totalBsIp(), 0u);
}

TEST(Runtime, DeployedAccuracyTracksQatAccuracy)
{
    const auto graph = QuantizedGraph::fromNetwork(trained().q4_net);
    MixGemmBackend mix;
    const double deployed = graph.evaluate(trained().test, mix);
    EXPECT_NEAR(deployed, trained().q4_acc, 0.08);
}

TEST(Runtime, UnsignedActivationDeploymentEndToEnd)
{
    // Post-ReLU activations are non-negative, so unsigned activation
    // quantization earns one effective bit; the μ-engine's Control
    // Unit supports per-operand signedness, which the deployment path
    // selects here (unsigned A x signed W configurations).
    const PatternDataset train_set(480, 123);
    const PatternDataset test_set(160, 777);
    TrainConfig tc;

    QatConfig ucfg{true, 3, 3, true};
    Network unsigned_net = makeSmallCnn(ucfg);
    train(unsigned_net, train_set, tc);
    const double unsigned_acc = evaluate(unsigned_net, test_set);

    QatConfig scfg{true, 3, 3, false};
    Network signed_net = makeSmallCnn(scfg);
    train(signed_net, train_set, tc);
    const double signed_acc = evaluate(signed_net, test_set);

    // The extra effective bit must not hurt; at 3 bits it typically
    // helps substantially on ReLU networks.
    EXPECT_GE(unsigned_acc, signed_acc - 0.03);

    const auto graph = QuantizedGraph::fromNetwork(unsigned_net);
    EXPECT_FALSE(graph.nodes()[0].a_params.is_signed);
    EXPECT_TRUE(graph.nodes()[0].w_params.is_signed);
    NaiveBackend naive;
    MixGemmBackend mix;
    for (size_t i = 0; i < 16; ++i) {
        const auto &img = test_set.samples()[i].image;
        const auto ln = graph.run(img, naive);
        const auto lm = graph.run(img, mix);
        for (size_t j = 0; j < ln.size(); ++j)
            ASSERT_DOUBLE_EQ(ln[j], lm[j]);
    }
    const double deployed = graph.evaluate(test_set, mix);
    EXPECT_NEAR(deployed, unsigned_acc, 0.08);
}

TEST(Runtime, GraphStructureMatchesNetwork)
{
    const auto graph = QuantizedGraph::fromNetwork(trained().q4_net);
    ASSERT_EQ(graph.nodes().size(), 8u);
    EXPECT_EQ(graph.nodes()[0].kind, QNode::Kind::kConv);
    EXPECT_EQ(graph.nodes()[7].kind, QNode::Kind::kLinear);
    EXPECT_EQ(graph.nodes()[0].a_params.bits, 4u);
    EXPECT_GT(graph.nodes()[0].a_params.scale, 0.0);
}

} // namespace
} // namespace mixgemm
