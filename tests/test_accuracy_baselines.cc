/**
 * @file
 * Tests for src/accuracy and src/baselines: the synthesized QAT grids
 * must satisfy every quantitative statement of Section IV, the Pareto
 * extraction must be correct, the Table III data must be structurally
 * complete, and the software baseline models must land on the paper's
 * measured values.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "accuracy/pareto.h"
#include "accuracy/qat_database.h"
#include "baselines/related_work.h"
#include "baselines/software_baselines.h"
#include "common/logging.h"
#include "dnn/models.h"

namespace mixgemm
{
namespace
{

TEST(AccuracyDatabase, Fp32Baselines)
{
    const auto &db = AccuracyDatabase::paperQat();
    EXPECT_NEAR(db.fp32Top1("AlexNet"), 56.52, 0.01);
    EXPECT_NEAR(db.fp32Top1("ResNet-18"), 69.76, 0.01);
    EXPECT_NEAR(db.fp32Top1("EfficientNet-B0"), 77.10, 0.01);
    EXPECT_THROW(db.fp32Top1("LeNet"), FatalError);
}

TEST(AccuracyDatabase, AboveFourBitLossesBelow1Point5)
{
    // Section IV-B: configurations with both data sizes above 4-bit
    // lose at most 1.5 points.
    const auto &db = AccuracyDatabase::paperQat();
    for (const auto &model : db.models()) {
        const double fp32 = db.fp32Top1(model);
        for (unsigned a = 5; a <= 8; ++a) {
            for (unsigned w = 5; w <= 8; ++w) {
                const double t = db.top1(model, {a, w, true, true});
                EXPECT_GE(t, fp32 - 1.5)
                    << model << " a" << a << "-w" << w;
                EXPECT_LE(t, fp32 + 0.5);
            }
        }
    }
}

TEST(AccuracyDatabase, FourBitLossRange)
{
    // 4-bit minimum data size: losses from ~0 (AlexNet) to ~4.2
    // (EfficientNet-B0).
    const auto &db = AccuracyDatabase::paperQat();
    const double alex_loss =
        db.fp32Top1("AlexNet") - db.top1("AlexNet", {4, 4, true, true});
    EXPECT_LT(alex_loss, 0.5);
    const double eff_loss = db.fp32Top1("EfficientNet-B0") -
                            db.top1("EfficientNet-B0",
                                    {4, 4, true, true});
    EXPECT_NEAR(eff_loss, 4.2, 0.4);
}

struct LowBitCase
{
    const char *model;
    double min_loss;
    double max_loss;
};

class LowBitRangeTest : public ::testing::TestWithParam<LowBitCase>
{
};

TEST_P(LowBitRangeTest, ThreeTwoBitLossesMatchPaperRanges)
{
    const auto p = GetParam();
    const auto &db = AccuracyDatabase::paperQat();
    const double fp32 = db.fp32Top1(p.model);
    double lo = 1e9;
    double hi = -1e9;
    for (const auto &e : db.grid(p.model)) {
        const unsigned mn = std::min(e.config.bwa, e.config.bwb);
        if (mn > 3)
            continue;
        const double loss = fp32 - e.top1;
        lo = std::min(lo, loss);
        hi = std::max(hi, loss);
    }
    EXPECT_NEAR(lo, p.min_loss, std::max(0.6, p.min_loss * 0.5));
    EXPECT_NEAR(hi, p.max_loss, std::max(0.8, p.max_loss * 0.12));
}

INSTANTIATE_TEST_SUITE_P(
    PaperRanges, LowBitRangeTest,
    ::testing::Values(LowBitCase{"AlexNet", 0.5, 5.1},
                      LowBitCase{"VGG-16", 1.2, 6.5},
                      LowBitCase{"ResNet-18", 2.2, 8.6},
                      LowBitCase{"MobileNet-V1", 7.6, 34.5},
                      LowBitCase{"RegNet-X-400MF", 2.6, 13.0},
                      LowBitCase{"EfficientNet-B0", 10.3, 32.8}),
    [](const auto &info) {
        std::string n = info.param.model;
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(AccuracyDatabase, MonotoneInBitwidthOnDiagonal)
{
    const auto &db = AccuracyDatabase::paperQat();
    for (const auto &model : db.models()) {
        double prev = -1e9;
        for (unsigned b = 2; b <= 8; ++b) {
            const double t = db.top1(model, {b, b, true, true});
            EXPECT_GE(t, prev - 0.2) << model << " bits " << b;
            prev = t;
        }
    }
}

TEST(AccuracyDatabase, GridIsComplete)
{
    const auto &db = AccuracyDatabase::paperQat();
    EXPECT_EQ(db.grid("VGG-16").size(), 49u);
    EXPECT_EQ(db.models().size(), 6u);
}

TEST(Pareto, FrontierExtraction)
{
    const std::vector<ParetoPoint> pts{
        {1.0, 90.0}, // frontier (most accurate)
        {2.0, 85.0}, // frontier
        {1.5, 80.0}, // dominated by (2, 85)
        {3.0, 70.0}, // frontier (fastest)
        {2.5, 70.0}, // dominated by (3, 70)
    };
    const auto f = paretoFrontier(pts);
    EXPECT_EQ(f, (std::vector<size_t>{0, 1, 3}));
}

TEST(Pareto, Dominance)
{
    EXPECT_TRUE(dominates({2, 90}, {1, 90}));
    EXPECT_TRUE(dominates({2, 90}, {2, 80}));
    EXPECT_FALSE(dominates({2, 90}, {2, 90}));
    EXPECT_FALSE(dominates({1, 95}, {2, 90}));
}

TEST(Pareto, SinglePointIsFrontier)
{
    const std::vector<ParetoPoint> pts{{1.0, 1.0}};
    EXPECT_EQ(paretoFrontier(pts).size(), 1u);
}

TEST(RelatedWork, TableStructure)
{
    const auto rows = relatedWorkTable();
    ASSERT_EQ(rows.size(), 11u);
    EXPECT_EQ(rows[0].citation, "Baseline");
    // Mixed-precision flags as printed in Table III.
    unsigned mixed = 0;
    for (const auto &r : rows)
        mixed += r.mixed_precision;
    EXPECT_EQ(mixed, 3u); // CMix-NN, Bruschi, Ottavi
    // Eyeriss/UNPU publish areas at 65 nm.
    EXPECT_EQ(rows[9].tech_nm, 65);
    EXPECT_EQ(rows[10].tech_nm, 65);
    EXPECT_NEAR(rows[9].area_mm2, 12.25, 1e-9);
}

TEST(RelatedWork, LookupAndRanges)
{
    const auto rows = relatedWorkTable();
    const auto *gemmlowp = rows[1].result("AlexNet");
    ASSERT_NE(gemmlowp, nullptr);
    EXPECT_NEAR(gemmlowp->perf_gops.lo, 5.6, 1e-9);
    EXPECT_EQ(rows[1].result("Convolution"), nullptr);
    PubRange r{1.0, 3.0};
    EXPECT_EQ(r.toString(), "1.0-3.0");
    PubRange single{2.5, 2.5};
    EXPECT_EQ(single.toString(), "2.5");
    PubRange absent;
    EXPECT_EQ(absent.toString(), "-");
}

TEST(RelatedWork, ConvolutionBenchmarkShape)
{
    const auto conv = tableIIIConvolution();
    EXPECT_EQ(conv.gemmM(), 256u);       // 16 x 16 output pixels
    EXPECT_EQ(conv.gemmK(), 32u * 9u);   // 3x3x32 receptive field
    EXPECT_EQ(conv.gemmN(), 64u);
}

TEST(SoftwareBaselines, OpenblasLandsOnPaperValue)
{
    // Fig. 7 / Table III: ~0.9 GOPS on all six CNNs.
    const auto &model = openblasFp32U740();
    for (const auto &net : allModels()) {
        const double gops = model.networkGops(net);
        EXPECT_GT(gops, 0.6) << net.name;
        EXPECT_LT(gops, 1.2) << net.name;
    }
}

TEST(SoftwareBaselines, GemmlowpLandsOnPaperBand)
{
    // Table III row [33]: 4.7 to 5.8 GOPS across the six CNNs.
    const auto &model = gemmlowpA53();
    for (const auto &net : allModels()) {
        const double gops = model.networkGops(net);
        EXPECT_GT(gops, 3.6) << net.name;
        EXPECT_LT(gops, 6.8) << net.name;
    }
}

TEST(SoftwareBaselines, UtilizationDropsForSmallGemms)
{
    const auto &model = gemmlowpA53();
    EXPECT_LT(model.macsPerCycle(1000, 1, 9),
              model.macsPerCycle(1000, 256, 1024) / 4);
    EXPECT_THROW(SoftwareBaselineModel(0.0, 1, 1, 1), FatalError);
}

} // namespace
} // namespace mixgemm
