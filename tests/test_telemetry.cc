/**
 * @file
 * Tests for src/telemetry: registry exposition semantics, the embedded
 * HTTP exporter, flight-recorder rings/triggers, request-context
 * stamping of RunReports, and the plane's two determinism contracts —
 * telemetry-off runs bitwise identical to no-hooks runs across thread
 * counts and kernel modes, and same-seed VirtualClock soaks rendering
 * byte-identical /metrics snapshots and postmortem bundles.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "bs/geometry.h"
#include "common/jsonlite.h"
#include "common/logging.h"
#include "common/random.h"
#include "gemm/mixgemm.h"
#include "runtime/backend.h"
#include "serve/soak.h"
#include "telemetry/exporter.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/registry.h"
#include "telemetry/serve_telemetry.h"
#include "trace/session.h"

namespace mixgemm
{
namespace
{

std::vector<int32_t>
randomNarrowMatrix(Rng &rng, uint64_t elems, unsigned bw, bool is_signed)
{
    std::vector<int32_t> data(elems);
    const int64_t lo = is_signed ? -(int64_t{1} << (bw - 1)) : 0;
    const int64_t hi = is_signed ? (int64_t{1} << (bw - 1)) - 1
                                 : (int64_t{1} << bw) - 1;
    for (auto &v : data)
        v = static_cast<int32_t>(rng.uniformInt(lo, hi));
    return data;
}

// ---------------------------------------------------------------------
// Registry + exposition
// ---------------------------------------------------------------------

TEST(Registry, RendersAllThreeKindsWithLabels)
{
    MetricsRegistry registry;
    registry.counter("requests_total", "Requests served",
                     {{"tenant", "a"}})
        ->add(3);
    registry.counter("requests_total", "", {{"tenant", "b"}})->add(1);
    registry.gauge("queue_depth", "Admission queue depth")->set(2.5);
    HistogramMetric *latency =
        registry.histogram("latency_ns", "Total latency");
    latency->observe(100);
    latency->observe(1000);

    const std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("# HELP requests_total Requests served"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("requests_total{tenant=\"a\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("requests_total{tenant=\"b\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
    EXPECT_NE(text.find("queue_depth 2.5"), std::string::npos);
    EXPECT_NE(text.find("# TYPE latency_ns summary"),
              std::string::npos);
    EXPECT_NE(text.find("latency_ns{quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(text.find("latency_ns{quantile=\"0.99\"}"),
              std::string::npos);
    EXPECT_NE(text.find("latency_ns_count 2"), std::string::npos);
    // Identical state renders byte-identically.
    EXPECT_EQ(text, registry.renderPrometheus());
}

TEST(Registry, SanitizesNamesAndEscapesLabelValues)
{
    EXPECT_EQ(MetricsRegistry::sanitizeName("9bad-name!"),
              "_bad_name_");
    EXPECT_EQ(MetricsRegistry::sanitizeName("ok_name:v2"),
              "ok_name:v2");
    EXPECT_EQ(MetricsRegistry::sanitizeName(""), "_");

    MetricsRegistry registry;
    registry.counter("family", "", {{"path", "a\"b\\c\nd"}})->add(1);
    const std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("family{path=\"a\\\"b\\\\c\\nd\"} 1"),
              std::string::npos);
}

TEST(Registry, SameSeriesPointerIsReturnedAndStable)
{
    MetricsRegistry registry;
    CounterMetric *first =
        registry.counter("hits_total", "h", {{"k", "v"}});
    CounterMetric *again =
        registry.counter("hits_total", "", {{"k", "v"}});
    EXPECT_EQ(first, again);
    first->add(2);
    again->add(40);
    first->setMax(41); // below current value: no-op
    EXPECT_EQ(first->value(), 42u);
    first->setMax(50);
    EXPECT_EQ(first->value(), 50u);
}

TEST(Registry, CollectorsRunOnEveryRender)
{
    MetricsRegistry registry;
    GaugeMetric *gauge = registry.gauge("pulls", "");
    int pulls = 0;
    registry.addCollector([&] { gauge->set(++pulls); });
    registry.renderPrometheus();
    const std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("pulls 2"), std::string::npos);
}

TEST(Registry, VarzRendersValidJson)
{
    MetricsRegistry registry;
    registry.counter("a_total", "A", {{"x", "1"}})->add(7);
    registry.gauge("g", "G")->set(1.25);
    registry.histogram("h_ns", "H")->observe(42);
    const Expected<JsonValue> parsed = parseJson(registry.renderVarz());
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    ASSERT_TRUE(parsed->isObject());
    const JsonValue *a = parsed->find("a_total");
    ASSERT_NE(a, nullptr);
}

// ---------------------------------------------------------------------
// HTTP exporter
// ---------------------------------------------------------------------

/** One blocking HTTP exchange against 127.0.0.1:port. */
std::string
httpExchange(uint16_t port, const std::string &request)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n =
            ::send(fd, request.data() + sent, request.size() - sent, 0);
        if (n <= 0)
            break;
        sent += static_cast<size_t>(n);
    }
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        response.append(buf, static_cast<size_t>(n));
    ::close(fd);
    return response;
}

TEST(HttpExporter, ServesMetricsHealthzAndVarz)
{
    MetricsRegistry registry;
    registry.counter("scrapes_total", "Scrapes", {{"tenant", "t0"}})
        ->add(5);
    auto server = MetricsHttpServer::start(&registry, {});
    ASSERT_TRUE(server.ok()) << server.status().toString();
    const uint16_t port = (*server)->port();
    ASSERT_NE(port, 0);

    const std::string metrics = httpExchange(
        port, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_NE(metrics.find("200 OK"), std::string::npos);
    EXPECT_NE(metrics.find("text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_NE(metrics.find("scrapes_total{tenant=\"t0\"} 5"),
              std::string::npos);

    const std::string healthz = httpExchange(
        port, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_NE(healthz.find("200 OK"), std::string::npos);
    EXPECT_NE(healthz.find("ok"), std::string::npos);

    const std::string varz = httpExchange(
        port, "GET /varz HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_NE(varz.find("200 OK"), std::string::npos);
    const size_t body_at = varz.find("\r\n\r\n");
    ASSERT_NE(body_at, std::string::npos);
    const Expected<JsonValue> parsed =
        parseJson(varz.substr(body_at + 4));
    EXPECT_TRUE(parsed.ok()) << parsed.status().toString();

    EXPECT_NE(httpExchange(port,
                           "GET /nothing HTTP/1.1\r\nHost: x\r\n\r\n")
                  .find("404"),
              std::string::npos);
    EXPECT_NE(httpExchange(port,
                           "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                  .find("405"),
              std::string::npos);
    (*server)->stop();
}

TEST(HttpExporter, HealthzDegradesTo503WithJsonReason)
{
    MetricsRegistry registry;
    HttpExporterOptions options;
    std::atomic<bool> degraded{false};
    options.health = [&degraded] {
        HealthReport report;
        if (degraded.load()) {
            report.healthy = false;
            report.reason = "1 circuit breaker(s) open";
        }
        return report;
    };
    auto server = MetricsHttpServer::start(&registry,
                                           std::move(options));
    ASSERT_TRUE(server.ok()) << server.status().toString();
    const uint16_t port = (*server)->port();

    // Healthy callback: plain 200 "ok", exactly like no callback.
    std::string healthz = httpExchange(
        port, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_NE(healthz.find("200 OK"), std::string::npos);
    EXPECT_NE(healthz.find("ok"), std::string::npos);

    // Degraded: 503 takes the instance out of rotation, JSON body
    // names why.
    degraded = true;
    healthz = httpExchange(port,
                           "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_NE(healthz.find("503 Service Unavailable"),
              std::string::npos);
    EXPECT_NE(healthz.find("application/json"), std::string::npos);
    const size_t body_at = healthz.find("\r\n\r\n");
    ASSERT_NE(body_at, std::string::npos);
    const Expected<JsonValue> parsed =
        parseJson(healthz.substr(body_at + 4));
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_NE(healthz.find("\"healthy\":false"), std::string::npos);
    EXPECT_NE(healthz.find("circuit breaker"), std::string::npos);

    // Recovery flips it straight back to 200.
    degraded = false;
    healthz = httpExchange(port,
                           "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_NE(healthz.find("200 OK"), std::string::npos);
    (*server)->stop();
}

TEST(FileExporter, WritesExpositionAtomically)
{
    MetricsRegistry registry;
    registry.counter("writes_total", "")->add(9);
    const std::string path =
        strCat(::testing::TempDir(), "/telemetry_exposition.prom");
    MetricsFileExporter exporter(&registry, path);
    ASSERT_TRUE(exporter.writeOnce().ok());
    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("writes_total 9"), std::string::npos);
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

TEST(FlightRecorder, RingsAreBoundedAndDumpNowIgnoresCooldown)
{
    FlightRecorderOptions options;
    options.decision_ring = 4;
    FlightRecorder recorder(options);
    for (uint64_t i = 0; i < 10; ++i)
        recorder.recordDecision(i, strCat("#", i, " t=0 entry", i));
    recorder.dumpNow("test", "ring bound", 100);
    ASSERT_EQ(recorder.dumpCount(), 1u);
    const std::string bundle = recorder.bundles()[0];
    EXPECT_EQ(bundle.find("entry5"), std::string::npos);
    EXPECT_NE(bundle.find("entry6"), std::string::npos);
    EXPECT_NE(bundle.find("entry9"), std::string::npos);
    recorder.dumpNow("test", "again", 101); // inside cooldown, ignored
    EXPECT_EQ(recorder.dumpCount(), 2u);
}

RequestReport
terminalReport(uint64_t seq, const std::string &tenant, unsigned tier,
               uint64_t submit_ns, uint64_t done_ns)
{
    RequestReport report;
    report.seq = seq;
    report.tenant = tenant;
    report.tier = tier;
    report.submit_ns = submit_ns;
    report.start_ns = submit_ns + 1;
    report.done_ns = done_ns;
    return report;
}

TEST(FlightRecorder, DeadlineBurnRateTriggersOneDumpPerCooldown)
{
    FlightRecorderOptions options;
    options.slo_latency_ns = 10;
    options.max_miss_fraction = 0.5;
    options.min_window_samples = 4;
    options.slo_window_ns = 1'000'000'000;
    FlightRecorder recorder(options);
    // 4 samples, 3 of them 100 ns latency (miss): fraction 0.75 > 0.5.
    recorder.recordTerminal(terminalReport(0, "acme", 0, 0, 5),
                            StatusCode::kOk);
    for (uint64_t i = 1; i <= 3; ++i)
        recorder.recordTerminal(
            terminalReport(i, "acme", 0, i * 10, i * 10 + 100),
            StatusCode::kOk);
    ASSERT_EQ(recorder.dumpCount(), 1u);
    const std::string bundle = recorder.bundles()[0];
    EXPECT_NE(bundle.find("deadline_burn_rate"), std::string::npos);
    EXPECT_NE(bundle.find("tenant=acme"), std::string::npos);
    // Still burning, but inside the cooldown: no second dump.
    recorder.recordTerminal(terminalReport(4, "acme", 0, 50, 160),
                            StatusCode::kOk);
    EXPECT_EQ(recorder.dumpCount(), 1u);
    const auto status = recorder.tenantStatus();
    ASSERT_EQ(status.count("acme"), 1u);
    EXPECT_GT(status.at("acme").miss_fraction, 0.5);
}

TEST(FlightRecorder, PrecisionSloTriggersOnMeanRung)
{
    FlightRecorderOptions options;
    options.max_mean_rung = 1.0;
    options.min_window_samples = 2;
    FlightRecorder recorder(options);
    recorder.recordTerminal(terminalReport(0, "t", 2, 0, 5),
                            StatusCode::kOk);
    recorder.recordTerminal(terminalReport(1, "t", 2, 1, 6),
                            StatusCode::kOk);
    ASSERT_EQ(recorder.dumpCount(), 1u);
    EXPECT_NE(recorder.bundles()[0].find("precision_slo"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Request context stamping
// ---------------------------------------------------------------------

TEST(RequestContext, StampsRunReportsThroughBackend)
{
    TraceSession session;
    MixGemmBackend backend;
    backend.attachTraceSession(&session);
    backend.setTraceLabel("ctx-gemm");
    backend.setRequestContext({77, "acme", 2});
    Rng rng(3);
    const DataSizeConfig cfg{8, 8, true, true};
    const auto a = randomNarrowMatrix(rng, 12 * 16, 8, true);
    const auto b = randomNarrowMatrix(rng, 16 * 8, 8, true);
    backend.gemm(a, b, 12, 8, 16, cfg);
    backend.clearRequestContext();
    backend.gemm(a, b, 12, 8, 16, cfg);

    const auto reports = session.reports();
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(reports[0].tenant, "acme");
    EXPECT_EQ(reports[0].request_id, 77u);
    EXPECT_EQ(reports[0].rung, 2u);
    EXPECT_EQ(reports[1].tenant, "");
    EXPECT_EQ(reports[1].request_id, 0u);
    const std::string json = runReportToJson(reports[0]);
    EXPECT_NE(json.find("\"tenant\""), std::string::npos);
    EXPECT_NE(json.find("\"request_id\""), std::string::npos);
    EXPECT_NE(json.find("\"rung\""), std::string::npos);
}

TEST(TraceSession, ReportSinkReceivesReportsWithoutAccumulating)
{
    TraceSession session;
    std::vector<std::string> seen;
    session.setReportSink(
        [&](const RunReport &report) { seen.push_back(report.name); },
        /*keep_reports=*/false);
    MixGemmBackend backend;
    backend.attachTraceSession(&session);
    backend.setTraceLabel("sunk");
    Rng rng(5);
    const DataSizeConfig cfg{8, 8, true, true};
    const auto a = randomNarrowMatrix(rng, 8 * 8, 8, true);
    const auto b = randomNarrowMatrix(rng, 8 * 8, 8, true);
    backend.gemm(a, b, 8, 8, 8, cfg);
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], "sunk");
    EXPECT_TRUE(session.reports().empty());
}

// ---------------------------------------------------------------------
// Determinism contract 1: telemetry off == no hooks, bitwise
// ---------------------------------------------------------------------

TEST(Telemetry, OffRunsBitwiseIdenticalToHookedRuns)
{
    const uint64_t m = 33, n = 29, k = 37;
    const DataSizeConfig cfg{4, 4, true, true};
    Rng rng(7);
    const auto a = randomNarrowMatrix(rng, m * k, cfg.bwa, cfg.a_signed);
    const auto b = randomNarrowMatrix(rng, k * n, cfg.bwb, cfg.b_signed);
    const auto geometry = geometryForK(computeBsGeometry(cfg), k);

    BlockingParams base = BlockingParams::paperDefaults();
    base.mc = 16;
    base.nc = 16;

    for (const unsigned threads : {1u, 3u, 8u}) {
        for (const KernelMode mode :
             {KernelMode::Fast, KernelMode::Modeled}) {
            BlockingParams plain = base;
            plain.threads = threads;
            plain.kernel_mode = mode;
            const auto reference =
                mixGemm(a, b, m, n, k, geometry, plain);

            TraceSession session;
            unsigned sunk = 0;
            session.setReportSink([&](const RunReport &) { ++sunk; },
                                  /*keep_reports=*/false);
            BlockingParams hooked = plain;
            hooked.session = &session;
            hooked.trace_label = "telemetry-identity";
            hooked.trace_tenant = "tenant0";
            hooked.trace_request_id = 42;
            hooked.trace_rung = 1;
            const auto result =
                mixGemm(a, b, m, n, k, geometry, hooked);

            EXPECT_EQ(result.c, reference.c)
                << "threads=" << threads << " mode="
                << (mode == KernelMode::Fast ? "fast" : "modeled");
            EXPECT_EQ(result.counters.all(), reference.counters.all());
            EXPECT_EQ(sunk, 1u);
        }
    }
}

// ---------------------------------------------------------------------
// Determinism contract 2: same-seed VirtualClock soaks render
// byte-identical snapshots and postmortem bundles
// ---------------------------------------------------------------------

struct TelemetrySoakOutcome
{
    std::string exposition;
    std::vector<std::string> bundles;
    SoakResult result;
};

TelemetrySoakOutcome
runTelemetrySoak(uint64_t seed)
{
    MetricsRegistry registry;
    FlightRecorderOptions recorder_options;
    recorder_options.registry = &registry;
    FlightRecorder recorder(recorder_options);
    ServeTelemetryOptions telemetry_options;
    telemetry_options.registry = &registry;
    telemetry_options.recorder = &recorder;
    telemetry_options.include_wall_metrics = false; // virtual time
    telemetry_options.model = "smallcnn";
    ServeTelemetry telemetry(telemetry_options);
    TraceSession session;
    telemetry.attachSession(&session, /*keep_reports=*/false);

    TelemetrySoakOutcome out;
    SoakConfig config;
    config.seed = seed;
    config.duration_s = 0.25;
    config.ladder_tiers = 2;
    config.tenants = 3;
    config.session = &session;
    config.on_server_start = [&](InferenceServer &server) {
        telemetry.attachServer(&server);
    };
    config.on_server_drained = [&](InferenceServer &) {
        // Fixed dump time: the bundle must be a pure function of the
        // seed, and the drain moment in virtual time already is.
        recorder.dumpNow("drain", "test snapshot", 1'000'000'000);
        out.exposition = registry.renderPrometheus();
    };
    out.result = runServeSoak(config);
    out.bundles = recorder.bundles();
    return out;
}

TEST(Telemetry, SameSeedVirtualSoaksRenderByteIdenticalSnapshots)
{
    const TelemetrySoakOutcome first = runTelemetrySoak(21);
    const TelemetrySoakOutcome second = runTelemetrySoak(21);
    ASSERT_FALSE(first.exposition.empty());
    EXPECT_EQ(first.exposition, second.exposition);
    ASSERT_GE(first.bundles.size(), 1u);
    EXPECT_EQ(first.bundles, second.bundles);
    EXPECT_GT(first.result.stats.completed_ok, 0u);

    // The exposition carries the labeled families the plane promises:
    // tenant, model, rung, config, and priority class.
    for (const char *needle :
         {"mixgemm_tenant_requests_total{code=", "tenant=\"tenant",
          "mixgemm_serve_submitted_total{model=\"smallcnn\"}",
          "mixgemm_serve_completed_total{model=\"smallcnn\",rung=",
          "mixgemm_serve_class_total{class=\"p0\"",
          "mixgemm_gemm_total{config=",
          "mixgemm_serve_latency_ns{model=\"smallcnn\",path=\"queue\"",
          "mixgemm_postmortem_dumps_total"})
        EXPECT_NE(first.exposition.find(needle), std::string::npos)
            << needle << "\n"
            << first.exposition.substr(0, 2000);
    // Wall-derived families are suppressed under virtual time.
    EXPECT_EQ(first.exposition.find("mixgemm_roofline_efficiency"),
              std::string::npos);
    EXPECT_EQ(first.exposition.find("mixgemm_gemm_gops"),
              std::string::npos);
}

TEST(Telemetry, PerClassAccountingIdentityHoldsAfterDrain)
{
    const TelemetrySoakOutcome outcome = runTelemetrySoak(33);
    const ServerStats &stats = outcome.result.stats;
    ASSERT_FALSE(stats.by_priority.empty());
    uint64_t submitted = 0;
    for (const auto &[priority, cls] : stats.by_priority) {
        EXPECT_EQ(cls.submitted,
                  cls.completed_ok + cls.shed + cls.rejected_full +
                      cls.rejected_invalid + cls.rejected_closed +
                      cls.expired_submit + cls.deadline_exceeded +
                      cls.cancelled + cls.failed)
            << "class " << priority;
        EXPECT_LE(cls.expired_queue, cls.deadline_exceeded);
        submitted += cls.submitted;
    }
    EXPECT_EQ(submitted, stats.submitted);
}

TEST(Telemetry, InjectedStallProducesExactlyOnePostmortemWithSeq)
{
    MetricsRegistry registry;
    FlightRecorderOptions recorder_options;
    recorder_options.registry = &registry;
    FlightRecorder recorder(recorder_options);
    ServeTelemetryOptions telemetry_options;
    telemetry_options.registry = &registry;
    telemetry_options.recorder = &recorder;
    telemetry_options.model = "smallcnn";
    ServeTelemetry telemetry(telemetry_options);

    SoakConfig config;
    config.seed = 11;
    config.virtual_time = false;
    config.wall_workers = 2;
    config.duration_s = 1.0;
    config.arrival_hz = 120.0;
    config.inject_stall = true;
    config.on_server_start = [&](InferenceServer &server) {
        telemetry.attachServer(&server);
    };
    const SoakResult result = runServeSoak(config);
    EXPECT_GE(result.stats.watchdog_cancels, 1u);

    ASSERT_EQ(recorder.dumpCount(), 1u);
    const std::string bundle = recorder.bundles()[0];
    EXPECT_NE(bundle.find("\"reason\": \"watchdog\""),
              std::string::npos);
    // The dump's detail names the stalled request; the decision ring in
    // the same bundle must contain that request's watchdog_cancel line.
    const size_t at = bundle.find("seq=");
    ASSERT_NE(at, std::string::npos);
    const uint64_t stalled_seq =
        std::strtoull(bundle.c_str() + at + 4, nullptr, 10);
    EXPECT_NE(bundle.find(strCat("watchdog_cancel worker=")),
              std::string::npos);
    EXPECT_NE(bundle.find(strCat(" seq=", stalled_seq)),
              std::string::npos);
    EXPECT_NE(bundle.find("\"metrics\": \""), std::string::npos);
}

} // namespace
} // namespace mixgemm
