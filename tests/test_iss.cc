/**
 * @file
 * Tests for the RV64 ISS and assembler: base-ISA semantics (ALU,
 * branches, memory, li expansion), halting behaviour, and the flagship
 * end-to-end validation — a blocked GEMM written in assembly against
 * the encoded bs.set/bs.ip/bs.get instructions, executed instruction by
 * instruction and checked against the reference integer GEMM.
 */

#include <gtest/gtest.h>

#include "bs/microvector.h"
#include "common/logging.h"
#include "common/random.h"
#include "gemm/reference.h"
#include "isa/encoding.h"
#include "iss/assembler.h"
#include "iss/gemm_program.h"
#include "iss/machine.h"
#include "tensor/packing.h"

namespace mixgemm
{
namespace
{

constexpr uint64_t kText = 0x1000;

RiscvMachine
runProgram(Program &p)
{
    RiscvMachine m;
    const auto words = p.assemble();
    m.loadProgram(words, kText);
    EXPECT_EQ(m.run(), HaltReason::kEbreak);
    return m;
}

TEST(Assembler, LiExpandsAllImmediateSizes)
{
    for (const uint64_t v :
         {uint64_t{0}, uint64_t{1}, uint64_t{2047}, uint64_t{0x800},
          uint64_t{0x12345}, uint64_t{0x7fffffff},
          uint64_t{0xfffffffffffff800ull}, uint64_t{0x12345678u},
          uint64_t{0x123456789abcdef0ull}, uint64_t{0x8000000000000000ull},
          uint64_t{0xffffffffffffffffull}}) {
        Program p;
        p.li(A0, v);
        p.ebreak();
        RiscvMachine m;
        const auto words = p.assemble();
        m.loadProgram(words, kText);
        ASSERT_EQ(m.run(), HaltReason::kEbreak);
        EXPECT_EQ(m.reg(A0), v) << std::hex << v;
    }
}

TEST(Iss, ArithmeticLoopSumsIntegers)
{
    // sum = 1 + 2 + ... + 10
    Program p;
    p.li(T0, 10);
    p.li(A0, 0);
    p.label("loop");
    p.add(A0, A0, T0);
    p.addi(T0, T0, -1);
    p.bne(T0, ZERO, "loop");
    p.ebreak();
    const auto m = runProgram(p);
    EXPECT_EQ(m.reg(A0), 55u);
}

TEST(Iss, MulAndShifts)
{
    Program p;
    p.li(A0, 12345);
    p.li(A1, 6789);
    p.mul(A2, A0, A1);
    p.slli(A3, A2, 3);
    p.srli(A4, A3, 3);
    p.li(T0, static_cast<uint64_t>(-64));
    p.srai(T1, T0, 4);
    p.ebreak();
    const auto m = runProgram(p);
    EXPECT_EQ(m.reg(A2), 12345u * 6789u);
    EXPECT_EQ(m.reg(A4), m.reg(A2));
    EXPECT_EQ(static_cast<int64_t>(m.reg(T1)), -4);
}

TEST(Iss, LoadsAndStoresRoundTrip)
{
    Program p;
    p.li(T0, 0x8000); // data region
    p.li(A0, 0xdeadbeefcafef00dull);
    p.sd(A0, T0, 0);
    p.ld(A1, T0, 0);
    p.lw(A2, T0, 0);  // sign-extended low word
    p.lbu(A3, T0, 3); // byte 3 = 0xca
    p.sw(A0, T0, 16);
    p.ld(A4, T0, 16); // only the low 4 bytes were stored
    p.ebreak();
    const auto m = runProgram(p);
    EXPECT_EQ(m.reg(A1), 0xdeadbeefcafef00dull);
    EXPECT_EQ(m.reg(A2),
              static_cast<uint64_t>(
                  static_cast<int64_t>(
                      static_cast<int32_t>(0xcafef00d))));
    EXPECT_EQ(m.reg(A3), 0xcau);
    EXPECT_EQ(m.reg(A4), 0xcafef00dull);
}

TEST(Iss, BranchesAndJal)
{
    Program p;
    p.li(A0, 0);
    p.li(T0, 3);
    p.li(T1, 7);
    p.blt(T1, T0, "skip"); // not taken
    p.addi(A0, A0, 1);
    p.label("skip");
    p.bge(T1, T0, "taken"); // taken
    p.addi(A0, A0, 100);    // skipped
    p.label("taken");
    p.jal(RA, "func");
    p.ebreak();
    p.label("func");
    p.addi(A0, A0, 10);
    // Return: jalr x0, 0(ra) — emit via raw add of a jal? Use jalr:
    // the assembler has no jalr; emulate return by falling through to
    // a second ebreak instead.
    p.ebreak();
    const auto m = runProgram(p);
    EXPECT_EQ(m.reg(A0), 11u);
}

TEST(Iss, HaltsOnBadInstruction)
{
    RiscvMachine m;
    const std::vector<uint32_t> garbage{0xffffffffu};
    m.loadProgram(garbage, kText);
    EXPECT_EQ(m.run(), HaltReason::kBadInsn);
}

TEST(Iss, X0StaysZero)
{
    Program p;
    p.addi(ZERO, ZERO, 5);
    p.ebreak();
    const auto m = runProgram(p);
    EXPECT_EQ(m.reg(ZERO), 0u);
}

TEST(Iss, RegisterBoundsChecked)
{
    RiscvMachine m;
    EXPECT_THROW(m.reg(32), FatalError);
    EXPECT_THROW(m.setReg(40, 1), FatalError);
}

/** Pack a bs.set operand word for a geometry. */
uint64_t
bsSetWordFor(const BsGeometry &g)
{
    BsSetConfig cfg;
    cfg.bwa = static_cast<uint8_t>(g.config.bwa);
    cfg.bwb = static_cast<uint8_t>(g.config.bwb);
    cfg.a_signed = g.config.a_signed;
    cfg.b_signed = g.config.b_signed;
    cfg.cluster_size = static_cast<uint8_t>(g.cluster_size);
    cfg.cw = static_cast<uint8_t>(g.cw);
    cfg.ip_length = static_cast<uint16_t>(g.group_extent);
    cfg.slice_lsb = static_cast<uint8_t>(g.slice_lsb);
    cfg.slice_msb = static_cast<uint8_t>(g.slice_msb);
    return packBsSetConfig(cfg);
}

TEST(Iss, BsInnerProductProgram)
{
    // Inner product of two 64-element a8-w8 streams, written in
    // assembly: 2 accumulation groups of 4 μ-vector pairs into slot 0.
    const auto g = computeBsGeometry({8, 8, true, true});
    const uint64_t k = 64;
    Rng rng(9);
    std::vector<int32_t> a(k);
    std::vector<int32_t> b(k);
    for (auto &v : a)
        v = static_cast<int32_t>(rng.uniformInt(-128, 127));
    for (auto &v : b)
        v = static_cast<int32_t>(rng.uniformInt(-128, 127));
    int64_t expected = 0;
    for (uint64_t i = 0; i < k; ++i)
        expected += int64_t{a[i]} * b[i];

    const auto a_words = packMicroVectorStream(a, 8, true);
    const auto b_words = packMicroVectorStream(b, 8, true);

    const uint64_t a_base = 0x10000;
    const uint64_t b_base = 0x20000;
    RiscvMachine m;
    m.writeBlock(a_base, a_words);
    m.writeBlock(b_base, b_words);

    Program p;
    p.li(A0, bsSetWordFor(g));
    p.li(A1, 1); // one active AccMem slot
    p.bsSet(A0, A1);
    p.li(T0, a_base);
    p.li(T1, b_base);
    p.li(T2, static_cast<uint64_t>(a_words.size()));
    p.label("pair");
    p.ld(A2, T0, 0);
    p.ld(A3, T1, 0);
    p.bsIp(A2, A3);
    p.addi(T0, T0, 8);
    p.addi(T1, T1, 8);
    p.addi(T2, T2, -1);
    p.bne(T2, ZERO, "pair");
    p.li(A4, 0);
    p.bsGet(A0, A4);
    p.ebreak();

    const auto words = p.assemble();
    m.loadProgram(words, kText);
    ASSERT_EQ(m.run(), HaltReason::kEbreak);
    EXPECT_EQ(static_cast<int64_t>(m.reg(A0)), expected);
    EXPECT_EQ(m.counters().get("bs_ip"), a_words.size());
}

TEST(Iss, AssemblyGemmMatchesReference)
{
    // A full 4 x 4 x 64 a6-w4 GEMM tile written in assembly against
    // the compressed operand layout, one accumulation slot per output
    // cell — Algorithm 1's μ-kernel, executed from encoded
    // instructions.
    const auto g = computeBsGeometry({6, 4, true, true});
    const uint64_t mdim = 4, ndim = 4, k = 60; // 2 groups of extent 30
    Rng rng(11);
    std::vector<int32_t> a(mdim * k);
    std::vector<int32_t> b(k * ndim);
    for (auto &v : a)
        v = static_cast<int32_t>(rng.uniformInt(-32, 31));
    for (auto &v : b)
        v = static_cast<int32_t>(rng.uniformInt(-8, 7));
    const auto expected = referenceGemmInt(a, b, mdim, ndim, k);

    const CompressedA ca(a, mdim, k, g);
    const CompressedB cb(b, k, ndim, g);
    ASSERT_EQ(ca.kGroups(), 2u);

    const uint64_t a_base = 0x10000;
    const uint64_t b_base = 0x20000;
    const uint64_t c_base = 0x30000;
    RiscvMachine m;
    m.writeBlock(a_base, ca.words());
    m.writeBlock(b_base, cb.words());

    // Strides in bytes within the compressed layouts.
    const uint32_t a_row = 8 * ca.kGroups() * g.kua;   // per A row
    const uint32_t a_grp = 8 * g.kua;                  // per group
    const uint32_t b_col = 8 * cb.kGroups() * g.kub;
    const uint32_t b_grp = 8 * g.kub;

    Program p;
    p.li(A0, bsSetWordFor(g));
    p.li(A1, 16); // mr * nr AccMem slots
    p.bsSet(A0, A1);
    p.li(S0, 0); // g
    p.label("group");
    p.li(S1, 0); // i (column)
    p.label("col");
    p.li(S2, 0); // j (row)
    p.label("row");
    // A pair pointer: a_base + j*a_row + g*a_grp
    p.li(T0, a_base);
    p.li(T3, a_row);
    p.mul(T4, S2, T3);
    p.add(T0, T0, T4);
    p.li(T3, a_grp);
    p.mul(T4, S0, T3);
    p.add(T0, T0, T4);
    // B pair pointer: b_base + i*b_col + g*b_grp
    p.li(T1, b_base);
    p.li(T3, b_col);
    p.mul(T4, S1, T3);
    p.add(T1, T1, T4);
    p.li(T3, b_grp);
    p.mul(T4, S0, T3);
    p.add(T1, T1, T4);
    // Issue the group's pairs: kua >= kub here (3 vs 2); pad B with 0.
    p.li(S3, 0); // pair index
    p.label("pair");
    p.ld(A2, T0, 0);
    p.li(A3, 0);
    p.li(T5, static_cast<uint64_t>(g.kub));
    p.bge(S3, T5, "skip_b");
    p.ld(A3, T1, 0);
    p.label("skip_b");
    p.bsIp(A2, A3);
    p.addi(T0, T0, 8);
    p.addi(T1, T1, 8);
    p.addi(S3, S3, 1);
    p.li(T5, static_cast<uint64_t>(g.group_pairs));
    p.blt(S3, T5, "pair");
    // Advance j, i, g.
    p.addi(S2, S2, 1);
    p.li(T5, mdim);
    p.blt(S2, T5, "row");
    p.addi(S1, S1, 1);
    p.li(T5, ndim);
    p.blt(S1, T5, "col");
    p.addi(S0, S0, 1);
    p.li(T5, ca.kGroups());
    p.blt(S0, T5, "group");
    // Collect the 16 AccMem slots into C (row-major by slot index
    // i * mr + j -> C[j, i]).
    p.li(S1, 0); // i
    p.label("get_col");
    p.li(S2, 0); // j
    p.label("get_row");
    p.slli(T3, S1, 2); // i * mr
    p.add(T3, T3, S2);
    p.bsGet(A0, T3);
    // C address: c_base + (j * ndim + i) * 8
    p.slli(T4, S2, 2); // j * ndim
    p.add(T4, T4, S1);
    p.slli(T4, T4, 3);
    p.li(T5, c_base);
    p.add(T4, T4, T5);
    p.sd(A0, T4, 0);
    p.addi(S2, S2, 1);
    p.li(T5, mdim);
    p.blt(S2, T5, "get_row");
    p.addi(S1, S1, 1);
    p.li(T5, ndim);
    p.blt(S1, T5, "get_col");
    p.ebreak();

    const auto words = p.assemble();
    m.loadProgram(words, kText);
    ASSERT_EQ(m.run(), HaltReason::kEbreak);

    for (uint64_t j = 0; j < mdim; ++j)
        for (uint64_t i = 0; i < ndim; ++i)
            ASSERT_EQ(static_cast<int64_t>(
                          m.readWord(c_base + (j * ndim + i) * 8, 8)),
                      expected[j * ndim + i])
                << "C[" << j << "," << i << "]";
    EXPECT_GT(m.instructionsExecuted(), 1000u);
}

struct GenCase
{
    uint64_t m, n, k;
    unsigned bwa, bwb;
    const char *label;
};

class GeneratedGemmTest : public ::testing::TestWithParam<GenCase>
{
};

TEST_P(GeneratedGemmTest, GeneratedProgramMatchesReference)
{
    const auto c = GetParam();
    const auto g = computeBsGeometry({c.bwa, c.bwb, true, true});
    Rng rng(500 + c.m + c.n + c.k);
    std::vector<int32_t> a(c.m * c.k);
    std::vector<int32_t> b(c.k * c.n);
    for (auto &v : a)
        v = static_cast<int32_t>(
            rng.uniformInt(-(1 << (c.bwa - 1)), (1 << (c.bwa - 1)) - 1));
    for (auto &v : b)
        v = static_cast<int32_t>(
            rng.uniformInt(-(1 << (c.bwb - 1)), (1 << (c.bwb - 1)) - 1));
    const auto expected = referenceGemmInt(a, b, c.m, c.n, c.k);

    const CompressedA ca(a, c.m, c.k, g);
    const CompressedB cb(b, c.k, c.n, g);
    const GemmProgramLayout layout;
    RiscvMachine machine;
    machine.writeBlock(layout.a_base, ca.words());
    machine.writeBlock(layout.b_base, cb.words());

    auto program = generateMixGemmProgram(c.m, c.n, c.k, g, layout);
    const auto words = program.assemble();
    machine.loadProgram(words, kText);
    ASSERT_EQ(machine.run(), HaltReason::kEbreak) << c.label;

    for (uint64_t row = 0; row < c.m; ++row)
        for (uint64_t col = 0; col < c.n; ++col)
            ASSERT_EQ(static_cast<int64_t>(machine.readWord(
                          layout.c_base + 8 * (row * c.n + col), 8)),
                      expected[row * c.n + col])
                << c.label << " C[" << row << "," << col << "]";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeneratedGemmTest,
    ::testing::Values(GenCase{4, 4, 32, 8, 8, "tile_a8w8"},
                      GenCase{8, 8, 64, 8, 8, "block_a8w8"},
                      GenCase{5, 7, 50, 8, 6, "edge_a8w6"},
                      GenCase{6, 3, 45, 6, 4, "edge_a6w4"},
                      GenCase{9, 10, 129, 2, 2, "odd_a2w2"},
                      GenCase{1, 1, 7, 4, 4, "scalar_a4w4"}),
    [](const auto &info) { return info.param.label; });

} // namespace
} // namespace mixgemm
