/**
 * @file
 * Unit tests for src/isa: μ-op construction/rendering and the bit-exact
 * RISC-V encodings of the bs.* custom instructions.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "isa/encoding.h"
#include "isa/uop.h"

namespace mixgemm
{
namespace
{

TEST(Uop, Constructors)
{
    const Uop a = Uop::alu(3, 1, 2);
    EXPECT_EQ(a.kind, UopKind::kAlu);
    EXPECT_EQ(a.dst, 3);
    EXPECT_EQ(a.src1, 1);
    EXPECT_EQ(a.src2, 2);

    const Uop l = Uop::load(5, 0x1000, 8);
    EXPECT_EQ(l.kind, UopKind::kLoad);
    EXPECT_EQ(l.addr, 0x1000u);
    EXPECT_EQ(l.size, 8);

    const Uop s = Uop::store(7, 0x2000, 4);
    EXPECT_EQ(s.kind, UopKind::kStore);
    EXPECT_EQ(s.src1, 7);

    const Uop ip = Uop::bsIp(10, 11);
    EXPECT_EQ(ip.kind, UopKind::kBsIp);
    EXPECT_EQ(ip.src1, 10);
    EXPECT_EQ(ip.src2, 11);

    const Uop g = Uop::bsGet(4, 13);
    EXPECT_EQ(g.kind, UopKind::kBsGet);
    EXPECT_EQ(g.acc_slot, 13);
}

TEST(Uop, ToStringMentionsKindAndOperands)
{
    const Uop l = Uop::load(5, 0xabc, 8);
    const std::string s = l.toString();
    EXPECT_NE(s.find("load"), std::string::npos);
    EXPECT_NE(s.find("0xabc"), std::string::npos);
    EXPECT_NE(Uop::bsIp(1, 2).toString().find("bs.ip"), std::string::npos);
}

TEST(Uop, KindNames)
{
    EXPECT_STREQ(uopKindName(UopKind::kBsSet), "bs.set");
    EXPECT_STREQ(uopKindName(UopKind::kFmul), "fmul");
    EXPECT_STREQ(uopKindName(UopKind::kNop), "nop");
}

TEST(Encoding, RoundTripAllRegisters)
{
    for (unsigned f3 = 0; f3 <= 2; ++f3) {
        for (unsigned rd = 0; rd < 32; rd += 5) {
            for (unsigned rs1 = 0; rs1 < 32; rs1 += 7) {
                for (unsigned rs2 = 0; rs2 < 32; rs2 += 3) {
                    BsInstruction insn;
                    insn.funct3 = static_cast<BsFunct3>(f3);
                    insn.rd = rd;
                    insn.rs1 = rs1;
                    insn.rs2 = rs2;
                    const uint32_t word = encodeBsInstruction(insn);
                    const auto back = decodeBsInstruction(word);
                    ASSERT_TRUE(back.has_value());
                    EXPECT_EQ(back->funct3, insn.funct3);
                    EXPECT_EQ(back->rd, insn.rd);
                    EXPECT_EQ(back->rs1, insn.rs1);
                    EXPECT_EQ(back->rs2, insn.rs2);
                }
            }
        }
    }
}

TEST(Encoding, UsesCustom0Opcode)
{
    BsInstruction insn;
    insn.funct3 = BsFunct3::kIp;
    insn.rd = 1;
    insn.rs1 = 2;
    insn.rs2 = 3;
    const uint32_t word = encodeBsInstruction(insn);
    EXPECT_EQ(word & 0x7f, kCustom0Opcode);
    EXPECT_EQ((word >> 25) & 0x7f, 0u) << "funct7 must be zero";
}

TEST(Encoding, RejectsForeignWords)
{
    EXPECT_FALSE(decodeBsInstruction(0x00000013).has_value()); // addi nop
    EXPECT_FALSE(decodeBsInstruction(0xffffffff).has_value());
    // Right opcode, unsupported funct3.
    const uint32_t bad_f3 = kCustom0Opcode | (5u << 12);
    EXPECT_FALSE(decodeBsInstruction(bad_f3).has_value());
    // Right opcode/funct3, nonzero funct7.
    BsInstruction insn;
    insn.funct3 = BsFunct3::kGet;
    const uint32_t bad_f7 = encodeBsInstruction(insn) | (1u << 25);
    EXPECT_FALSE(decodeBsInstruction(bad_f7).has_value());
}

TEST(Encoding, Disassembly)
{
    BsInstruction insn;
    insn.funct3 = BsFunct3::kIp;
    insn.rd = 10;
    insn.rs1 = 11;
    insn.rs2 = 12;
    EXPECT_EQ(disassembleBs(insn), "bs.ip x10, x11, x12");
    insn.funct3 = BsFunct3::kSet;
    EXPECT_EQ(disassembleBs(insn), "bs.set x10, x11, x12");
    insn.funct3 = BsFunct3::kGet;
    EXPECT_EQ(disassembleBs(insn), "bs.get x10, x11, x12");
}

TEST(Encoding, EncodeRejectsOutOfRangeRegister)
{
    BsInstruction insn;
    insn.rd = 32;
    EXPECT_THROW(encodeBsInstruction(insn), FatalError);
}

TEST(BsSetConfigWord, RoundTrip)
{
    BsSetConfig c;
    c.bwa = 6;
    c.bwb = 4;
    c.a_signed = true;
    c.b_signed = false;
    c.cluster_size = 4;
    c.cw = 14;
    c.ip_length = 30;
    c.slice_lsb = 42;
    c.slice_msb = 55;
    const uint64_t word = packBsSetConfig(c);
    const BsSetConfig back = unpackBsSetConfig(word);
    EXPECT_EQ(back.bwa, c.bwa);
    EXPECT_EQ(back.bwb, c.bwb);
    EXPECT_EQ(back.a_signed, c.a_signed);
    EXPECT_EQ(back.b_signed, c.b_signed);
    EXPECT_EQ(back.cluster_size, c.cluster_size);
    EXPECT_EQ(back.cw, c.cw);
    EXPECT_EQ(back.ip_length, c.ip_length);
    EXPECT_EQ(back.slice_lsb, c.slice_lsb);
    EXPECT_EQ(back.slice_msb, c.slice_msb);
}

TEST(BsSetConfigWord, RejectsBadFields)
{
    BsSetConfig c;
    c.bwa = 0;
    EXPECT_THROW(packBsSetConfig(c), FatalError);
    c = BsSetConfig{};
    c.bwa = 9;
    EXPECT_THROW(packBsSetConfig(c), FatalError);
    c = BsSetConfig{};
    c.cluster_size = 0;
    EXPECT_THROW(packBsSetConfig(c), FatalError);
    c = BsSetConfig{};
    c.cw = 0;
    EXPECT_THROW(packBsSetConfig(c), FatalError);
}

} // namespace
} // namespace mixgemm
