/**
 * @file
 * Cross-validation of the hybrid GEMM timing model against full-trace
 * simulation (every μ-op through the real cache hierarchy), plus
 * consistency checks between the timing path and the functional
 * library (instruction counts must agree exactly).
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "gemm/mixgemm.h"
#include "sim/full_trace.h"
#include "sim/gemm_timing.h"
#include "soc/soc_config.h"

namespace mixgemm
{
namespace
{

struct ValidationCase
{
    uint64_t m, n, k;
    unsigned bwa, bwb;
    const char *label;
};

class HybridVsFullTraceTest
    : public ::testing::TestWithParam<ValidationCase>
{
};

TEST_P(HybridVsFullTraceTest, HybridWithinBandOfFullTrace)
{
    const auto p = GetParam();
    const SoCConfig soc = SoCConfig::sargantana();
    const auto geom =
        computeBsGeometry({p.bwa, p.bwb, true, true});

    const auto full =
        simulateMixGemmFullTrace(p.m, p.n, p.k, geom, soc);
    GemmTimingModel hybrid(soc);
    const auto fast = hybrid.mixGemm(p.m, p.n, p.k, geom);

    const double ratio = static_cast<double>(fast.cycles) /
                         static_cast<double>(full.cycles);
    // The hybrid model must track full-trace simulation closely: its
    // job is pricing Fig. 6's large GEMMs where full trace is
    // infeasible.
    EXPECT_GT(ratio, 0.70) << "hybrid " << fast.cycles << " vs full "
                           << full.cycles;
    EXPECT_LT(ratio, 1.40) << "hybrid " << fast.cycles << " vs full "
                           << full.cycles;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HybridVsFullTraceTest,
    ::testing::Values(ValidationCase{64, 64, 64, 8, 8, "a8w8_64"},
                      ValidationCase{96, 96, 96, 8, 8, "a8w8_96"},
                      ValidationCase{96, 96, 96, 4, 4, "a4w4_96"},
                      ValidationCase{64, 64, 128, 2, 2, "a2w2_64"},
                      ValidationCase{80, 64, 96, 8, 2, "a8w2_mixed"},
                      ValidationCase{64, 96, 60, 6, 4, "a6w4_odd"}),
    [](const auto &info) { return info.param.label; });

TEST(HybridVsFullTrace, DgemmBaseline)
{
    const SoCConfig soc = SoCConfig::sargantana();
    const auto full = simulateDgemmFullTrace(64, 64, 64, soc);
    GemmTimingModel hybrid(soc);
    const auto fast = hybrid.dgemm(64, 64, 64);
    const double ratio = static_cast<double>(fast.cycles) /
                         static_cast<double>(full.cycles);
    EXPECT_GT(ratio, 0.70);
    EXPECT_LT(ratio, 1.40);
}

TEST(FullTrace, BsIpCountMatchesFunctionalLibrary)
{
    // The dynamic bs.ip count of the timing path must equal the
    // functional library's count exactly — same Algorithm 1 loop
    // structure.
    const auto geom = computeBsGeometry({8, 6, true, true});
    const uint64_t m = 24, n = 20, k = 70;
    Rng rng(5);
    std::vector<int32_t> a(m * k);
    std::vector<int32_t> b(k * n);
    for (auto &v : a)
        v = static_cast<int32_t>(rng.uniformInt(-128, 127));
    for (auto &v : b)
        v = static_cast<int32_t>(rng.uniformInt(-32, 31));
    const auto functional = mixGemm(a, b, m, n, k, geom);

    const auto full = simulateMixGemmFullTrace(m, n, k, geom,
                                               SoCConfig::sargantana());
    EXPECT_EQ(full.counters.get("bs_ip_issued"),
              functional.counters.get("bs_ip"));
}

TEST(FullTrace, CacheCountersArePopulated)
{
    const auto geom = computeBsGeometry({8, 8, true, true});
    const auto r =
        simulateMixGemmFullTrace(32, 32, 64, geom,
                                 SoCConfig::sargantana());
    EXPECT_GT(r.counters.get("l1_hits"), 0u);
    EXPECT_GT(r.counters.get("l1_misses"), 0u);
    EXPECT_GT(r.counters.get("instructions"), 0u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(FullTrace, SmallerCachesNeverFaster)
{
    const auto geom = computeBsGeometry({8, 8, true, true});
    const auto big =
        simulateMixGemmFullTrace(64, 64, 64, geom,
                                 SoCConfig::sargantana());
    const auto small = simulateMixGemmFullTrace(
        64, 64, 64, geom, SoCConfig::sargantanaSmallCaches());
    EXPECT_GE(small.cycles, big.cycles);
}

TEST(FullTrace, RejectsEmptyProblems)
{
    const auto geom = computeBsGeometry({8, 8, true, true});
    EXPECT_THROW(simulateMixGemmFullTrace(0, 4, 4, geom,
                                          SoCConfig::sargantana()),
                 FatalError);
    EXPECT_THROW(
        simulateDgemmFullTrace(4, 0, 4, SoCConfig::sargantana()),
        FatalError);
}

} // namespace
} // namespace mixgemm
