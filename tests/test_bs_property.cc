/**
 * @file
 * Property-based tests for the binary-segmentation core across the
 * whole parameter space: every multiplier width from 16 to 64 bits,
 * every supported (bwa, bwb) combination, randomized μ-engine protocol
 * sequences (fuzzing), and accumulator-range analysis for the AccMem
 * width requirement.
 */

#include <gtest/gtest.h>

#include "bs/cluster.h"
#include "bs/engine.h"
#include "bs/geometry.h"
#include "bs/microvector.h"
#include "common/logging.h"
#include "common/random.h"

namespace mixgemm
{
namespace
{

int64_t
naiveDot(const std::vector<int32_t> &a, const std::vector<int32_t> &b)
{
    int64_t acc = 0;
    for (size_t i = 0; i < a.size(); ++i)
        acc += int64_t{a[i]} * b[i];
    return acc;
}

class MulWidthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MulWidthTest, GeometryInvariantsHoldWhenFeasible)
{
    const unsigned width = GetParam();
    for (const auto &cfg : allSupportedConfigs()) {
        if (clusterSizeFor(cfg.bwa, cfg.bwb, width) == 0)
            continue; // infeasible on this multiplier; rejected below
        const auto g = computeBsGeometry(cfg, width);
        // Eq. 3/4: the packed cluster fits the multiplier.
        EXPECT_LE(g.cluster_size * g.cw, width) << cfg.name();
        // The slice lies inside the double-width product.
        EXPECT_LT(g.slice_msb, 2 * width) << cfg.name();
        EXPECT_EQ(g.slice_msb - g.slice_lsb + 1, g.cw) << cfg.name();
        // Schedules cover the extent exactly.
        unsigned covered = 0;
        for (const unsigned c : dsuChunkSchedule(g))
            covered += c;
        EXPECT_EQ(covered, g.group_extent) << cfg.name();
    }
}

TEST_P(MulWidthTest, ClusterDatapathExactAtThisWidth)
{
    const unsigned width = GetParam();
    Rng rng(width);
    for (const auto &cfg : allSupportedConfigs()) {
        if (clusterSizeFor(cfg.bwa, cfg.bwb, width) == 0)
            continue;
        const auto g = computeBsGeometry(cfg, width);
        for (int iter = 0; iter < 40; ++iter) {
            const unsigned n = static_cast<unsigned>(
                rng.uniformInt(1, g.cluster_size));
            std::vector<int32_t> a(n);
            std::vector<int32_t> b(n);
            for (unsigned i = 0; i < n; ++i) {
                a[i] = static_cast<int32_t>(
                    rng.uniformInt(-(1 << (cfg.bwa - 1)),
                                   (1 << (cfg.bwa - 1)) - 1));
                b[i] = static_cast<int32_t>(
                    rng.uniformInt(-(1 << (cfg.bwb - 1)),
                                   (1 << (cfg.bwb - 1)) - 1));
            }
            ASSERT_EQ(clusterInnerProduct(a, b, g), naiveDot(a, b))
                << cfg.name() << " @ " << width << " bit";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, MulWidthTest,
                         ::testing::Values(16u, 20u, 24u, 32u, 40u,
                                           48u, 64u),
                         [](const auto &info) {
                             return "mul" +
                                    std::to_string(info.param);
                         });

TEST(BsProperty, NarrowWidthsRejectWideConfigs)
{
    // An 8x8-bit product needs cw = 19 bits minimum; a 16-bit
    // multiplier cannot host it.
    EXPECT_EQ(clusterSizeFor(8, 8, 16), 0u);
    EXPECT_THROW(computeBsGeometry({8, 8, true, true}, 16), FatalError);
    // 2x2 still fits: cw = 1+2+2+1 = 6 at n = 1.
    EXPECT_GE(clusterSizeFor(2, 2, 16), 1u);
}

TEST(BsProperty, MacsPerCycleIsMonotoneInMultiplierWidth)
{
    for (const auto &cfg : allSupportedConfigs()) {
        double prev = 0.0;
        for (const unsigned width : {24u, 32u, 48u, 64u}) {
            if (clusterSizeFor(cfg.bwa, cfg.bwb, width) == 0)
                continue;
            const auto g = computeBsGeometry(cfg, width);
            EXPECT_GE(g.cluster_size + 0.001, prev) << cfg.name();
            prev = g.cluster_size;
        }
    }
}

TEST(BsProperty, EngineFuzzRandomGroupSequences)
{
    // Fuzz: random sequences of reconfigurations and groups with
    // random data; every bs.get must equal the accumulated naive dot.
    Rng rng(0xf22);
    const auto configs = allSupportedConfigs();
    BsEngine engine;
    for (int round = 0; round < 60; ++round) {
        const auto &cfg = configs[static_cast<size_t>(
            rng.uniformInt(0, static_cast<int64_t>(configs.size()) -
                                  1))];
        const auto g = computeBsGeometry(cfg);
        const unsigned slots =
            static_cast<unsigned>(rng.uniformInt(1, 16));
        engine.set(g, slots);
        std::vector<int64_t> expected(slots, 0);
        const unsigned rounds =
            static_cast<unsigned>(rng.uniformInt(1, 3));
        for (unsigned r = 0; r < rounds; ++r) {
            for (unsigned s = 0; s < slots; ++s) {
                std::vector<int32_t> a(g.group_extent);
                std::vector<int32_t> b(g.group_extent);
                for (unsigned i = 0; i < g.group_extent; ++i) {
                    a[i] = static_cast<int32_t>(rng.uniformInt(
                        -(1 << (cfg.bwa - 1)),
                        (1 << (cfg.bwa - 1)) - 1));
                    b[i] = static_cast<int32_t>(rng.uniformInt(
                        -(1 << (cfg.bwb - 1)),
                        (1 << (cfg.bwb - 1)) - 1));
                }
                expected[s] += naiveDot(a, b);
                const auto aw = packMicroVectorStream(a, cfg.bwa, true);
                const auto bw = packMicroVectorStream(b, cfg.bwb, true);
                for (unsigned pp = 0; pp < g.group_pairs; ++pp)
                    engine.ip(pp < aw.size() ? aw[pp] : 0,
                              pp < bw.size() ? bw[pp] : 0);
            }
        }
        for (unsigned s = 0; s < slots; ++s)
            ASSERT_EQ(engine.get(s), expected[s])
                << cfg.name() << " slot " << s << " round " << round;
    }
}

TEST(BsProperty, AccumulatorRangeFitsThirtyTwoBitsForPaperShapes)
{
    // AccMem width requirement: with kc = 256 and worst-case operand
    // magnitudes, the per-cell accumulation stays within int32 for
    // every configuration (so a 32-bit AccMem entry suffices for one
    // μ-kernel invocation; C itself accumulates in wider memory).
    for (const auto &cfg : allSupportedConfigs()) {
        const double max_a = 1 << (cfg.bwa - 1);
        const double max_b = 1 << (cfg.bwb - 1);
        const double worst = 256.0 * max_a * max_b;
        EXPECT_LT(worst, 2147483648.0) << cfg.name();
    }
}

TEST(BsProperty, GeometryForKMatchesFullGeometryAtBoundary)
{
    for (const auto &cfg : allSupportedConfigs()) {
        const auto g = computeBsGeometry(cfg);
        const auto same = geometryForK(g, g.group_extent);
        EXPECT_EQ(same.group_cycles, g.group_cycles) << cfg.name();
        EXPECT_EQ(same.kua, g.kua) << cfg.name();
        // A 1-element k still works and takes at least one cycle.
        const auto tiny = geometryForK(g, 1);
        EXPECT_EQ(tiny.group_extent, 1u) << cfg.name();
        EXPECT_EQ(tiny.group_cycles, 1u) << cfg.name();
        EXPECT_THROW(geometryForK(g, 0), FatalError);
    }
}

} // namespace
} // namespace mixgemm
