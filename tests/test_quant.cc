/**
 * @file
 * Unit tests for src/quant: Eq. 1/2 semantics, symmetric/asymmetric and
 * per-channel quantization, calibration (absmax, percentile, running
 * percentile), and bias correction.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "quant/calibration.h"
#include "quant/quantizer.h"

namespace mixgemm
{
namespace
{

TEST(QuantParams, ClampRangesEq2)
{
    QuantParams p;
    p.bits = 8;
    p.is_signed = true;
    EXPECT_EQ(p.qmin(), -128);
    EXPECT_EQ(p.qmax(), 127);
    p.is_signed = false;
    EXPECT_EQ(p.qmin(), 0);
    EXPECT_EQ(p.qmax(), 255);
    p.bits = 2;
    p.is_signed = true;
    EXPECT_EQ(p.qmin(), -2);
    EXPECT_EQ(p.qmax(), 1);
    p.is_signed = false;
    EXPECT_EQ(p.qmin(), 0);
    EXPECT_EQ(p.qmax(), 3);
}

TEST(Quantize, RoundsToNearest)
{
    QuantParams p;
    p.scale = 0.5;
    EXPECT_EQ(quantize(1.0, p), 2);
    EXPECT_EQ(quantize(1.1, p), 2);
    EXPECT_EQ(quantize(1.3, p), 3);
    EXPECT_EQ(quantize(-1.3, p), -3);
}

TEST(Quantize, ClampsToRange)
{
    QuantParams p;
    p.scale = 1.0;
    p.bits = 4;
    p.is_signed = true;
    EXPECT_EQ(quantize(100.0, p), 7);
    EXPECT_EQ(quantize(-100.0, p), -8);
    p.is_signed = false;
    EXPECT_EQ(quantize(100.0, p), 15);
    EXPECT_EQ(quantize(-3.0, p), 0);
}

TEST(Quantize, AsymmetricZeroPoint)
{
    QuantParams p;
    p.scale = 0.1;
    p.zero_point = 10;
    p.bits = 8;
    p.is_signed = false;
    EXPECT_EQ(quantize(0.0, p), 10);
    EXPECT_DOUBLE_EQ(dequantize(10, p), 0.0);
    EXPECT_EQ(quantize(1.0, p), 20);
    EXPECT_NEAR(dequantize(quantize(1.0, p), p), 1.0, 1e-12);
}

TEST(Quantize, FakeQuantizeIdempotent)
{
    QuantParams p;
    p.scale = 0.04;
    p.bits = 5;
    Rng rng(4);
    for (int i = 0; i < 200; ++i) {
        // Stay inside the representable range [-16, 15] * scale so
        // clamping never bites and the half-step error bound holds.
        const double x = rng.uniformReal(-0.5, 0.5);
        const double fq = fakeQuantize(x, p);
        EXPECT_DOUBLE_EQ(fakeQuantize(fq, p), fq);
        EXPECT_LE(std::abs(fq - x), p.scale / 2 + 1e-12)
            << "in-range values round within half a step";
    }
}

TEST(Quantize, RejectsBadParams)
{
    QuantParams p;
    p.scale = 0.0;
    EXPECT_THROW(quantize(1.0, p), FatalError);
    p.scale = 1.0;
    p.bits = 0;
    EXPECT_THROW(quantize(1.0, p), FatalError);
}

TEST(Quantize, VectorForms)
{
    QuantParams p;
    p.scale = 0.25;
    const std::vector<double> xs{0.0, 0.25, -0.5, 1.0};
    const auto qs = quantize(xs, p);
    EXPECT_EQ(qs, (std::vector<int32_t>{0, 1, -2, 4}));
    const auto back = dequantize(qs, p);
    for (size_t i = 0; i < xs.size(); ++i)
        EXPECT_DOUBLE_EQ(back[i], xs[i]);
}

TEST(Quantize, PerChannel)
{
    std::vector<QuantParams> params(2);
    params[0].scale = 1.0;
    params[1].scale = 0.5;
    const std::vector<double> vals{1.0, 2.0, 1.0, 2.0};
    const auto q = quantizePerChannel(vals, 2, params);
    EXPECT_EQ(q, (std::vector<int32_t>{1, 2, 2, 4}));
    EXPECT_THROW(quantizePerChannel(vals, 3, params), FatalError);
}

TEST(Quantize, RequantizeMultiplier)
{
    QuantParams a;
    a.scale = 0.1;
    QuantParams w;
    w.scale = 0.02;
    QuantParams out;
    out.scale = 0.05;
    EXPECT_NEAR(requantizeMultiplier(a, w, out), 0.04, 1e-12);
}

TEST(Calibration, AbsmaxSymmetric)
{
    const std::vector<double> vals{0.1, -2.0, 1.5};
    const auto p = calibrateAbsmax(vals, 8, true);
    EXPECT_EQ(p.zero_point, 0);
    EXPECT_NEAR(p.scale, 2.0 / 127.0, 1e-12);
    // The extreme value must be representable.
    EXPECT_NEAR(dequantize(quantize(-2.0, p), p), -2.0, p.scale);
}

TEST(Calibration, AbsmaxAllZeroTensor)
{
    const std::vector<double> vals(16, 0.0);
    const auto p = calibrateAbsmax(vals, 8, true);
    EXPECT_GT(p.scale, 0.0);
    EXPECT_EQ(quantize(0.0, p), 0);
}

TEST(Calibration, PercentileIgnoresOutliers)
{
    std::vector<double> vals(1000, 1.0);
    vals[0] = 100.0; // single outlier
    const auto p99 = calibratePercentile(vals, 99.0, 8, true);
    EXPECT_NEAR(p99.scale, 1.0 / 127.0, 1e-9);
    const auto pmax = calibratePercentile(vals, 100.0, 8, true);
    EXPECT_NEAR(pmax.scale, 100.0 / 127.0, 1e-9);
}

TEST(Calibration, PercentileValidation)
{
    const std::vector<double> vals{1.0};
    EXPECT_THROW(calibratePercentile(vals, 0.0, 8, true), FatalError);
    EXPECT_THROW(calibratePercentile(vals, 101.0, 8, true), FatalError);
    EXPECT_THROW(calibrateAbsmax({}, 8, true), FatalError);
}

TEST(Calibration, RunningPercentileAveragesBatches)
{
    PercentileCalibrator cal(100.0, 8, true);
    const std::vector<double> b1{1.0, 0.5};
    const std::vector<double> b2{3.0, 0.1};
    cal.addBatch(b1);
    cal.addBatch(b2);
    EXPECT_EQ(cal.batches(), 2u);
    const auto p = cal.finish();
    EXPECT_NEAR(p.scale, 2.0 / 127.0, 1e-9); // mean(1, 3) / 127
    PercentileCalibrator empty(99.999, 8, true);
    EXPECT_THROW(empty.finish(), FatalError);
}

TEST(Calibration, PerChannelAbsmax)
{
    const std::vector<double> vals{1.0, -4.0, 0.5, 0.25};
    const auto params = calibratePerChannelAbsmax(vals, 2, 8, true);
    ASSERT_EQ(params.size(), 2u);
    EXPECT_NEAR(params[0].scale, 4.0 / 127.0, 1e-12);
    EXPECT_NEAR(params[1].scale, 0.5 / 127.0, 1e-12);
}

TEST(Calibration, BiasCorrectionRecoversMeanShift)
{
    // Quantized outputs systematically 0.3 below float outputs in
    // channel 0 and 0.1 above in channel 1.
    std::vector<double> f;
    std::vector<double> q;
    Rng rng(8);
    for (int s = 0; s < 64; ++s) {
        const double base0 = rng.normal();
        const double base1 = rng.normal();
        f.push_back(base0);
        f.push_back(base1);
        q.push_back(base0 - 0.3);
        q.push_back(base1 + 0.1);
    }
    const auto corr = biasCorrection(f, q, 2);
    ASSERT_EQ(corr.size(), 2u);
    EXPECT_NEAR(corr[0], 0.3, 1e-9);
    EXPECT_NEAR(corr[1], -0.1, 1e-9);
    EXPECT_THROW(biasCorrection(f, q, 3), FatalError);
}

TEST(FixedPointRequant, MatchesDoubleWithinOneLsb)
{
    Rng rng(44);
    for (int trial = 0; trial < 200; ++trial) {
        const double mult = rng.uniformReal(1e-6, 0.99);
        const auto fp = quantizeMultiplier(mult);
        EXPECT_GE(fp.mantissa, 1 << 30);
        for (int i = 0; i < 20; ++i) {
            const int64_t acc = rng.uniformInt(-2000000, 2000000);
            const double exact = static_cast<double>(acc) * mult;
            const int32_t got = requantizeFixedPoint(acc, fp);
            EXPECT_NEAR(got, std::nearbyint(exact), 1.0)
                << "mult=" << mult << " acc=" << acc;
        }
    }
}

TEST(FixedPointRequant, ExactPowersOfTwo)
{
    const auto half = quantizeMultiplier(0.5);
    EXPECT_EQ(requantizeFixedPoint(10, half), 5);
    EXPECT_EQ(requantizeFixedPoint(-10, half), -5);
    // Rounding at the halfway point is away from zero.
    EXPECT_EQ(requantizeFixedPoint(3, half), 2);
    EXPECT_EQ(requantizeFixedPoint(-3, half), -2);
    const auto quarter = quantizeMultiplier(0.25);
    EXPECT_EQ(requantizeFixedPoint(100, quarter), 25);
}

TEST(FixedPointRequant, RejectsBadMultipliers)
{
    EXPECT_THROW(quantizeMultiplier(0.0), FatalError);
    EXPECT_THROW(quantizeMultiplier(-0.5), FatalError);
    EXPECT_THROW(quantizeMultiplier(3e9), FatalError);
}

TEST(FixedPointRequant, IntegerOnlyLayerMatchesFloatRequant)
{
    // The runtime's float requant path and the fixed-point path must
    // agree on quantized-layer outputs within 1 LSB of the output
    // format.
    Rng rng(45);
    QuantParams a;
    a.scale = 0.021;
    QuantParams w;
    w.scale = 0.013;
    QuantParams out;
    out.scale = 0.11;
    const double mult = requantizeMultiplier(a, w, out);
    const auto fp = quantizeMultiplier(mult);
    for (int i = 0; i < 500; ++i) {
        const int64_t acc = rng.uniformInt(-500000, 500000);
        const double f = static_cast<double>(acc) * mult;
        EXPECT_NEAR(requantizeFixedPoint(acc, fp), std::nearbyint(f),
                    1.0);
    }
}

TEST(Quantize, SmallerBitwidthNeverMoreAccurate)
{
    // Property: for absmax calibration on the same data, mean absolute
    // quantization error is non-increasing in bitwidth.
    Rng rng(15);
    std::vector<double> vals(512);
    for (auto &v : vals)
        v = rng.normal();
    double prev_err = 1e9;
    for (unsigned bits = 2; bits <= 8; ++bits) {
        const auto p = calibrateAbsmax(vals, bits, true);
        double err = 0.0;
        for (const double v : vals)
            err += std::abs(fakeQuantize(v, p) - v);
        err /= vals.size();
        EXPECT_LT(err, prev_err) << "bits=" << bits;
        prev_err = err;
    }
}

} // namespace
} // namespace mixgemm
