/**
 * @file
 * Robustness tests for the serving stack: cooperative cancellation at
 * macro-tile boundaries (partial output is zero-or-correct, an
 * untriggered token is bitwise transparent), the InferenceServer's
 * admission/shed/deadline/retry/degradation decisions pinned against a
 * VirtualClock in pump mode, the watchdog breaking a stalled worker in
 * threaded mode, and byte-for-byte decision-log determinism of the
 * seeded soak harness.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "gemm/mixgemm.h"
#include "gemm/reference.h"
#include "runtime/backend.h"
#include "runtime/qgraph.h"
#include "serve/server.h"
#include "store/store.h"
#include "tensor/packing.h"
#include "serve/soak.h"
#include "tensor/packing.h"

namespace mixgemm
{
namespace
{

// ---------------------------------------------------------------------
// Cancellation at the GEMM layer
// ---------------------------------------------------------------------

struct CancelProblem
{
    uint64_t m = 40, n = 40, k = 32;
    std::vector<int32_t> a, b;
    std::vector<int64_t> ref;
    BsGeometry geometry;
    BlockingParams blocking = BlockingParams::paperDefaults();

    explicit CancelProblem(uint64_t seed)
    {
        Rng rng(seed);
        a.resize(m * k);
        b.resize(k * n);
        for (auto &v : a)
            v = static_cast<int32_t>(rng.uniformInt(-8, 7));
        for (auto &v : b)
            v = static_cast<int32_t>(rng.uniformInt(-8, 7));
        ref = referenceGemmInt(a, b, m, n, k);
        DataSizeConfig config; // a8-w8 signed
        geometry = geometryForK(computeBsGeometry(config), k);
        // 16x16 macro tiles over 40x40: a 3x3 grid, 9 tiles, with
        // ragged edges — the cancellation granularity under test.
        blocking.mc = 16;
        blocking.nc = 16;
    }

    MixGemmResult run() const
    {
        return mixGemm(a, b, m, n, k, geometry, blocking);
    }
};

/** Every mc x nc C sub-block must be either fully correct or untouched
 * (all zero) — cancellation must never publish a half-written tile. */
void
expectBlocksZeroOrCorrect(const CancelProblem &p, const MixGemmResult &r)
{
    ASSERT_EQ(r.c.size(), p.ref.size());
    uint64_t complete = 0;
    for (uint64_t i0 = 0; i0 < p.m; i0 += p.blocking.mc) {
        for (uint64_t j0 = 0; j0 < p.n; j0 += p.blocking.nc) {
            bool matches = true;
            bool zero = true;
            for (uint64_t i = i0; i < std::min(p.m, i0 + p.blocking.mc);
                 ++i) {
                for (uint64_t j = j0;
                     j < std::min(p.n, j0 + p.blocking.nc); ++j) {
                    const int64_t got = r.c[i * p.n + j];
                    matches &= got == p.ref[i * p.n + j];
                    zero &= got == 0;
                }
            }
            EXPECT_TRUE(matches || zero)
                << "tile at (" << i0 << "," << j0
                << ") is partially written";
            if (matches && !zero)
                ++complete;
        }
    }
    // Completed tiles always match the reference; untouched tiles are
    // zero (the random operands make an all-zero reference block
    // implausible), so the census must agree with the driver's count.
    EXPECT_EQ(complete, r.tiles_completed);
}

TEST(MixGemmCancel, UntriggeredTokenBitwiseTransparent)
{
    CancelProblem p(101);
    for (const unsigned threads : {1u, 3u, 8u}) {
        for (const KernelMode mode :
             {KernelMode::Fast, KernelMode::Modeled}) {
            p.blocking.threads = threads;
            p.blocking.kernel_mode = mode;
            p.blocking.cancel = nullptr;
            const MixGemmResult plain = p.run();

            CancelSource source;
            const CancelToken token = source.token();
            p.blocking.cancel = &token;
            const MixGemmResult tracked = p.run();
            p.blocking.cancel = nullptr;

            ASSERT_EQ(tracked.c, plain.c)
                << "threads=" << threads;
            EXPECT_EQ(tracked.counters.all(), plain.counters.all());
            EXPECT_TRUE(tracked.status.ok());
            EXPECT_EQ(tracked.tiles_total, 9u);
            EXPECT_EQ(tracked.tiles_completed, tracked.tiles_total);
            EXPECT_EQ(plain.c, p.ref);
        }
    }
}

TEST(MixGemmCancel, CancelAfterTwoPollsIsDeterministicSerially)
{
    CancelProblem p(102);
    p.blocking.threads = 1;
    CancelSource source;
    source.setPollHook([&source](uint64_t poll) {
        if (poll >= 2)
            source.cancel();
    });
    const CancelToken token = source.token();
    p.blocking.cancel = &token;
    const MixGemmResult r = p.run();
    EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
    EXPECT_EQ(r.tiles_total, 9u);
    // Serial workers poll once before each tile: polls 0 and 1 admit
    // tiles 0 and 1, poll 2 trips.
    EXPECT_EQ(r.tiles_completed, 2u);
    expectBlocksZeroOrCorrect(p, r);
}

TEST(MixGemmCancel, CancelledNeverWritesOutsideCompletedTiles)
{
    CancelProblem p(103);
    for (const unsigned threads : {1u, 3u, 8u}) {
        for (const KernelMode mode :
             {KernelMode::Fast, KernelMode::Modeled}) {
            CancelSource source;
            source.setPollHook([&source](uint64_t poll) {
                if (poll >= 3)
                    source.cancel();
            });
            const CancelToken token = source.token();
            p.blocking.threads = threads;
            p.blocking.kernel_mode = mode;
            p.blocking.cancel = &token;
            const MixGemmResult r = p.run();
            p.blocking.cancel = nullptr;
            EXPECT_EQ(r.status.code(), StatusCode::kCancelled)
                << "threads=" << threads;
            EXPECT_LT(r.tiles_completed, r.tiles_total);
            expectBlocksZeroOrCorrect(p, r);
        }
    }
}

TEST(MixGemmCancel, ExpiredDeadlineTripsBeforeFirstTile)
{
    CancelProblem p(104);
    VirtualClock clock(10);
    CancelSource source;
    source.setDeadline(5, clock); // already in the past
    const CancelToken token = source.token();
    p.blocking.cancel = &token;
    const MixGemmResult r = p.run();
    EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(r.tiles_completed, 0u);
    for (const int64_t v : r.c)
        ASSERT_EQ(v, 0);
}

TEST(MixGemmCancel, WorkerExceptionSurfacesAsInternal)
{
    // Satellite (a): a throw escaping a parallel-region task must fail
    // the checked entry point with kInternal, not unwind the process.
    CancelProblem p(105);
    for (const unsigned threads : {1u, 3u}) {
        CancelSource source;
        source.setPollHook([](uint64_t poll) {
            if (poll >= 1)
                throw std::runtime_error("injected worker failure");
        });
        const CancelToken token = source.token();
        p.blocking.threads = threads;
        p.blocking.cancel = &token;
        const CompressedA ca(p.a, p.m, p.k, p.geometry);
        const CompressedB cb(p.b, p.k, p.n, p.geometry);
        const auto r = tryMixGemm(ca, cb, p.blocking);
        p.blocking.cancel = nullptr;
        ASSERT_FALSE(r.ok()) << "threads=" << threads;
        EXPECT_EQ(r.status().code(), StatusCode::kInternal);
    }
}

// ---------------------------------------------------------------------
// InferenceServer decisions (pump mode, virtual time)
// ---------------------------------------------------------------------

constexpr uint64_t kK = 32; ///< linear-layer input width
constexpr uint64_t kN = 8;  ///< linear-layer output width

/** One quantized linear layer — cheap enough that server tests run in
 * microseconds, real enough to flow through the Mix-GEMM backend. */
QuantizedGraph
makeLinearGraph(uint64_t seed)
{
    Rng rng(seed);
    QNode lin;
    lin.kind = QNode::Kind::kLinear;
    lin.spec.in_c = static_cast<unsigned>(kK);
    lin.spec.out_c = static_cast<unsigned>(kN);
    lin.spec.kh = lin.spec.kw = 1;
    lin.spec.in_h = lin.spec.in_w = 1;
    lin.weights_q.resize(kK * kN);
    for (auto &w : lin.weights_q)
        w = static_cast<int32_t>(rng.uniformInt(-20, 20));
    lin.bias.assign(kN, 0.25);
    lin.a_params = QuantParams{0.05, 0, 8, true};
    lin.w_params = QuantParams{0.05, 0, 8, true};
    return QuantizedGraph({lin});
}

Tensor<double>
makeInput(uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> data(kK);
    for (auto &v : data)
        v = rng.uniformReal(-1.0, 1.0);
    return Tensor<double>({1, kK}, std::move(data));
}

ServerOptions
pumpOptions(VirtualClock &clock)
{
    ServerOptions options;
    options.workers = 0;
    options.virtual_clock = &clock;
    options.degradation.enabled = false;
    options.queue_capacity = 8;
    return options;
}

uint64_t
registerLinear(InferenceServer &server, unsigned tiers = 1)
{
    std::vector<TierSpec> ladder;
    const char *labels[] = {"full", "eco", "min"};
    for (unsigned t = 0; t < tiers; ++t) {
        TierSpec tier;
        tier.graph = makeLinearGraph(7);
        tier.label = labels[t % 3];
        ladder.push_back(std::move(tier));
    }
    auto id = server.registerGraph("lin", std::move(ladder), {1, kK});
    EXPECT_TRUE(id.ok()) << id.status().toString();
    return *id;
}

bool
logContains(const InferenceServer &server, const std::string &needle)
{
    for (const std::string &line : server.decisionLog())
        if (line.find(needle) != std::string::npos)
            return true;
    return false;
}

ServeRequest
makeRequest(uint64_t graph_id, int priority = 0,
            uint64_t deadline_ns = 0)
{
    ServeRequest request;
    request.graph_id = graph_id;
    request.input = makeInput(11);
    request.priority = priority;
    request.deadline_ns = deadline_ns;
    return request;
}

TEST(Server, RejectsUnknownGraphAndBadShape)
{
    VirtualClock clock;
    InferenceServer server(pumpOptions(clock));
    const uint64_t id = registerLinear(server);

    auto bad_id = server.submit(makeRequest(id + 999));
    EXPECT_EQ(bad_id.get().status.code(), StatusCode::kNotFound);

    ServeRequest bad_shape = makeRequest(id);
    bad_shape.input = Tensor<double>({kK}); // rank 1, not {1, kK}
    auto bad = server.submit(std::move(bad_shape));
    EXPECT_EQ(bad.get().status.code(), StatusCode::kInvalidArgument);

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.rejected_invalid, 2u);
    EXPECT_EQ(stats.admitted, 0u);
    EXPECT_TRUE(logContains(server, "reject_invalid seq=0"));
}

TEST(Server, ShedsLowestPriorityForHigherAndRejectsEqual)
{
    VirtualClock clock;
    ServerOptions options = pumpOptions(clock);
    options.queue_capacity = 2;
    InferenceServer server(options);
    const uint64_t id = registerLinear(server);

    auto low = server.submit(makeRequest(id, /*priority=*/0));   // seq 0
    auto mid = server.submit(makeRequest(id, /*priority=*/1));   // seq 1
    // Queue full. A higher-priority arrival displaces the lowest.
    auto high = server.submit(makeRequest(id, /*priority=*/2));  // seq 2
    EXPECT_EQ(low.get().status.code(), StatusCode::kResourceExhausted);
    EXPECT_TRUE(logContains(server, "shed seq=0 prio=0 by=2"));

    // Equal priority never sheds queued work (FIFO per class): the
    // incoming request is the one rejected, queue untouched.
    auto equal = server.submit(makeRequest(id, /*priority=*/1)); // seq 3
    EXPECT_EQ(equal.get().status.code(),
              StatusCode::kResourceExhausted);
    EXPECT_TRUE(logContains(server, "reject_full seq=3"));

    EXPECT_EQ(server.pump(10), 2u);
    EXPECT_TRUE(mid.get().status.ok());
    EXPECT_TRUE(high.get().status.ok());

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.admitted, 3u);
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_EQ(stats.rejected_full, 1u);
    EXPECT_EQ(stats.completed_ok, 2u);
}

TEST(Server, DeadlineExpiresAtSubmitInQueueAndAfterLateCompletion)
{
    VirtualClock clock;
    InferenceServer server(pumpOptions(clock));
    const uint64_t id = registerLinear(server);
    clock.advanceNs(1000);

    // Already expired at submission: rejected before queueing.
    auto at_submit = server.submit(makeRequest(id, 0, /*deadline=*/500));
    EXPECT_EQ(at_submit.get().status.code(),
              StatusCode::kDeadlineExceeded);

    // Expires while queued: pump finds it dead before dispatch.
    auto in_queue = server.submit(makeRequest(id, 0, clock.nowNs() + 10));
    clock.advanceNs(100);
    EXPECT_EQ(server.pump(1), 1u);
    EXPECT_EQ(in_queue.get().status.code(),
              StatusCode::kDeadlineExceeded);

    // Completes, but after its deadline (the modeled service time
    // overruns it): a late answer is a miss and the output is
    // discarded.
    auto late = server.submit(makeRequest(id, 0, clock.nowNs() + 100));
    EXPECT_EQ(server.pump(1), 1u);
    const ServeResponse response = late.get();
    EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(response.output.empty());
    EXPECT_GT(response.report.attempts, 0u);

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.expired_submit, 1u);
    EXPECT_EQ(stats.expired_queue, 1u);
    EXPECT_EQ(stats.deadline_exceeded, 2u);
    EXPECT_TRUE(logContains(server, "expire_submit seq=0"));
    EXPECT_TRUE(logContains(server, "expire_queue seq=1"));
}

TEST(Server, ServingPathMatchesDirectExecutionBitwise)
{
    // Acceptance criterion: with no deadline armed the serving path —
    // queue, CancelToken plumbing, retry scaffolding — must be bitwise
    // transparent: identical logits to running the graph directly.
    const QuantizedGraph graph = makeLinearGraph(7);
    const Tensor<double> input = makeInput(11);
    for (const KernelMode mode :
         {KernelMode::Fast, KernelMode::Modeled}) {
        MixGemmBackend direct(1, mode);
        const std::vector<double> expected = graph.run(input, direct);

        VirtualClock clock;
        ServerOptions options = pumpOptions(clock);
        options.kernel_mode = mode;
        InferenceServer server(options);
        const uint64_t id = registerLinear(server);
        ServeRequest request = makeRequest(id);
        request.input = input;
        auto future = server.submit(std::move(request));
        EXPECT_EQ(server.pump(1), 1u);
        const ServeResponse response = future.get();
        ASSERT_TRUE(response.status.ok())
            << response.status.toString();
        EXPECT_EQ(response.output, expected);
        EXPECT_EQ(response.report.attempts, 1u);
        EXPECT_EQ(response.report.tier, 0u);
    }
}

TEST(Server, RetriesTransientFailureThenSucceeds)
{
    VirtualClock clock;
    ServerOptions options = pumpOptions(clock);
    options.max_retries = 2;
    options.retry_backoff_ns = 50;
    options.execution_hook = [](uint64_t, unsigned attempt,
                                const CancelToken &) {
        return attempt == 1 ? Status::unavailable("transient")
                            : Status();
    };
    InferenceServer server(options);
    const uint64_t id = registerLinear(server);
    auto future = server.submit(makeRequest(id));
    EXPECT_EQ(server.pump(1), 1u);
    const ServeResponse response = future.get();
    EXPECT_TRUE(response.status.ok()) << response.status.toString();
    EXPECT_EQ(response.report.attempts, 2u);
    EXPECT_EQ(server.stats().retries, 1u);
    EXPECT_TRUE(logContains(server, "retry seq=0 attempt=2"));
}

TEST(Server, RetryBudgetCapsAttempts)
{
    VirtualClock clock;
    ServerOptions options = pumpOptions(clock);
    options.max_retries = 2;
    options.retry_backoff_ns = 50;
    options.execution_hook = [](uint64_t, unsigned,
                                const CancelToken &) {
        return Status::unavailable("always down");
    };
    InferenceServer server(options);
    const uint64_t id = registerLinear(server);
    auto future = server.submit(makeRequest(id));
    server.pump(1);
    const ServeResponse response = future.get();
    EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
    EXPECT_EQ(response.report.attempts, 3u); // 1 try + 2 retries
    EXPECT_EQ(server.stats().completed_ok, 0u);
    EXPECT_EQ(server.stats().retries, 2u);
}

TEST(Server, RetryNotTakenWhenBackoffCannotFitDeadline)
{
    VirtualClock clock;
    ServerOptions options = pumpOptions(clock);
    options.max_retries = 5;
    options.retry_backoff_ns = 1'000'000'000; // dwarfs any deadline here
    options.execution_hook = [](uint64_t, unsigned,
                                const CancelToken &) {
        return Status::unavailable("always down");
    };
    InferenceServer server(options);
    const uint64_t id = registerLinear(server);
    auto future =
        server.submit(makeRequest(id, 0, clock.nowNs() + 100'000));
    server.pump(1);
    const ServeResponse response = future.get();
    EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
    EXPECT_EQ(response.report.attempts, 1u);
    EXPECT_EQ(server.stats().retries, 0u);
}

TEST(Server, NonRetriableFailureIsNotRetried)
{
    VirtualClock clock;
    ServerOptions options = pumpOptions(clock);
    options.max_retries = 5;
    options.execution_hook = [](uint64_t, unsigned,
                                const CancelToken &) {
        return Status::internal("wedged invariant");
    };
    InferenceServer server(options);
    const uint64_t id = registerLinear(server);
    auto future = server.submit(makeRequest(id));
    server.pump(1);
    const ServeResponse response = future.get();
    EXPECT_EQ(response.status.code(), StatusCode::kInternal);
    EXPECT_EQ(response.report.attempts, 1u);
}

TEST(Server, DegradesUnderQueuePressureThenRecovers)
{
    VirtualClock clock;
    ServerOptions options = pumpOptions(clock);
    options.queue_capacity = 4;
    options.degradation.enabled = true;
    options.degradation.high_watermark = 0.75;
    options.degradation.low_watermark = 0.25;
    options.degradation.min_dwell_ns = 0;
    InferenceServer server(options);
    const uint64_t id = registerLinear(server, /*tiers=*/2);

    // Admission evaluates the level before each push: the 4th submit
    // sees depth 3/4 >= 0.75 and degrades, so it lands on tier 1.
    std::vector<std::future<ServeResponse>> futures;
    for (int i = 0; i < 4; ++i)
        futures.push_back(server.submit(makeRequest(id)));
    EXPECT_EQ(server.pump(10), 4u);
    for (int i = 0; i < 4; ++i) {
        const ServeResponse response = futures[i].get();
        ASSERT_TRUE(response.status.ok());
        EXPECT_EQ(response.report.tier, i < 3 ? 0u : 1u) << i;
    }
    // The drained queue recovers (evaluated after each execution), so
    // the next arrival is back on the full-precision rung.
    auto after = server.submit(makeRequest(id));
    server.pump(1);
    EXPECT_EQ(after.get().report.tier, 0u);

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.degrade_steps, 1u);
    EXPECT_EQ(stats.recover_steps, 1u);
    EXPECT_EQ(stats.degradation_level, 0u);
    EXPECT_EQ(stats.completed_by_tier.size(), 2u);
    EXPECT_EQ(stats.completed_by_tier[0], 4u);
    EXPECT_EQ(stats.completed_by_tier[1], 1u);
    EXPECT_TRUE(logContains(server, "degrade level=0->1"));
    EXPECT_TRUE(logContains(server, "recover level=1->0"));
}

TEST(Server, HysteresisDwellSuppressesRapidRecovery)
{
    VirtualClock clock;
    ServerOptions options = pumpOptions(clock);
    options.queue_capacity = 4;
    options.degradation.enabled = true;
    options.degradation.min_dwell_ns = 1'000'000;
    InferenceServer server(options);
    const uint64_t id = registerLinear(server, /*tiers=*/2);

    // Move past the initial dwell window so the first degrade can fire.
    clock.advanceNs(2'000'000);
    for (int i = 0; i < 4; ++i)
        server.submit(makeRequest(id));
    server.pump(10);
    EXPECT_EQ(server.stats().degrade_steps, 1u);
    // The queue is empty again, but the modeled service time of four
    // requests is far below the dwell: recovery must be suppressed and
    // new work keeps executing on the degraded rung.
    EXPECT_EQ(server.stats().recover_steps, 0u);
    auto still_eco = server.submit(makeRequest(id));
    server.pump(1);
    EXPECT_EQ(still_eco.get().report.tier, 1u);

    // Once the dwell has elapsed the pending recovery goes through.
    clock.advanceNs(2'000'000);
    auto recovered = server.submit(makeRequest(id));
    server.pump(1);
    EXPECT_EQ(recovered.get().report.tier, 0u);
    EXPECT_EQ(server.stats().recover_steps, 1u);
}

TEST(Server, LatencyP95TriggersDegradeWithoutQueuePressure)
{
    VirtualClock clock;
    ServerOptions options = pumpOptions(clock);
    options.queue_capacity = 64; // fill never reaches the watermark
    options.degradation.enabled = true;
    options.degradation.p95_high_ns = 1; // any completion trips it
    // The latency window resets at each level change, so without a
    // dwell the empty queue would recover immediately; the dwell holds
    // the degraded level long enough for the next arrival to see it.
    options.degradation.min_dwell_ns = 10'000;
    InferenceServer server(options);
    const uint64_t id = registerLinear(server, /*tiers=*/2);

    clock.advanceNs(100'000); // move past the initial dwell window
    auto first = server.submit(makeRequest(id));
    server.pump(1);
    // The completion put a sample in the latency window, degrading the
    // server at the post-execution evaluation even though the queue
    // never filled.
    EXPECT_EQ(first.get().report.tier, 0u);
    EXPECT_EQ(server.stats().degrade_steps, 1u);
    auto second = server.submit(makeRequest(id));
    server.pump(1);
    EXPECT_EQ(second.get().report.tier, 1u);
}

TEST(Server, ShutdownFailsQueuedWorkAndRefusesNew)
{
    VirtualClock clock;
    InferenceServer server(pumpOptions(clock));
    const uint64_t id = registerLinear(server);
    auto queued = server.submit(makeRequest(id));
    server.shutdown();
    EXPECT_EQ(queued.get().status.code(), StatusCode::kUnavailable);
    auto after = server.submit(makeRequest(id));
    EXPECT_EQ(after.get().status.code(), StatusCode::kUnavailable);
    server.shutdown(); // idempotent
}

// ---------------------------------------------------------------------
// Watchdog (threaded mode, wall clock)
// ---------------------------------------------------------------------

TEST(Server, WatchdogCancelsStuckWorkerAndServiceContinues)
{
    ServerOptions options;
    options.workers = 1;
    options.queue_capacity = 4;
    options.degradation.enabled = false;
    options.max_retries = 0;
    options.watchdog_timeout_ns = 40'000'000; // 40 ms
    options.watchdog_poll_ns = 5'000'000;
    // Request 0 wedges its worker in a loop that never polls the
    // token (no heartbeat) until cancelled — exactly the stall the
    // watchdog exists to break. Everything after runs normally.
    options.execution_hook = [](uint64_t seq, unsigned,
                                const CancelToken &token) {
        if (seq != 0)
            return Status();
        while (!token.cancelled())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return token.status();
    };
    InferenceServer server(options);
    const uint64_t id = registerLinear(server);

    auto stuck = server.submit(makeRequest(id));
    auto next = server.submit(makeRequest(id));
    const ServeResponse stuck_response = stuck.get();
    EXPECT_EQ(stuck_response.status.code(), StatusCode::kUnavailable);
    EXPECT_EQ(stuck_response.report.attempts, 1u);
    // The recycled worker keeps serving.
    EXPECT_TRUE(next.get().status.ok());
    EXPECT_GE(server.stats().watchdog_cancels, 1u);
    EXPECT_TRUE(logContains(server, "watchdog_cancel worker=0 seq=0"));
    server.shutdown();
}

// ---------------------------------------------------------------------
// Lazy precision rungs + packed-weight store
// ---------------------------------------------------------------------

/** A deferred rung whose builder counts its invocations — the pack-cost
 * regression gate for registration and the refault witness later. */
TierSpec
lazyTier(const char *label, uint64_t seed, int *builds)
{
    TierSpec tier;
    tier.label = label;
    tier.a_bits = 4;
    tier.w_bits = 4;
    tier.build = [seed, builds] {
        if (builds)
            ++*builds;
        return makeLinearGraph(seed);
    };
    return tier;
}

TierSpec
eagerTier(const char *label, uint64_t seed)
{
    TierSpec tier;
    tier.graph = makeLinearGraph(seed);
    tier.label = label;
    return tier;
}

/** Degradation tuned to step one level per admission: any queue depth
 * is "pressure" and recovery can never fire. */
ServerOptions
alwaysDegradeOptions(VirtualClock &clock)
{
    ServerOptions options = pumpOptions(clock);
    options.degradation.enabled = true;
    options.degradation.high_watermark = 0.0;
    options.degradation.low_watermark = -1.0;
    options.degradation.min_dwell_ns = 0;
    return options;
}

TEST(LazyLadder, RegistrationBuildsAndPacksNoLazyRungs)
{
    VirtualClock clock;
    InferenceServer server(pumpOptions(clock));
    int builds = 0;
    std::vector<TierSpec> ladder;
    ladder.push_back(eagerTier("full", 7));
    ladder.push_back(lazyTier("eco", 7, &builds));
    ladder.push_back(lazyTier("min", 7, &builds));
    const PackCounters before = packCounters();
    auto id =
        server.registerGraph("lin", std::move(ladder), {1, kK});
    ASSERT_TRUE(id.ok()) << id.status().toString();
    const PackCounters after = packCounters();
    // The satellite regression: registering a 3-rung ladder must not
    // quantize or pack the rungs the load pattern never reaches — the
    // dry run prices rung 0 on a MAC-counting backend, no packing.
    EXPECT_EQ(builds, 0);
    EXPECT_EQ(after.b_packs, before.b_packs);
    EXPECT_EQ(after.a_packs, before.a_packs);
    EXPECT_EQ(after.cluster_builds, before.cluster_builds);

    // An undegraded request runs rung 0 and still touches no lazy rung.
    auto future = server.submit(makeRequest(*id));
    EXPECT_EQ(server.pump(1), 1u);
    EXPECT_TRUE(future.get().status.ok());
    EXPECT_EQ(builds, 0);
    EXPECT_EQ(server.stats().rung_materializations, 0u);
}

TEST(LazyLadder, LazyRungZeroIsRejected)
{
    VirtualClock clock;
    InferenceServer server(pumpOptions(clock));
    std::vector<TierSpec> ladder;
    ladder.push_back(lazyTier("full", 7, nullptr));
    auto id = server.registerGraph("bad", std::move(ladder), {1, kK});
    ASSERT_FALSE(id.ok());
    EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument);
}

TEST(LazyLadder, MaterializesOnFirstDegradedRequestOnly)
{
    VirtualClock clock;
    InferenceServer server(alwaysDegradeOptions(clock));
    int builds = 0;
    std::vector<TierSpec> ladder;
    ladder.push_back(eagerTier("full", 7));
    ladder.push_back(lazyTier("eco", 7, &builds));
    const uint64_t id = [&] {
        auto r = server.registerGraph("lin", std::move(ladder), {1, kK});
        EXPECT_TRUE(r.ok());
        return *r;
    }();

    // Admission degrades to level 1 before the push, so the first
    // request already lands on the lazy rung and materializes it.
    auto first = server.submit(makeRequest(id));
    EXPECT_EQ(server.pump(1), 1u);
    const ServeResponse r1 = first.get();
    ASSERT_TRUE(r1.status.ok()) << r1.status.toString();
    EXPECT_EQ(r1.report.tier, 1u);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(server.stats().rung_materializations, 1u);
    EXPECT_EQ(server.stats().lazy_rungs_resident, 1u);
    EXPECT_GT(server.stats().lazy_resident_bytes, 0u);
    EXPECT_TRUE(logContains(server, "materialize graph=lin tier=1"));

    // The second degraded request reuses the resident rung.
    auto second = server.submit(makeRequest(id));
    EXPECT_EQ(server.pump(1), 1u);
    const ServeResponse r2 = second.get();
    ASSERT_TRUE(r2.status.ok());
    EXPECT_EQ(r2.report.tier, 1u);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(server.stats().rung_materializations, 1u);
    // Same rung, same input: bitwise-identical logits.
    EXPECT_EQ(r2.output, r1.output);
}

TEST(LazyLadder, BudgetEvictsLruRungAndRefaultIsBitwiseIdentical)
{
    // Two graphs pool one tiny rung budget: every materialization
    // evicts the other graph's lazy rung, and a refault must rebuild
    // deterministically. The whole scenario is run twice; virtual time
    // makes the decision logs byte-identical.
    const auto scenario = [](std::vector<std::string> *log_out) {
        VirtualClock clock;
        ServerOptions options = alwaysDegradeOptions(clock);
        options.rung_budget_bytes = 1;
        InferenceServer server(options);
        int builds_g1 = 0;
        int builds_g2 = 0;
        std::vector<TierSpec> ladder1;
        ladder1.push_back(eagerTier("full", 7));
        ladder1.push_back(lazyTier("eco", 7, &builds_g1));
        std::vector<TierSpec> ladder2;
        ladder2.push_back(eagerTier("full", 8));
        ladder2.push_back(lazyTier("eco", 8, &builds_g2));
        const uint64_t g1 =
            *server.registerGraph("g1", std::move(ladder1), {1, kK});
        const uint64_t g2 =
            *server.registerGraph("g2", std::move(ladder2), {1, kK});

        auto run = [&](uint64_t graph_id) {
            auto future = server.submit(makeRequest(graph_id));
            EXPECT_EQ(server.pump(1), 1u);
            ServeResponse response = future.get();
            EXPECT_TRUE(response.status.ok())
                << response.status.toString();
            EXPECT_EQ(response.report.tier, 1u);
            return response.output;
        };

        const std::vector<double> out1 = run(g1);
        EXPECT_EQ(builds_g1, 1);
        // g2's materialization blows the budget; g1's rung (LRU, not
        // current) is evicted while the rung being served is kept.
        const std::vector<double> out2 = run(g2);
        EXPECT_EQ(builds_g2, 1);
        EXPECT_EQ(server.stats().rung_evictions, 1u);
        EXPECT_EQ(server.stats().lazy_rungs_resident, 1u);
        EXPECT_TRUE(logContains(server, "evict_rung graph=g1 tier=1"));
        // Refault: g1 rebuilds (builder runs again) and the logits are
        // bitwise identical to the pre-eviction run.
        const std::vector<double> out1b = run(g1);
        EXPECT_EQ(builds_g1, 2);
        EXPECT_EQ(server.stats().rung_materializations, 3u);
        EXPECT_EQ(server.stats().rung_evictions, 2u);
        EXPECT_EQ(out1b, out1);
        EXPECT_NE(out1, out2); // different weights, sanity
        if (log_out)
            *log_out = server.decisionLog();
    };

    std::vector<std::string> log_a;
    std::vector<std::string> log_b;
    scenario(&log_a);
    scenario(&log_b);
    ASSERT_GT(log_a.size(), 0u);
    EXPECT_EQ(log_a, log_b);
}

TEST(LazyLadder, WeightStoreMakesRefaultPackFree)
{
    // With a content-addressed store attached, a refaulted rung's
    // weights resolve from the resident cache: the rebuild re-derives
    // the same content key, so no B packing or cluster expansion runs.
    StoreOptions store_options;
    store_options.dir = ""; // resident cache only — no disk in this test
    PackedWeightStore store(store_options);

    VirtualClock clock;
    ServerOptions options = alwaysDegradeOptions(clock);
    options.weight_store = &store;
    options.rung_budget_bytes = 1; // evict after every materialization
    InferenceServer server(options);
    int builds_g1 = 0;
    int builds_g2 = 0;
    std::vector<TierSpec> ladder1;
    ladder1.push_back(eagerTier("full", 7));
    ladder1.push_back(lazyTier("eco", 7, &builds_g1));
    std::vector<TierSpec> ladder2;
    ladder2.push_back(eagerTier("full", 8));
    ladder2.push_back(lazyTier("eco", 8, &builds_g2));
    const uint64_t g1 =
        *server.registerGraph("g1", std::move(ladder1), {1, kK});
    const uint64_t g2 =
        *server.registerGraph("g2", std::move(ladder2), {1, kK});

    auto run = [&](uint64_t graph_id) {
        auto future = server.submit(makeRequest(graph_id));
        EXPECT_EQ(server.pump(1), 1u);
        ServeResponse response = future.get();
        EXPECT_TRUE(response.status.ok()) << response.status.toString();
        return response.output;
    };

    const std::vector<double> out1 = run(g1); // materialize + pack
    run(g2);                                  // evicts g1's rung
    EXPECT_EQ(server.stats().rung_evictions, 1u);

    // Refault g1: the builder re-runs, but the store serves the packed
    // B panels from its resident cache — zero B packs. (A operands are
    // packed per call and still expand, so only b_packs is gated.)
    const PackCounters before = packCounters();
    const std::vector<double> out1b = run(g1);
    const PackCounters after = packCounters();
    EXPECT_EQ(builds_g1, 2);
    EXPECT_EQ(after.b_packs, before.b_packs);
    EXPECT_EQ(out1b, out1);
    EXPECT_GE(store.stats().hits, 1u);
}

// ---------------------------------------------------------------------
// Soak harness determinism
// ---------------------------------------------------------------------

SoakConfig
quickSoak(uint64_t seed)
{
    SoakConfig config;
    config.seed = seed;
    config.duration_s = 0.25;
    config.ladder_tiers = 2;
    return config;
}

TEST(Soak, SameSeedProducesByteIdenticalDecisionLogs)
{
    const SoakConfig config = quickSoak(99);
    const SoakResult first = runServeSoak(config);
    const SoakResult second = runServeSoak(config);
    ASSERT_GT(first.decision_log.size(), 0u);
    EXPECT_EQ(first.decision_log, second.decision_log);
    EXPECT_EQ(first.decision_hash, second.decision_hash);
    EXPECT_EQ(first.stats.submitted, second.stats.submitted);
    EXPECT_EQ(first.stats.completed_ok, second.stats.completed_ok);
    EXPECT_EQ(first.stats.shed, second.stats.shed);
    EXPECT_GT(first.stats.completed_ok, 0u);
    EXPECT_GT(first.goodput_rps, 0.0);
}

TEST(Soak, DecisionLogEntriesCarryMonotonicSequenceAndTimestamp)
{
    const SoakResult result = runServeSoak(quickSoak(7));
    ASSERT_GT(result.decision_log.size(), 2u);
    for (size_t i = 0; i < result.decision_log.size(); ++i) {
        const std::string &line = result.decision_log[i];
        const std::string prefix = "#" + std::to_string(i) + " t=";
        EXPECT_EQ(line.rfind(prefix, 0), 0u)
            << "line " << i << ": " << line;
    }
}

TEST(Soak, DifferentSeedsDiverge)
{
    const SoakResult a = runServeSoak(quickSoak(1));
    const SoakResult b = runServeSoak(quickSoak(2));
    EXPECT_NE(a.decision_hash, b.decision_hash);
}

TEST(Soak, EveryDecisionLogEntryIsTenantStamped)
{
    // Tenancy on or off, terminal/degrade/shed/admit decisions carry
    // a trailing tenant annotation — the forensic key the isolation
    // plane and the flight recorder join on.
    const SoakResult result = runServeSoak(quickSoak(31));
    size_t stamped = 0;
    for (const std::string &line : result.decision_log) {
        const bool lifecycle =
            line.find(" admit seq=") != std::string::npos ||
            line.find(" done seq=") != std::string::npos ||
            line.find(" shed seq=") != std::string::npos ||
            line.find(" expire_queue seq=") != std::string::npos ||
            line.find(" retry seq=") != std::string::npos;
        if (!lifecycle)
            continue;
        EXPECT_NE(line.find(" tenant="), std::string::npos) << line;
        ++stamped;
    }
    EXPECT_GT(stamped, 0u);
}

TEST(Soak, PerClassAccountingIdentityIncludesQuotaAndDrainBuckets)
{
    // The identity documented on PriorityClassStats, with the tenancy
    // buckets live: a quota-storm soak drives mass rate rejections and
    // a graceful drain, and every class must still balance.
    SoakConfig config = quickSoak(17);
    config.tenant_scenario = "quota-storm";
    config.graceful_drain = true;
    const SoakResult result = runServeSoak(config);
    EXPECT_GT(result.stats.rejected_rate, 0u);
    ASSERT_FALSE(result.stats.by_priority.empty());
    for (const auto &[priority, cls] : result.stats.by_priority) {
        EXPECT_EQ(cls.submitted,
                  cls.completed_ok + cls.shed + cls.rejected_full +
                      cls.rejected_invalid + cls.rejected_closed +
                      cls.rejected_quota + cls.rejected_draining +
                      cls.expired_submit + cls.deadline_exceeded +
                      cls.cancelled + cls.failed)
            << "class p" << priority;
    }
}

TEST(Soak, WeightedFairnessContractHoldsUnderSaturation)
{
    // Satellite fairness contract: 10:1 weights, equal offered load,
    // saturated bounded lanes -> per-tenant goodput within ±5 % of the
    // weight split, and the run replays byte-identically.
    SoakConfig config;
    config.seed = 43;
    config.duration_s = 0.75;
    config.arrival_hz = 6000.0;
    config.burst_every_s = 0.0;
    config.oversized_prob = 0.0;
    config.bad_graph_prob = 0.0;
    config.no_deadline_prob = 1.0;
    config.priority_levels = 1;
    config.queue_capacity = 32;
    config.degradation.enabled = false;
    config.ladder_tiers = 1;
    config.tenants = 2;
    config.tenancy.enabled = true;
    config.tenancy.brownout.enabled = false;
    TenantPolicy heavy;
    heavy.weight = 10;
    heavy.max_queue = 16;
    TenantPolicy light;
    light.weight = 1;
    light.max_queue = 16;
    config.tenancy.tenants["tenant0"] = heavy;
    config.tenancy.tenants["tenant1"] = light;

    const SoakResult first = runServeSoak(config);
    const SoakResult second = runServeSoak(config);
    EXPECT_EQ(first.decision_hash, second.decision_hash);
    const double heavy_ok = static_cast<double>(
        first.stats.by_tenant.at("tenant0").completed_ok);
    const double light_ok = static_cast<double>(
        first.stats.by_tenant.at("tenant1").completed_ok);
    ASSERT_GT(heavy_ok, 0.0);
    ASSERT_GT(light_ok, 0.0);
    const double share = heavy_ok / (heavy_ok + light_ok);
    EXPECT_GE(share, (10.0 / 11.0) * 0.95);
    EXPECT_LE(share, (10.0 / 11.0) * 1.05);
}

TEST(Soak, AdversarialArrivalsAreRejectedWithoutDisturbingService)
{
    SoakConfig config = quickSoak(5);
    config.oversized_prob = 0.15;
    config.bad_graph_prob = 0.15;
    const SoakResult result = runServeSoak(config);
    EXPECT_GT(result.stats.rejected_invalid, 0u);
    EXPECT_GT(result.stats.completed_ok, 0u);
    const std::string json = result.toJson();
    for (const char *key :
         {"\"stats\"", "\"decision_hash\"", "\"goodput_rps\"",
          "\"latency_ns\"", "\"completed_ok\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
}

} // namespace
} // namespace mixgemm
