/**
 * @file
 * Tests for the PTQ pipeline and QuantizedGraph serialization:
 * 8-bit PTQ must track the float network closely without retraining,
 * aggressive PTQ must collapse where QAT survives (the paper's
 * motivation for QAT), bias correction must not hurt, and graphs must
 * round-trip exactly through the text format.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/dataset.h"
#include "nn/qat.h"
#include "runtime/backend.h"
#include "runtime/ptq.h"
#include "runtime/qgraph.h"

namespace mixgemm
{
namespace
{

/** Shared fixtures: one float training run, reused by every test. */
struct PtqFixture
{
    PatternDataset train{480, 123};
    PatternDataset test{160, 777};
    PatternDataset calib{64, 999};
    Network float_net = makeSmallCnn(QatConfig{false, 8, 8});
    double float_acc = 0.0;

    PtqFixture()
    {
        TrainConfig tc;
        train_loss = ::mixgemm::train(float_net, train, tc);
        float_acc = evaluate(float_net, test);
    }

    double train_loss = 0.0;
};

PtqFixture &
fixture()
{
    static PtqFixture f;
    return f;
}

TEST(Ptq, EightBitTracksFloatAccuracy)
{
    auto &f = fixture();
    ASSERT_GT(f.float_acc, 0.85);
    const auto graph = buildPtqGraph(f.float_net, f.calib);
    NaiveBackend backend;
    const double acc = graph.evaluate(f.test, backend);
    EXPECT_GT(acc, f.float_acc - 0.05)
        << "8-bit PTQ must be nearly lossless";
}

TEST(Ptq, AggressivePtqCollapsesWhereQatSurvives)
{
    auto &f = fixture();
    PtqOptions opt;
    opt.a_bits = 3;
    opt.w_bits = 3;
    const auto ptq_graph = buildPtqGraph(f.float_net, f.calib, opt);
    NaiveBackend backend;
    const double ptq_acc = ptq_graph.evaluate(f.test, backend);

    Network qat_net = makeSmallCnn(QatConfig{true, 3, 3});
    copyParameters(f.float_net, qat_net);
    TrainConfig tc;
    tc.epochs = 4;
    train(qat_net, f.train, tc);
    const double qat_acc = evaluate(qat_net, f.test);

    EXPECT_GT(qat_acc, ptq_acc + 0.03)
        << "QAT must beat PTQ at 3 bits (paper Section II-A: PTQ is "
           "effective at 7-8 bits, QAT scales to narrower data sizes)";
}

TEST(Ptq, DegradesMonotonicallyAndCollapsesAtTwoBits)
{
    auto &f = fixture();
    NaiveBackend backend;
    double prev = 1.1;
    double acc2 = 0.0;
    for (const unsigned bits : {8u, 4u, 3u, 2u}) {
        PtqOptions opt;
        opt.a_bits = bits;
        opt.w_bits = bits;
        const auto graph = buildPtqGraph(f.float_net, f.calib, opt);
        const double acc = graph.evaluate(f.test, backend);
        EXPECT_LE(acc, prev + 0.02) << bits << " bits";
        prev = acc;
        if (bits == 2)
            acc2 = acc;
    }
    EXPECT_LT(acc2, 0.5) << "2-bit PTQ without retraining collapses";
}

TEST(Ptq, BiasCorrectionDoesNotHurt)
{
    auto &f = fixture();
    PtqOptions with;
    with.a_bits = 4;
    with.w_bits = 4;
    PtqOptions without = with;
    without.bias_correction = false;
    NaiveBackend backend;
    const double acc_with =
        buildPtqGraph(f.float_net, f.calib, with)
            .evaluate(f.test, backend);
    const double acc_without =
        buildPtqGraph(f.float_net, f.calib, without)
            .evaluate(f.test, backend);
    EXPECT_GE(acc_with, acc_without - 0.05);
}

TEST(Ptq, BackendsAgreeOnPtqGraphs)
{
    auto &f = fixture();
    const auto graph = buildPtqGraph(f.float_net, f.calib);
    NaiveBackend naive;
    MixGemmBackend mix;
    for (size_t i = 0; i < 8; ++i) {
        const auto &img = f.test.samples()[i].image;
        EXPECT_EQ(graph.predict(img, naive), graph.predict(img, mix));
    }
}

TEST(Ptq, RejectsEmptyCalibration)
{
    auto &f = fixture();
    const PatternDataset empty(0, 1);
    EXPECT_THROW(buildPtqGraph(f.float_net, empty), FatalError);
}

TEST(QGraphSerialize, RoundTripPreservesEverything)
{
    auto &f = fixture();
    const auto graph = buildPtqGraph(f.float_net, f.calib);
    const std::string text = graph.serialize();
    const auto back = QuantizedGraph::deserialize(text);

    ASSERT_EQ(back.nodes().size(), graph.nodes().size());
    for (size_t i = 0; i < graph.nodes().size(); ++i) {
        const auto &a = graph.nodes()[i];
        const auto &b = back.nodes()[i];
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.weights_q, b.weights_q);
        ASSERT_EQ(a.bias.size(), b.bias.size());
        for (size_t j = 0; j < a.bias.size(); ++j)
            EXPECT_DOUBLE_EQ(a.bias[j], b.bias[j]);
        EXPECT_DOUBLE_EQ(a.a_params.scale, b.a_params.scale);
        EXPECT_DOUBLE_EQ(a.w_params.scale, b.w_params.scale);
        EXPECT_EQ(a.a_params.bits, b.a_params.bits);
        EXPECT_EQ(a.spec.in_c, b.spec.in_c);
        EXPECT_EQ(a.spec.out_c, b.spec.out_c);
        EXPECT_EQ(a.spec.kh, b.spec.kh);
        EXPECT_EQ(a.spec.pad, b.spec.pad);
    }

    // The deserialized graph must predict identically.
    NaiveBackend backend;
    for (size_t i = 0; i < 8; ++i) {
        const auto &img = f.test.samples()[i].image;
        const auto la = graph.run(img, backend);
        const auto lb = back.run(img, backend);
        ASSERT_EQ(la.size(), lb.size());
        for (size_t j = 0; j < la.size(); ++j)
            ASSERT_DOUBLE_EQ(la[j], lb[j]);
    }
}

TEST(QGraphSerialize, RejectsMalformedInput)
{
    EXPECT_THROW(QuantizedGraph::deserialize(""), FatalError);
    EXPECT_THROW(QuantizedGraph::deserialize("wrong-magic 1"),
                 FatalError);
    EXPECT_THROW(
        QuantizedGraph::deserialize("mixgemm-qgraph-v1\n1\nnode bogus"),
        FatalError);
    EXPECT_THROW(QuantizedGraph::deserialize(
                     "mixgemm-qgraph-v1\n1\nnode conv\n1 2 3"),
                 FatalError);
    EXPECT_THROW(QuantizedGraph(std::vector<QNode>{}), FatalError);
}

} // namespace
} // namespace mixgemm
