/**
 * @file
 * Unit tests for src/sim: cache model behaviour (hits, LRU eviction,
 * hierarchy latencies), in-order core issue/stall semantics, μ-engine
 * timing (buffer back-pressure, drain), kernel trace structure, and the
 * hybrid GEMM timing model's calibration band.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/cache.h"
#include "sim/core.h"
#include "sim/gemm_timing.h"
#include "sim/kernel_traces.h"
#include "sim/uengine_timing.h"
#include "soc/soc_config.h"

namespace mixgemm
{
namespace
{

// ---------------------------------------------------------------------
// Cache model
// ---------------------------------------------------------------------

TEST(Cache, HitAfterMiss)
{
    Cache c(CacheConfig{1024, 64, 2, 2});
    EXPECT_FALSE(c.access(0x100, false));
    EXPECT_TRUE(c.access(0x100, false));
    EXPECT_TRUE(c.access(0x13f, false)) << "same 64B line";
    EXPECT_FALSE(c.access(0x140, false)) << "next line";
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictionWithinSet)
{
    // 2-way, 8 sets of 64B lines: addresses 64*8 apart share a set.
    Cache c(CacheConfig{1024, 64, 2, 2});
    const uint64_t stride = 64 * 8;
    c.access(0 * stride, false);
    c.access(1 * stride, false);
    EXPECT_TRUE(c.access(0 * stride, false));  // touch: 1*stride is LRU
    c.access(2 * stride, false);               // evicts 1*stride
    EXPECT_TRUE(c.contains(0 * stride));
    EXPECT_FALSE(c.contains(1 * stride));
    EXPECT_TRUE(c.contains(2 * stride));
}

TEST(Cache, ResetClearsState)
{
    Cache c(CacheConfig{1024, 64, 2, 2});
    c.access(0x0, false);
    c.reset();
    EXPECT_FALSE(c.contains(0x0));
    EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache(CacheConfig{1000, 64, 2, 2}), FatalError);
    EXPECT_THROW(Cache(CacheConfig{1024, 48, 2, 2}), FatalError);
    EXPECT_THROW(Cache(CacheConfig{1024, 64, 0, 2}), FatalError);
}

TEST(MemoryHierarchy, LatenciesPerLevel)
{
    const SoCConfig soc = SoCConfig::sargantana();
    MemoryHierarchy mh(soc.l1d, soc.l2, soc.mem_latency);
    // Cold: miss everywhere -> memory latency.
    EXPECT_EQ(mh.access(0x1000, 8, false), soc.mem_latency);
    // Warm in L1.
    EXPECT_EQ(mh.access(0x1000, 8, false), soc.l1d.hit_latency);
    // Evict from L1 only: thrash L1 sets with a large stream.
    for (uint64_t a = 0; a < 2 * soc.l1d.size_bytes; a += 64)
        mh.access(0x100000 + a, 8, false);
    // 0x1000 should now be an L1 miss but (likely) an L2 hit.
    EXPECT_EQ(mh.access(0x1000, 8, false), soc.l2.hit_latency);
}

TEST(MemoryHierarchy, StraddlingAccessTouchesBothLines)
{
    const SoCConfig soc = SoCConfig::sargantana();
    MemoryHierarchy mh(soc.l1d, soc.l2, soc.mem_latency);
    mh.access(0x103c, 8, false); // crosses the 0x1040 line boundary
    EXPECT_EQ(mh.access(0x1000, 8, false), soc.l1d.hit_latency);
    EXPECT_EQ(mh.access(0x1040, 8, false), soc.l1d.hit_latency);
}

// ---------------------------------------------------------------------
// In-order core
// ---------------------------------------------------------------------

LoadLatencyFn
fixedLatency(unsigned lat)
{
    return [lat](uint64_t, unsigned, bool) { return lat; };
}

TEST(InOrderCore, SingleIssueBaseline)
{
    InOrderCore core(SoCConfig::sargantana(), fixedLatency(2));
    UopTrace trace;
    for (int i = 0; i < 10; ++i)
        trace.push_back(Uop::alu(1));
    EXPECT_EQ(core.run(trace), 10u);
}

TEST(InOrderCore, LoadUseStall)
{
    InOrderCore core(SoCConfig::sargantana(), fixedLatency(2));
    UopTrace trace;
    trace.push_back(Uop::load(1, 0x1000, 8)); // result at t0 + 2
    trace.push_back(Uop::alu(2, 1));          // waits one cycle
    trace.push_back(Uop::alu(3));
    EXPECT_EQ(core.run(trace), 4u);
    EXPECT_EQ(core.counters().get("raw_stall_cycles"), 1u);
}

TEST(InOrderCore, IndependentInstructionsHideLoadLatency)
{
    InOrderCore core(SoCConfig::sargantana(), fixedLatency(10));
    UopTrace trace;
    trace.push_back(Uop::load(1, 0x1000, 8));
    for (int i = 0; i < 9; ++i)
        trace.push_back(Uop::alu(2));
    trace.push_back(Uop::alu(3, 1)); // ready exactly when reached
    EXPECT_EQ(core.run(trace), 11u);
    EXPECT_EQ(core.counters().get("raw_stall_cycles"), 0u);
}

TEST(InOrderCore, FpInitiationIntervalThrottles)
{
    SoCConfig soc = SoCConfig::sargantana();
    soc.core.fmul_interval = 4;
    InOrderCore core(soc, fixedLatency(2));
    UopTrace trace;
    // 4 independent fmuls: issue at 0, 4, 8, 12.
    for (int i = 0; i < 4; ++i)
        trace.push_back(
            Uop::fmul(kFpRegBase + i, kFpRegBase + 10, kFpRegBase + 11));
    EXPECT_EQ(core.run(trace), 13u);
    EXPECT_EQ(core.counters().get("fu_struct_stall_cycles"), 9u);
}

TEST(InOrderCore, BranchPenalty)
{
    InOrderCore core(SoCConfig::sargantana(), fixedLatency(2));
    UopTrace trace;
    trace.push_back(Uop::alu(1));
    trace.push_back(Uop::branch());
    trace.push_back(Uop::alu(2));
    // alu(1) at 0, branch at 1 (+1 bubble), alu(2) at 3.
    EXPECT_EQ(core.run(trace), 4u);
}

TEST(InOrderCore, BsOpsRequireEngine)
{
    InOrderCore core(SoCConfig::sargantana(), fixedLatency(2));
    UopTrace trace{Uop::bsIp(1, 2)};
    EXPECT_THROW(core.run(trace), FatalError);
}

// ---------------------------------------------------------------------
// μ-engine timing
// ---------------------------------------------------------------------

TEST(UEngineTiming, GroupProcessingAdvancesDrain)
{
    const auto g = computeBsGeometry({8, 8, true, true});
    UEngineTiming eng(g, UEngineConfig{});
    EXPECT_EQ(eng.drainCycle(), UEngineConfig{}.pipeline_depth);
    // Issue one full group back to back.
    uint64_t t = 0;
    for (unsigned p = 0; p < g.group_pairs; ++p)
        t = eng.issueIp(t) + 1;
    EXPECT_EQ(eng.busyCycles(), g.group_cycles);
    // Group starts after its last pair arrives.
    EXPECT_EQ(eng.drainCycle(),
              g.group_pairs + g.group_cycles +
                  UEngineConfig{}.pipeline_depth);
}

TEST(UEngineTiming, SourceBufferBackPressure)
{
    const auto g = computeBsGeometry({8, 8, true, true});
    UEngineConfig cfg;
    cfg.srcbuf_depth = 8;
    UEngineTiming eng(g, cfg);
    // Flood with pairs issued every cycle; the buffer must throttle the
    // issue rate down to the engine's consumption rate.
    uint64_t t = 0;
    const unsigned pairs = 400;
    for (unsigned i = 0; i < pairs; ++i)
        t = eng.issueIp(t) + 1;
    EXPECT_GT(eng.counters().get("srcbuf_full_stall_cycles"), 0u);
    // Steady state: 4 pairs per 12-cycle group -> ~3 cycles per pair.
    const double per_pair = static_cast<double>(t) / pairs;
    EXPECT_NEAR(per_pair, 3.0, 0.3);
}

TEST(UEngineTiming, DeeperBuffersStallLess)
{
    const auto g = computeBsGeometry({8, 8, true, true});
    uint64_t stalls[3];
    unsigned idx = 0;
    for (const unsigned depth : {8u, 16u, 32u}) {
        UEngineConfig cfg;
        cfg.srcbuf_depth = depth;
        UEngineTiming eng(g, cfg);
        uint64_t t = 0;
        // Bursty issue: 16 pairs back to back, then a 24-cycle gap, as a
        // μ-kernel with interleaved loads produces.
        for (unsigned burst = 0; burst < 30; ++burst) {
            for (unsigned i = 0; i < 16; ++i)
                t = eng.issueIp(t) + 1;
            t += 24;
        }
        stalls[idx++] = eng.counters().get("srcbuf_full_stall_cycles");
    }
    EXPECT_GT(stalls[0], stalls[1]);
    EXPECT_GE(stalls[1], stalls[2]);
}

TEST(UEngineTiming, RejectsBufferSmallerThanGroup)
{
    const auto g = computeBsGeometry({8, 8, true, true});
    UEngineConfig cfg;
    cfg.srcbuf_depth = 2; // group needs 4 pairs
    EXPECT_THROW(UEngineTiming(g, cfg), FatalError);
}

// ---------------------------------------------------------------------
// Kernel traces
// ---------------------------------------------------------------------

TEST(KernelTraces, MixKernelInstructionMix)
{
    const auto g = computeBsGeometry({8, 8, true, true});
    const auto trace = mixMicroKernelTrace(g, 4, 4, 2, KernelAddresses{});
    unsigned ips = 0;
    unsigned gets = 0;
    unsigned loads = 0;
    unsigned stores = 0;
    for (const auto &u : trace) {
        ips += u.kind == UopKind::kBsIp;
        gets += u.kind == UopKind::kBsGet;
        loads += u.kind == UopKind::kLoad;
        stores += u.kind == UopKind::kStore;
    }
    // 2 groups x 16 cells x 4 pairs.
    EXPECT_EQ(ips, 2u * 16 * 4);
    EXPECT_EQ(gets, 16u);
    // Operands: 2 groups x (4x4 A + 4x4 B) = 64, plus 16 C loads.
    EXPECT_EQ(loads, 64u + 16u);
    EXPECT_EQ(stores, 16u);
}

TEST(KernelTraces, DgemmKernelInstructionMix)
{
    const auto trace = dgemmMicroKernelTrace(4, 4, 8, KernelAddresses{});
    unsigned fmuls = 0;
    unsigned fadds = 0;
    unsigned loads = 0;
    for (const auto &u : trace) {
        fmuls += u.kind == UopKind::kFmul;
        fadds += u.kind == UopKind::kFadd;
        loads += u.kind == UopKind::kLoad;
    }
    EXPECT_EQ(fmuls, 8u * 16);
    EXPECT_EQ(fadds, 8u * 16 + 16u); // + C epilogue
    EXPECT_EQ(loads, 8u * 8 + 16u);
}

TEST(KernelTraces, RejectEmptyKernels)
{
    const auto g = computeBsGeometry({8, 8, true, true});
    EXPECT_THROW(mixMicroKernelTrace(g, 0, 4, 1, {}), FatalError);
    EXPECT_THROW(dgemmMicroKernelTrace(4, 4, 0, {}), FatalError);
    EXPECT_THROW(int8MicroKernelTrace(0, 0, 1, {}), FatalError);
}

// ---------------------------------------------------------------------
// Hybrid GEMM timing model: calibration band (Fig. 6 shape)
// ---------------------------------------------------------------------

TEST(GemmTiming, DgemmBaselineInCalibratedBand)
{
    GemmTimingModel model(SoCConfig::sargantana());
    const auto t = model.dgemm(512, 512, 512);
    // The paper's scalar FP64 baseline runs well under 1 GOPS.
    EXPECT_GT(t.cycles_per_mac, 3.0);
    EXPECT_LT(t.cycles_per_mac, 6.0);
    EXPECT_GT(t.gops, 0.3);
    EXPECT_LT(t.gops, 0.9);
}

TEST(GemmTiming, MixGemmSpeedupsScaleWithDataSize)
{
    GemmTimingModel model(SoCConfig::sargantana());
    const uint64_t s = 512;
    const double dgemm = static_cast<double>(model.dgemm(s, s, s).cycles);
    const double up88 =
        dgemm / model.mixGemm(s, s, s,
                              computeBsGeometry({8, 8, true, true}))
                    .cycles;
    const double up44 =
        dgemm / model.mixGemm(s, s, s,
                              computeBsGeometry({4, 4, true, true}))
                    .cycles;
    const double up22 =
        dgemm / model.mixGemm(s, s, s,
                              computeBsGeometry({2, 2, true, true}))
                    .cycles;
    // Fig. 6: ~10.2x (a8-w8) to ~27.2x (a2-w2), ~16x at a4-w4.
    EXPECT_GT(up88, 6.0);
    EXPECT_LT(up88, 15.0);
    EXPECT_GT(up44, up88);
    EXPECT_GT(up22, up44);
    EXPECT_GT(up22, 15.0);
    EXPECT_LT(up22, 35.0);
}

TEST(GemmTiming, Int8BaselineBeatsDgemmButTrailsMixGemm)
{
    GemmTimingModel model(SoCConfig::sargantana());
    const uint64_t s = 512;
    const auto dgemm = model.dgemm(s, s, s);
    const auto int8 = model.int8Gemm(s, s, s);
    const auto mix =
        model.mixGemm(s, s, s, computeBsGeometry({8, 8, true, true}));
    EXPECT_LT(int8.cycles, dgemm.cycles);
    EXPECT_LT(mix.cycles, int8.cycles);
}

TEST(GemmTiming, SmallerCachesCostAFewPercent)
{
    // Section IV-B: 16 KB L1 + 64 KB L2 costs ~11.8 % on average.
    GemmTimingModel big(SoCConfig::sargantana());
    GemmTimingModel small(SoCConfig::sargantanaSmallCaches());
    const auto g = computeBsGeometry({8, 8, true, true});
    const uint64_t s = 512;
    const double penalty =
        static_cast<double>(small.mixGemm(s, s, s, g).cycles) /
            big.mixGemm(s, s, s, g).cycles -
        1.0;
    EXPECT_GT(penalty, 0.0);
    EXPECT_LT(penalty, 0.35);
}

TEST(GemmTiming, CyclesScaleRoughlyCubically)
{
    GemmTimingModel model(SoCConfig::sargantana());
    const auto g = computeBsGeometry({8, 8, true, true});
    const double c256 =
        static_cast<double>(model.mixGemm(256, 256, 256, g).cycles);
    const double c512 =
        static_cast<double>(model.mixGemm(512, 512, 512, g).cycles);
    EXPECT_NEAR(c512 / c256, 8.0, 1.6);
}

TEST(GemmTiming, RejectsEmptyProblems)
{
    GemmTimingModel model(SoCConfig::sargantana());
    EXPECT_THROW(model.dgemm(0, 4, 4), FatalError);
}

} // namespace
} // namespace mixgemm
