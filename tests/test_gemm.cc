/**
 * @file
 * Tests for src/gemm: blocking derivation, reference GEMMs, the blocked
 * DGEMM/int8 baselines, and the full Mix-GEMM library (Algorithm 1)
 * verified against naive integer GEMM across shapes, data-size
 * configurations, and blocking parameters — including edge shapes that
 * are not multiples of any blocking dimension.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "gemm/blocked_baselines.h"
#include "gemm/blocking.h"
#include "gemm/mixgemm.h"
#include "gemm/reference.h"

namespace mixgemm
{
namespace
{

std::vector<int32_t>
randomNarrowMatrix(uint64_t rows, uint64_t cols, unsigned bw, Rng &rng)
{
    std::vector<int32_t> m(rows * cols);
    for (auto &v : m)
        v = static_cast<int32_t>(
            rng.uniformInt(-(1 << (bw - 1)), (1 << (bw - 1)) - 1));
    return m;
}

TEST(Blocking, PaperDefaultsMatchTableI)
{
    const auto p = BlockingParams::paperDefaults();
    EXPECT_EQ(p.mc, 256u);
    EXPECT_EQ(p.nc, 256u);
    EXPECT_EQ(p.kc, 256u);
    EXPECT_EQ(p.mr, 4u);
    EXPECT_EQ(p.nr, 4u);
}

TEST(Blocking, Validation)
{
    BlockingParams p;
    p.kc = 0;
    EXPECT_THROW(p.validate(), FatalError);
    p = BlockingParams{};
    p.mr = 8;
    p.mc = 4;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Blocking, DeriveForTargetSoCMatchesTableI)
{
    // 32 KB L1 / 512 KB L2 with 8-byte μ-vector words and mr = nr = 4
    // lands on the Table I values.
    const auto p = deriveBlocking(32 * 1024, 512 * 1024, 8, 4, 4);
    EXPECT_EQ(p.kc, 256u);
    EXPECT_EQ(p.mc, 128u);
    EXPECT_EQ(p.nc, 256u);
}

TEST(Blocking, SmallerCachesShrinkBlocks)
{
    const auto small = deriveBlocking(16 * 1024, 64 * 1024, 8, 4, 4);
    const auto big = deriveBlocking(64 * 1024, 512 * 1024, 8, 4, 4);
    EXPECT_LE(small.kc, big.kc);
    EXPECT_LE(small.mc, big.mc);
    EXPECT_GE(small.kc, 4u);
}

TEST(Blocking, BigCachesGrowBlocksPastTableI)
{
    // Regression: kc/mc used to be hard-capped at 256, silently wasting
    // any L1/L2 budget beyond the target SoC's. The caps must scale
    // with the cache sizes.
    const auto big =
        deriveBlocking(256 * 1024, 32 * 1024 * 1024, 8, 4, 4);
    EXPECT_GT(big.kc, 256u);
    EXPECT_GT(big.mc, 256u);
    // kc: a [4 x kc] + [4 x kc] panel pair in ~3/4 of 256 KB, power of
    // two -> 2048; mc: [mc x 2048] in half of 32 MB -> 1024.
    EXPECT_EQ(big.kc, 2048u);
    EXPECT_EQ(big.mc, 1024u);
    const auto huge =
        deriveBlocking(1024 * 1024, 256 * 1024 * 1024, 8, 4, 4);
    EXPECT_GE(huge.kc, big.kc);
    EXPECT_GE(huge.mc, big.mc);
    // The panel-pair working set still fits the L1 budget it was
    // derived from.
    EXPECT_LE(uint64_t{8} * big.kc * 8, uint64_t{256} * 1024);
    big.validate();
    huge.validate();
}

TEST(Blocking, DegenerateCachesClampToRegisterBlocks)
{
    // Regression: cache budgets smaller than one register block used to
    // derive mc < mr (or nc < nr), which validate() then rejected — a
    // crash from inputs that merely deserved clamping. The floor is one
    // whole register block, and mc/nc stay multiples of mr/nr.
    for (const uint64_t l1 : {64u, 256u, 1024u, 4096u}) {
        for (const uint64_t l2 : {256u, 4096u, 65536u}) {
            for (const unsigned mr : {4u, 8u}) {
                for (const unsigned nr : {4u, 8u}) {
                    const auto p = deriveBlocking(l1, l2, 8, mr, nr);
                    EXPECT_GE(p.mc, mr) << l1 << " " << l2;
                    EXPECT_GE(p.nc, nr) << l1 << " " << l2;
                    EXPECT_GE(p.kc, 1u) << l1 << " " << l2;
                    EXPECT_EQ(p.mc % mr, 0u) << l1 << " " << l2;
                    EXPECT_EQ(p.nc % nr, 0u) << l1 << " " << l2;
                    p.validate();
                }
            }
        }
    }
    // An 8 x 8 register block from a 64-byte L1: clamped, not thrown.
    const auto tiny = deriveBlocking(64, 256, 8, 8, 8);
    EXPECT_EQ(tiny.mc % 8, 0u);
    EXPECT_GE(tiny.mc, 8u);
    EXPECT_GE(tiny.nc, 8u);
    tiny.validate();
}

TEST(Blocking, TryDeriveReportsImpossibleGeometries)
{
    // The checked variant turns each impossible input into a structured
    // error naming the parameter instead of a FatalError throw.
    EXPECT_FALSE(tryDeriveBlocking(0, 512 * 1024, 8, 4, 4).ok());
    EXPECT_FALSE(tryDeriveBlocking(32 * 1024, 0, 8, 4, 4).ok());
    EXPECT_FALSE(tryDeriveBlocking(32 * 1024, 512 * 1024, 0, 4, 4).ok());
    EXPECT_FALSE(tryDeriveBlocking(32 * 1024, 512 * 1024, 8, 0, 4).ok());
    EXPECT_FALSE(tryDeriveBlocking(32 * 1024, 512 * 1024, 8, 4, 0).ok());
    // mr * nr beyond any plausible AccMem bound.
    EXPECT_FALSE(
        tryDeriveBlocking(32 * 1024, 512 * 1024, 8, 1u << 16, 1u << 16)
            .ok());
    const auto bad = tryDeriveBlocking(0, 0, 0, 0, 0);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
    // The throwing wrapper reports the same failures as FatalError.
    EXPECT_THROW(deriveBlocking(0, 512 * 1024, 8, 4, 4), FatalError);
    // And the checked variant agrees with the throwing one on good
    // inputs, Table I included.
    const auto ok = tryDeriveBlocking(32 * 1024, 512 * 1024, 8, 4, 4);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok->kc, 256u);
    EXPECT_EQ(ok->mc, 128u);
    EXPECT_EQ(ok->nc, 256u);
}

TEST(ReferenceGemm, KnownProduct)
{
    // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
    const std::vector<int32_t> a{1, 2, 3, 4};
    const std::vector<int32_t> b{5, 6, 7, 8};
    const auto c = referenceGemmInt(a, b, 2, 2, 2);
    EXPECT_EQ(c, (std::vector<int64_t>{19, 22, 43, 50}));
    EXPECT_THROW(referenceGemmInt(a, b, 2, 2, 3), FatalError);
}

TEST(BlockedDgemm, MatchesReferenceOnOddShapes)
{
    Rng rng(21);
    for (const auto &[m, n, k] :
         {std::tuple<int, int, int>{1, 1, 1}, {5, 3, 7}, {17, 9, 33},
          {64, 64, 64}, {130, 70, 90}}) {
        std::vector<double> a(uint64_t{unsigned(m)} * k);
        std::vector<double> b(uint64_t{unsigned(k)} * n);
        for (auto &v : a)
            v = rng.normal();
        for (auto &v : b)
            v = rng.normal();
        const auto blocked = blockedDgemm(a, b, m, n, k);
        const auto ref = referenceGemmDouble(a, b, m, n, k);
        for (size_t i = 0; i < ref.size(); ++i)
            ASSERT_NEAR(blocked.c[i], ref[i], 1e-9)
                << m << "x" << n << "x" << k << " elem " << i;
    }
}

TEST(BlockedDgemm, CountsOperationMix)
{
    std::vector<double> a(8 * 8, 1.0);
    std::vector<double> b(8 * 8, 1.0);
    const auto r = blockedDgemm(a, b, 8, 8, 8);
    EXPECT_EQ(r.counters.get("fmul"), 512u);
    EXPECT_EQ(r.counters.get("fadd"), 512u);
    EXPECT_EQ(r.counters.get("ops"), 1024u);
    // mr + nr = 8 loads per k step, 4 μ-kernels x 8 k steps.
    EXPECT_EQ(r.counters.get("operand_loads"), 256u);
    EXPECT_EQ(r.counters.get("micro_kernels"), 4u);
}

TEST(BlockedInt8Gemm, MatchesReference)
{
    Rng rng(22);
    const uint64_t m = 19;
    const uint64_t n = 23;
    const uint64_t k = 40;
    std::vector<int8_t> a(m * k);
    std::vector<int8_t> b(k * n);
    for (auto &v : a)
        v = static_cast<int8_t>(rng.uniformInt(-128, 127));
    for (auto &v : b)
        v = static_cast<int8_t>(rng.uniformInt(-128, 127));
    std::vector<int32_t> a32(a.begin(), a.end());
    std::vector<int32_t> b32(b.begin(), b.end());
    const auto ref = referenceGemmInt(a32, b32, m, n, k);
    const auto blocked = blockedInt8Gemm(a, b, m, n, k);
    for (size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(blocked.c[i], ref[i]) << "elem " << i;
}

struct MixGemmCase
{
    uint64_t m, n, k;
    unsigned bwa, bwb;
    const char *label;
};

class MixGemmTest : public ::testing::TestWithParam<MixGemmCase>
{
};

TEST_P(MixGemmTest, MatchesReferenceGemm)
{
    const auto p = GetParam();
    const auto geom = computeBsGeometry({p.bwa, p.bwb, true, true});
    Rng rng(300 + p.m + p.n + p.k + p.bwa * 8 + p.bwb);
    const auto a = randomNarrowMatrix(p.m, p.k, p.bwa, rng);
    const auto b = randomNarrowMatrix(p.k, p.n, p.bwb, rng);
    const auto ref = referenceGemmInt(a, b, p.m, p.n, p.k);
    const auto mix = mixGemm(a, b, p.m, p.n, p.k, geom);
    ASSERT_EQ(mix.c.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(mix.c[i], ref[i])
            << geom.config.name() << " " << p.m << "x" << p.n << "x"
            << p.k << " elem " << i;
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndConfigs, MixGemmTest,
    ::testing::Values(
        MixGemmCase{4, 4, 32, 8, 8, "tile_a8w8"},
        MixGemmCase{4, 4, 30, 8, 6, "tile_a8w6"},
        MixGemmCase{4, 4, 30, 6, 4, "tile_a6w4"},
        MixGemmCase{16, 16, 64, 8, 8, "block_a8w8"},
        MixGemmCase{16, 16, 128, 2, 2, "block_a2w2"},
        MixGemmCase{12, 20, 96, 4, 4, "block_a4w4"},
        MixGemmCase{8, 8, 60, 5, 5, "block_a5w5"},
        MixGemmCase{1, 1, 1, 8, 8, "scalar"},
        MixGemmCase{3, 5, 7, 8, 8, "edge_tiny"},
        MixGemmCase{13, 11, 37, 8, 2, "edge_a8w2"},
        MixGemmCase{13, 11, 37, 2, 8, "edge_a2w8"},
        MixGemmCase{17, 19, 61, 7, 3, "edge_a7w3"},
        MixGemmCase{17, 19, 61, 3, 7, "edge_a3w7"},
        MixGemmCase{70, 66, 140, 6, 6, "multi_panel_a6w6"},
        MixGemmCase{65, 67, 300, 8, 8, "multi_kpanel_a8w8"}),
    [](const auto &info) { return info.param.label; });

TEST(MixGemm, AllConfigsSmallShape)
{
    // Sweep all 49 (bwa, bwb) combinations on one modest odd shape.
    Rng rng(404);
    const uint64_t m = 9;
    const uint64_t n = 7;
    const uint64_t k = 50;
    for (const auto &cfg : allSupportedConfigs()) {
        const auto geom = computeBsGeometry(cfg);
        const auto a = randomNarrowMatrix(m, k, cfg.bwa, rng);
        const auto b = randomNarrowMatrix(k, n, cfg.bwb, rng);
        const auto ref = referenceGemmInt(a, b, m, n, k);
        const auto mix = mixGemm(a, b, m, n, k, geom);
        for (size_t i = 0; i < ref.size(); ++i)
            ASSERT_EQ(mix.c[i], ref[i])
                << cfg.name() << " elem " << i;
    }
}

TEST(MixGemm, UnsignedConfigs)
{
    Rng rng(55);
    const uint64_t m = 6;
    const uint64_t n = 6;
    const uint64_t k = 40;
    for (const auto &[bwa, bwb] : {std::pair<unsigned, unsigned>{8, 8},
                                  std::pair<unsigned, unsigned>{4, 2}}) {
        const auto geom = computeBsGeometry({bwa, bwb, false, false});
        std::vector<int32_t> a(m * k);
        std::vector<int32_t> b(k * n);
        for (auto &v : a)
            v = static_cast<int32_t>(rng.uniformInt(0, (1 << bwa) - 1));
        for (auto &v : b)
            v = static_cast<int32_t>(rng.uniformInt(0, (1 << bwb) - 1));
        const auto ref = referenceGemmInt(a, b, m, n, k);
        const auto mix = mixGemm(a, b, m, n, k, geom);
        for (size_t i = 0; i < ref.size(); ++i)
            ASSERT_EQ(mix.c[i], ref[i]) << geom.config.name();
    }
}

TEST(MixGemm, CustomBlockingStillCorrect)
{
    Rng rng(77);
    const auto geom = computeBsGeometry({8, 8, true, true});
    const uint64_t m = 40;
    const uint64_t n = 36;
    const uint64_t k = 160;
    const auto a = randomNarrowMatrix(m, k, 8, rng);
    const auto b = randomNarrowMatrix(k, n, 8, rng);
    const auto ref = referenceGemmInt(a, b, m, n, k);
    for (const auto &[mc, nc, kc] :
         {std::tuple<unsigned, unsigned, unsigned>{8, 8, 32},
          {16, 12, 64}, {256, 256, 33}}) {
        BlockingParams blk;
        blk.mc = mc;
        blk.nc = nc;
        blk.kc = kc;
        const auto mix = mixGemm(a, b, m, n, k, geom, blk);
        for (size_t i = 0; i < ref.size(); ++i)
            ASSERT_EQ(mix.c[i], ref[i])
                << "mc=" << mc << " nc=" << nc << " kc=" << kc;
    }
}

TEST(MixGemm, CountersMatchLoopStructure)
{
    const auto geom = computeBsGeometry({8, 8, true, true});
    ASSERT_EQ(geom.group_extent, 32u);
    const uint64_t m = 8;
    const uint64_t n = 8;
    const uint64_t k = 64; // 2 accumulation groups
    const std::vector<int32_t> a(m * k, 1);
    const std::vector<int32_t> b(k * n, 1);
    const auto mix = mixGemm(a, b, m, n, k, geom);
    // 4 μ-kernels (2x2 tiles of 4x4), each 2 groups x 16 cells x 4 pairs.
    EXPECT_EQ(mix.counters.get("micro_kernels"), 4u);
    EXPECT_EQ(mix.counters.get("bs_ip"), 4u * 2 * 16 * 4);
    EXPECT_EQ(mix.counters.get("bs_get"), 4u * 16);
    EXPECT_EQ(mix.counters.get("bs_set"), 1u);
    EXPECT_EQ(mix.counters.get("ops"), 2 * m * n * k);
    // Engine busy cycles: every group costs group_cycles.
    EXPECT_EQ(mix.counters.get("engine_busy_cycles"),
              4u * 2 * 16 * geom.group_cycles);
}

TEST(MixGemm, RejectsMismatchedOperands)
{
    const auto g88 = computeBsGeometry({8, 8, true, true});
    const auto g44 = computeBsGeometry({4, 4, true, true});
    const std::vector<int32_t> a(4 * 32, 1);
    const std::vector<int32_t> b(32 * 4, 1);
    const CompressedA ca(a, 4, 32, g88);
    const CompressedB cb_badk(b, 16, 8, g88);
    EXPECT_THROW(mixGemm(ca, cb_badk), FatalError);
    const CompressedB cb_badcfg(b, 32, 4, g44);
    EXPECT_THROW(mixGemm(ca, cb_badcfg), FatalError);
}

TEST(MixGemm, ParallelMatchesSerialBitwiseOnEdgeShapes)
{
    // Edge shapes: m/n not multiples of mr/nr, k smaller than one
    // accumulation group (a8-w8 extent is 32), and 1x1x1. The parallel
    // driver must agree with the serial one bitwise — output C and
    // every counter total — and both with the naive reference.
    Rng rng(811);
    const auto geom = computeBsGeometry({8, 8, true, true});
    ASSERT_EQ(geom.group_extent, 32u);
    for (const auto &[m, n, k] :
         {std::tuple<uint64_t, uint64_t, uint64_t>{1, 1, 1},
          {5, 3, 7},     // everything smaller than one tile/group
          {33, 29, 5},   // k < group_extent, m/n not multiples of 4
          {13, 22, 40},  // m odd, n not a multiple of nr
          {70, 66, 140}, // multiple mc/nc panels with edge tiles
          {17, 4, 300}}) {
        const auto a = randomNarrowMatrix(m, k, 8, rng);
        const auto b = randomNarrowMatrix(k, n, 8, rng);
        const auto ref = referenceGemmInt(a, b, m, n, k);

        // Small macro tiles so several exist even for modest shapes.
        BlockingParams blk;
        blk.mc = 16;
        blk.nc = 16;
        blk.kc = 64;
        blk.threads = 1;
        const auto serial = mixGemm(a, b, m, n, k, geom, blk);
        ASSERT_EQ(serial.c, ref) << m << "x" << n << "x" << k;

        for (const unsigned threads : {2u, 3u, 4u, 7u}) {
            blk.threads = threads;
            const auto parallel = mixGemm(a, b, m, n, k, geom, blk);
            ASSERT_EQ(parallel.c, serial.c)
                << m << "x" << n << "x" << k << " threads=" << threads;
            ASSERT_EQ(parallel.counters.all(), serial.counters.all())
                << m << "x" << n << "x" << k << " threads=" << threads;
        }
    }
}

TEST(MixGemm, ParallelMatchesSerialAcrossConfigs)
{
    // Mixed-precision configurations exercise different kua/kub and
    // group extents through the parallel path.
    Rng rng(812);
    const uint64_t m = 37, n = 26, k = 75;
    for (const auto &[bwa, bwb] : {std::pair<unsigned, unsigned>{8, 6},
                                   std::pair<unsigned, unsigned>{6, 4},
                                   std::pair<unsigned, unsigned>{2, 2}}) {
        const auto geom = computeBsGeometry({bwa, bwb, true, true});
        const auto a = randomNarrowMatrix(m, k, bwa, rng);
        const auto b = randomNarrowMatrix(k, n, bwb, rng);
        const auto ref = referenceGemmInt(a, b, m, n, k);
        BlockingParams blk;
        blk.mc = 12;
        blk.nc = 12;
        blk.threads = 1;
        const auto serial = mixGemm(a, b, m, n, k, geom, blk);
        blk.threads = 4;
        const auto parallel = mixGemm(a, b, m, n, k, geom, blk);
        ASSERT_EQ(serial.c, ref) << geom.config.name();
        ASSERT_EQ(parallel.c, ref) << geom.config.name();
        ASSERT_EQ(parallel.counters.all(), serial.counters.all())
            << geom.config.name();
    }
}

TEST(MixGemm, ThreadsZeroMeansHardwareConcurrency)
{
    Rng rng(813);
    const auto geom = computeBsGeometry({8, 8, true, true});
    const uint64_t m = 20, n = 20, k = 64;
    const auto a = randomNarrowMatrix(m, k, 8, rng);
    const auto b = randomNarrowMatrix(k, n, 8, rng);
    const auto ref = referenceGemmInt(a, b, m, n, k);
    BlockingParams blk;
    blk.mc = 8;
    blk.nc = 8;
    blk.threads = 0; // auto
    const auto mix = mixGemm(a, b, m, n, k, geom, blk);
    ASSERT_EQ(mix.c, ref);
}

TEST(MixGemm, ParallelCountersMatchLoopStructure)
{
    // The counter contract of CountersMatchLoopStructure must hold
    // under threading, including the single logical bs_set.
    const auto geom = computeBsGeometry({8, 8, true, true});
    const uint64_t m = 16, n = 16, k = 64;
    const std::vector<int32_t> a(m * k, 1);
    const std::vector<int32_t> b(k * n, 1);
    BlockingParams blk;
    blk.mc = 8;
    blk.nc = 8;
    blk.threads = 4;
    const auto mix = mixGemm(a, b, m, n, k, geom, blk);
    // 4 macro tiles of 8x8 -> 4 μ-kernels each; 2 groups per k.
    EXPECT_EQ(mix.counters.get("micro_kernels"), 16u);
    EXPECT_EQ(mix.counters.get("bs_set"), 1u);
    EXPECT_EQ(mix.counters.get("bs_ip"), 16u * 2 * 16 * 4);
    EXPECT_EQ(mix.counters.get("bs_get"), 16u * 16);
    EXPECT_EQ(mix.counters.get("engine_busy_cycles"),
              16u * 2 * 16 * geom.group_cycles);
    EXPECT_EQ(mix.counters.get("a_panels"), 4u);
    EXPECT_EQ(mix.counters.get("b_panels"), 2u);
}

TEST(MixGemm, ProblemSizeReductionVsDgemm)
{
    // Section IV-B: compressed operands reduce the DGEMM problem size by
    // 8x (a8) to 32x (a2) in words loaded along k.
    for (const unsigned bw : {8u, 2u}) {
        const auto geom = computeBsGeometry({bw, bw, true, true});
        const uint64_t k = 256;
        const std::vector<int32_t> a(4 * k, 0);
        const CompressedA ca(a, 4, k, geom);
        const uint64_t words_per_row =
            uint64_t{ca.kGroups()} * geom.kua;
        EXPECT_EQ(words_per_row, k / (64 / bw)) << "bw=" << bw;
    }
}

} // namespace
} // namespace mixgemm
