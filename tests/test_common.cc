/**
 * @file
 * Unit tests for src/common: bit utilities, RNG determinism, running
 * statistics, counters, the table printer, and the worker thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <iostream>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/bitutils.h"
#include "common/bounded_queue.h"
#include "common/cancel.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace mixgemm
{
namespace
{

TEST(BitUtils, Mask64)
{
    EXPECT_EQ(mask64(0), 0u);
    EXPECT_EQ(mask64(1), 1u);
    EXPECT_EQ(mask64(8), 0xffu);
    EXPECT_EQ(mask64(63), 0x7fffffffffffffffull);
    EXPECT_EQ(mask64(64), ~uint64_t{0});
}

TEST(BitUtils, Mask128)
{
    EXPECT_EQ(mask128(0), uint128{0});
    EXPECT_EQ(static_cast<uint64_t>(mask128(64)), ~uint64_t{0});
    EXPECT_EQ(mask128(128), ~uint128{0});
    EXPECT_EQ(static_cast<uint64_t>(mask128(65) >> 64), 1u);
}

TEST(BitUtils, SignExtend64)
{
    EXPECT_EQ(signExtend64(0x7, 3), -1);
    EXPECT_EQ(signExtend64(0x3, 3), 3);
    EXPECT_EQ(signExtend64(0x4, 3), -4);
    EXPECT_EQ(signExtend64(0x80, 8), -128);
    EXPECT_EQ(signExtend64(0x7f, 8), 127);
    EXPECT_EQ(signExtend64(~uint64_t{0}, 64), -1);
}

TEST(BitUtils, SignExtend64RoundTripAllNarrowValues)
{
    for (unsigned bits = 2; bits <= 16; ++bits) {
        const int64_t lo = -(int64_t{1} << (bits - 1));
        const int64_t hi = (int64_t{1} << (bits - 1)) - 1;
        for (int64_t v = lo; v <= hi; ++v) {
            const uint64_t packed =
                static_cast<uint64_t>(v) & mask64(bits);
            EXPECT_EQ(signExtend64(packed, bits), v)
                << "bits=" << bits << " v=" << v;
        }
    }
}

TEST(BitUtils, CeilLog2)
{
    EXPECT_EQ(ceilLog2(0), 0u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitUtils, DivCeilRoundUp)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(roundUp(5, 4), 8u);
    EXPECT_EQ(roundUp(8, 4), 8u);
}

TEST(BitUtils, Fits)
{
    EXPECT_TRUE(fitsSigned(-4, 3));
    EXPECT_TRUE(fitsSigned(3, 3));
    EXPECT_FALSE(fitsSigned(4, 3));
    EXPECT_FALSE(fitsSigned(-5, 3));
    EXPECT_TRUE(fitsUnsigned(7, 3));
    EXPECT_FALSE(fitsUnsigned(8, 3));
}

TEST(BitUtils, BitSlice128)
{
    const uint128 v = (uint128{0xab} << 80) | (uint128{0x1a} << 8) | 0x3c;
    EXPECT_EQ(bitSlice128(v, 7, 0), 0x3cu);
    EXPECT_EQ(bitSlice128(v, 15, 8), 0x1au);
    EXPECT_EQ(bitSlice128(v, 87, 80), 0xabu);
}

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const int64_t v = rng.uniformInt(-5, 9);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(11);
    bool seen[16] = {};
    for (int i = 0; i < 4000; ++i)
        seen[rng.uniformInt(0, 15)] = true;
    for (int v = 0; v < 16; ++v)
        EXPECT_TRUE(seen[v]) << "value " << v << " never drawn";
}

TEST(Rng, UniformRealBounds)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(5);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RunningStat, Summary)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    s.add(2.0);
    s.add(8.0);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.geomean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(RunningStat, GeomeanOverNonPositiveSamplesReturnsZero)
{
    // log(v) is undefined at v <= 0; a partial log-sum would silently
    // report the geomean of the positive subset. The stat returns 0
    // instead (and warns once per process).
    RunningStat zero;
    zero.add(4.0);
    zero.add(0.0);
    EXPECT_EQ(zero.geomean(), 0.0);
    EXPECT_DOUBLE_EQ(zero.mean(), 2.0); // other summaries unaffected

    RunningStat negative;
    negative.add(-2.0);
    negative.add(8.0);
    EXPECT_EQ(negative.geomean(), 0.0);
    EXPECT_DOUBLE_EQ(negative.min(), -2.0);

    RunningStat positive;
    positive.add(2.0);
    positive.add(8.0);
    EXPECT_DOUBLE_EQ(positive.geomean(), 4.0);
}

TEST(CounterSet, IncGetClear)
{
    CounterSet c;
    EXPECT_EQ(c.get("missing"), 0u);
    c.inc("cycles");
    c.inc("cycles", 9);
    EXPECT_EQ(c.get("cycles"), 10u);
    c.set("cycles", 3);
    EXPECT_EQ(c.get("cycles"), 3u);
    c.clear();
    EXPECT_EQ(c.get("cycles"), 0u);
}

TEST(CounterSet, MergeScaled)
{
    CounterSet a;
    CounterSet b;
    a.inc("x", 2);
    b.inc("x", 5);
    b.inc("y", 1);
    a.mergeScaled(b, 3);
    EXPECT_EQ(a.get("x"), 17u);
    EXPECT_EQ(a.get("y"), 3u);
}

TEST(CounterSet, InternedHandlesAliasCanonicalNames)
{
    // The enum handles and the canonical string names address the same
    // slots, so hot-path (enum) and reporting-path (string) views agree.
    CounterSet c;
    c.inc(Counter::BsIp, 40);
    c.inc("bs_ip", 2);
    EXPECT_EQ(c.get(Counter::BsIp), 42u);
    EXPECT_EQ(c.get("bs_ip"), 42u);
    c.set("engine_busy_cycles", 7);
    EXPECT_EQ(c.get(Counter::EngineBusyCycles), 7u);
    EXPECT_EQ(std::string(counterName(Counter::MicroKernels)),
              "micro_kernels");
    c.clear();
    EXPECT_EQ(c.get(Counter::BsIp), 0u);
}

TEST(CounterSet, AllMergesInternedAndDynamicCounters)
{
    CounterSet c;
    c.inc(Counter::BsSet);
    c.inc(Counter::Ops, 100);
    c.inc("custom_counter", 5);
    const auto all = c.all();
    EXPECT_EQ(all.at("bs_set"), 1u);
    EXPECT_EQ(all.at("ops"), 100u);
    EXPECT_EQ(all.at("custom_counter"), 5u);
    // Never-touched interned counters stay out of the report.
    EXPECT_EQ(all.count("bs_get"), 0u);
}

TEST(CounterSet, AllReportsTouchedInternedZeros)
{
    // Once a slot has been inc()'d or set() — even to zero — it shows
    // in all(), exactly like a string counter keeps its entry at zero.
    CounterSet c;
    c.inc(Counter::BsGet, 0);
    c.set(Counter::MicroKernels, 0);
    c.inc("dynamic_zero", 0);
    const auto all = c.all();
    EXPECT_EQ(all.at("bs_get"), 0u);
    EXPECT_EQ(all.at("micro_kernels"), 0u);
    EXPECT_EQ(all.at("dynamic_zero"), 0u);
    EXPECT_EQ(all.count("bs_ip"), 0u); // untouched stays out
}

TEST(CounterSet, TouchedSlotsSurviveMergeRoundTrips)
{
    CounterSet touched;
    touched.inc(Counter::BsGet, 0);
    touched.inc("custom", 3);

    CounterSet merged;
    merged.merge(touched);
    auto all = merged.all();
    EXPECT_EQ(all.at("bs_get"), 0u);
    EXPECT_EQ(all.at("custom"), 3u);

    CounterSet scaled;
    scaled.mergeScaled(touched, 5);
    all = scaled.all();
    EXPECT_EQ(all.at("bs_get"), 0u);
    EXPECT_EQ(all.at("custom"), 15u);
    EXPECT_EQ(all.count("bs_set"), 0u);

    // clear() keeps the touched set, mirroring string counters, so a
    // reused CounterSet reports the same keys before and after.
    merged.clear();
    EXPECT_EQ(merged.all().at("bs_get"), 0u);
    EXPECT_EQ(merged.all().at("custom"), 0u);
}

TEST(CounterSet, MergeCoversInternedSlots)
{
    CounterSet a, b;
    a.inc(Counter::BsIp, 10);
    b.inc(Counter::BsIp, 5);
    b.inc("bs_get", 2); // string route to an interned slot
    b.inc("other", 1);
    a.merge(b);
    EXPECT_EQ(a.get(Counter::BsIp), 15u);
    EXPECT_EQ(a.get(Counter::BsGet), 2u);
    EXPECT_EQ(a.get("other"), 1u);
    CounterSet s;
    s.mergeScaled(b, 4);
    EXPECT_EQ(s.get(Counter::BsIp), 20u);
    EXPECT_EQ(s.get("other"), 4u);
}

TEST(Table, RendersAlignedCells)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "12345"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name  | value |"), std::string::npos);
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos);
}

TEST(Table, Format)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
    EXPECT_EQ(Table::fmtInt(0), "0");
    EXPECT_EQ(Table::fmtInt(999), "999");
    EXPECT_EQ(Table::fmtInt(1000), "1,000");
    EXPECT_EQ(Table::fmtInt(1234567), "1,234,567");
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("boom"), FatalError);
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Logging, StrCat)
{
    EXPECT_EQ(strCat("a", 1, "-w", 2), "a1-w2");
}

TEST(Logging, LevelGatesSink)
{
    // Capture stderr while driving the level knob; restore both after.
    const LogLevel saved = logLevel();
    std::ostringstream captured;
    std::streambuf *old = std::cerr.rdbuf(captured.rdbuf());

    setLogLevel(LogLevel::Silent);
    warn("suppressed");
    inform("suppressed");
    debug("suppressed");
    EXPECT_EQ(captured.str(), "");

    setLogLevel(LogLevel::Warn);
    inform("suppressed");
    debug("suppressed");
    warn("shown");
    EXPECT_EQ(captured.str(), "warn: shown\n");

    captured.str("");
    setLogLevel(LogLevel::Debug);
    debug("shown");
    inform("shown");
    EXPECT_EQ(captured.str(), "debug: shown\ninfo: shown\n");

    std::cerr.rdbuf(old);
    setLogLevel(saved);
}

TEST(Logging, LevelRoundTrips)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(saved);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.workerCount(), 3u);
    const unsigned tasks = 100;
    std::vector<std::atomic<int>> hits(tasks);
    pool.run(tasks, [&](unsigned t) { ++hits[t]; });
    for (unsigned t = 0; t < tasks; ++t)
        EXPECT_EQ(hits[t].load(), 1) << "task " << t;
}

TEST(ThreadPool, ZeroWorkerPoolRunsSerially)
{
    ThreadPool pool(0);
    std::vector<unsigned> order;
    pool.run(5, [&](unsigned t) { order.push_back(t); });
    EXPECT_EQ(order, (std::vector<unsigned>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ReusableAcrossRuns)
{
    ThreadPool pool(2);
    for (unsigned round = 0; round < 20; ++round) {
        std::atomic<unsigned> sum{0};
        pool.run(7, [&](unsigned t) { sum += t; });
        EXPECT_EQ(sum.load(), 21u) << "round " << round;
    }
}

TEST(ThreadPool, PropagatesTaskException)
{
    ThreadPool pool(2);
    std::atomic<int> completed{0};
    EXPECT_THROW(pool.run(8,
                          [&](unsigned t) {
                              if (t == 3)
                                  fatal("task failure");
                              ++completed;
                          }),
                 FatalError);
    // The remaining tasks still ran; the pool stays usable.
    EXPECT_EQ(completed.load(), 7);
    std::atomic<int> after{0};
    pool.run(4, [&](unsigned) { ++after; });
    EXPECT_EQ(after.load(), 4);
}

TEST(ThreadPool, HardwareConcurrencyNeverZero)
{
    EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
    EXPECT_GE(resolveThreadCount(0), 1u);
    EXPECT_EQ(resolveThreadCount(3), 3u);
}

TEST(BoundedQueue, TryPushRespectsCapacityAndFifoOrder)
{
    BoundedQueue<int> queue(2);
    EXPECT_EQ(queue.capacity(), 2u);
    EXPECT_TRUE(queue.tryPush(1));
    EXPECT_TRUE(queue.tryPush(2));
    EXPECT_FALSE(queue.tryPush(3)) << "push past capacity must fail";
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.tryPop(), std::optional<int>(1));
    EXPECT_EQ(queue.tryPop(), std::optional<int>(2));
    EXPECT_EQ(queue.tryPop(), std::nullopt);
}

TEST(BoundedQueue, PushEvictingDisplacesOnlyLessValuableEntries)
{
    // Retention by plain int value: smaller is less worth keeping.
    const auto less = [](int a, int b) { return a < b; };
    BoundedQueue<int> queue(2);
    std::optional<int> evicted;
    EXPECT_EQ(queue.pushEvicting(10, less, evicted), QueuePush::kPushed);
    EXPECT_EQ(queue.pushEvicting(20, less, evicted), QueuePush::kPushed);
    EXPECT_FALSE(evicted.has_value());

    // Full: a more valuable arrival displaces the minimum...
    EXPECT_EQ(queue.pushEvicting(30, less, evicted),
              QueuePush::kPushedEvicted);
    EXPECT_EQ(evicted, std::optional<int>(10));

    // ...an equal-or-less valuable one is rejected, queue untouched.
    EXPECT_EQ(queue.pushEvicting(20, less, evicted),
              QueuePush::kRejected);
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueue, RejectedPushLeavesCallerItemIntact)
{
    // The serving layer answers a rejected request through the very
    // object it tried to push — rejection must not consume it.
    const auto less = [](const std::string &a, const std::string &b) {
        return a < b;
    };
    BoundedQueue<std::string> queue(1);
    std::optional<std::string> evicted;
    std::string keeper = "zz-queued";
    ASSERT_EQ(queue.pushEvicting(std::move(keeper), less, evicted),
              QueuePush::kPushed);
    std::string rejected = "aa-rejected";
    ASSERT_EQ(queue.pushEvicting(std::move(rejected), less, evicted),
              QueuePush::kRejected);
    EXPECT_EQ(rejected, "aa-rejected");
}

TEST(BoundedQueue, CloseDrainsThenStopsConsumers)
{
    BoundedQueue<int> queue(4);
    ASSERT_TRUE(queue.tryPush(7));
    queue.close();
    EXPECT_FALSE(queue.tryPush(8));
    std::optional<int> evicted;
    EXPECT_EQ(queue.pushEvicting(9, std::less<int>(), evicted),
              QueuePush::kClosed);
    // Already-queued work stays poppable; then consumers get the
    // closed-and-empty exit instead of blocking forever.
    EXPECT_EQ(queue.popWait(), std::optional<int>(7));
    EXPECT_EQ(queue.popWait(), std::nullopt);
}

namespace
{
/** Tenant-tagged queue entry for the group-scoped eviction tests. */
struct GroupItem
{
    int group = 0;
    int value = 0; ///< retention worth: smaller is evicted first
    uint64_t seq = 0;
};
} // namespace

TEST(BoundedQueue, PushEvictingWithinNeverEvictsAcrossGroups)
{
    // A full queue holding only group-0 work must reject a group-1
    // arrival outright — no cross-group victim, however cheap.
    BoundedQueue<GroupItem> queue(2);
    const auto less = [](const GroupItem &a, const GroupItem &b) {
        return a.value < b.value;
    };
    std::optional<GroupItem> evicted;
    ASSERT_EQ(queue.pushEvictingWithin(
                  GroupItem{0, 1, 0}, less,
                  [](const GroupItem &it) { return it.group == 0; },
                  false, evicted),
              QueuePush::kPushed);
    ASSERT_EQ(queue.pushEvictingWithin(
                  GroupItem{0, 2, 1}, less,
                  [](const GroupItem &it) { return it.group == 0; },
                  false, evicted),
              QueuePush::kPushed);
    // Queue is globally full; the group-1 push may only consider
    // group-1 victims, of which there are none.
    EXPECT_EQ(queue.pushEvictingWithin(
                  GroupItem{1, 100, 2}, less,
                  [](const GroupItem &it) { return it.group == 1; },
                  false, evicted),
              QueuePush::kRejected);
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(queue.size(), 2u);
    // A group-0 arrival still displaces the group-0 minimum.
    EXPECT_EQ(queue.pushEvictingWithin(
                  GroupItem{0, 50, 3}, less,
                  [](const GroupItem &it) { return it.group == 0; },
                  false, evicted),
              QueuePush::kPushedEvicted);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->group, 0);
    EXPECT_EQ(evicted->value, 1);
}

TEST(BoundedQueue, PushEvictingWithinHonorsGroupBound)
{
    // at_group_bound forces the evict-or-reject path even when the
    // shared queue has global headroom — the per-tenant sub-queue
    // bound, not global capacity, is the binding constraint.
    BoundedQueue<GroupItem> queue(8);
    const auto less = [](const GroupItem &a, const GroupItem &b) {
        return a.value < b.value;
    };
    const auto in_group0 = [](const GroupItem &it) {
        return it.group == 0;
    };
    std::optional<GroupItem> evicted;
    ASSERT_EQ(queue.pushEvictingWithin(GroupItem{0, 5, 0}, less,
                                       in_group0, false, evicted),
              QueuePush::kPushed);
    // Group bound reached: an equal-worth arrival is rejected...
    EXPECT_EQ(queue.pushEvictingWithin(GroupItem{0, 5, 1}, less,
                                       in_group0, true, evicted),
              QueuePush::kRejected);
    EXPECT_EQ(queue.size(), 1u);
    // ...a more valuable one swaps in place (size unchanged).
    EXPECT_EQ(queue.pushEvictingWithin(GroupItem{0, 9, 2}, less,
                                       in_group0, true, evicted),
              QueuePush::kPushedEvicted);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->value, 5);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(BoundedQueue, TryPopWhereIsFifoWithinTheMatchingSubset)
{
    BoundedQueue<GroupItem> queue(8);
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(queue.tryPush(GroupItem{
            i % 2, i, static_cast<uint64_t>(i)}));
    // Popping group 1 repeatedly yields its entries oldest-first,
    // leaving group 0 untouched and in order.
    const auto group1 = [](const GroupItem &it) {
        return it.group == 1;
    };
    EXPECT_EQ(queue.tryPopWhere(group1)->seq, 1u);
    EXPECT_EQ(queue.tryPopWhere(group1)->seq, 3u);
    EXPECT_EQ(queue.tryPopWhere(group1)->seq, 5u);
    EXPECT_EQ(queue.tryPopWhere(group1), std::nullopt);
    EXPECT_EQ(queue.tryPop()->seq, 0u);
    EXPECT_EQ(queue.tryPop()->seq, 2u);
    EXPECT_EQ(queue.tryPop()->seq, 4u);
}

TEST(BoundedQueue, PushEvictingWithinPropertyNoCrossGroupEviction)
{
    // Randomized property check: across thousands of group-scoped
    // pushes with per-group bounds, (a) an eviction victim always
    // belongs to the pusher's group, (b) no group ever exceeds its
    // bound, (c) global capacity holds, (d) accounting identity
    // pushed - evicted - popped == queued per group.
    Rng rng(0xfeedu);
    constexpr size_t kCapacity = 12;
    constexpr int kGroups = 3;
    const size_t bound[kGroups] = {3, 5, 12};
    BoundedQueue<GroupItem> queue(kCapacity);
    size_t queued[kGroups] = {};
    uint64_t pushed[kGroups] = {}, evictions[kGroups] = {},
             popped[kGroups] = {};
    const auto less = [](const GroupItem &a, const GroupItem &b) {
        return a.value < b.value;
    };
    for (uint64_t step = 0; step < 4000; ++step) {
        const int group =
            static_cast<int>(rng.uniformInt(0, kGroups - 1));
        if (rng.uniformInt(0, 3) == 0) { // occasional group-aware pop
            const auto match = [group](const GroupItem &it) {
                return it.group == group;
            };
            if (const auto item = queue.tryPopWhere(match)) {
                ASSERT_EQ(item->group, group);
                --queued[group];
                ++popped[group];
            }
            continue;
        }
        GroupItem item{
            group, static_cast<int>(rng.uniformInt(0, 999)), step};
        std::optional<GroupItem> evicted;
        const auto eligible = [group](const GroupItem &it) {
            return it.group == group;
        };
        const bool at_bound = queued[group] >= bound[group];
        const QueuePush outcome = queue.pushEvictingWithin(
            std::move(item), less, eligible, at_bound, evicted);
        if (outcome == QueuePush::kPushed) {
            ++queued[group];
            ++pushed[group];
        } else if (outcome == QueuePush::kPushedEvicted) {
            ASSERT_TRUE(evicted.has_value());
            ASSERT_EQ(evicted->group, group)
                << "eviction crossed a group boundary at step "
                << step;
            ++pushed[group];
            ++evictions[group];
        }
        size_t total = 0;
        for (int g = 0; g < kGroups; ++g) {
            ASSERT_LE(queued[g], bound[g]) << "group " << g
                                           << " exceeded its bound";
            total += queued[g];
        }
        ASSERT_LE(total, kCapacity);
        ASSERT_EQ(queue.size(), total);
    }
    for (int g = 0; g < kGroups; ++g)
        EXPECT_EQ(pushed[g] - evictions[g] - popped[g], queued[g])
            << "accounting identity broke for group " << g;
}

TEST(BoundedQueue, PopWaitBlocksUntilProducerArrives)
{
    BoundedQueue<int> queue(1);
    std::thread producer([&queue] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        queue.tryPush(42);
    });
    EXPECT_EQ(queue.popWait(), std::optional<int>(42));
    producer.join();
}

TEST(VirtualClock, AdvancesOnlyWhenDriven)
{
    VirtualClock clock(100);
    EXPECT_EQ(clock.nowNs(), 100u);
    EXPECT_EQ(clock.nowNs(), 100u) << "time must not move on its own";
    EXPECT_EQ(clock.advanceNs(50), 150u);
    clock.advanceToNs(200);
    EXPECT_EQ(clock.nowNs(), 200u);
    clock.advanceToNs(120); // behind: monotonic no-op
    EXPECT_EQ(clock.nowNs(), 200u);
}

TEST(MonotonicClockTest, NeverDecreases)
{
    const Clock &clock = MonotonicClock::instance();
    uint64_t previous = clock.nowNs();
    for (int i = 0; i < 1000; ++i) {
        const uint64_t now = clock.nowNs();
        ASSERT_GE(now, previous);
        previous = now;
    }
}

TEST(Cancel, DefaultTokenNeverCancels)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_FALSE(token.poll());
    EXPECT_TRUE(token.status().ok());
    EXPECT_EQ(token.pollCount(), 0u);
}

TEST(Cancel, FirstCancellationWinsAndCarriesReason)
{
    CancelSource source;
    const CancelToken token = source.token();
    EXPECT_FALSE(token.poll());
    source.cancel(Status::cancelled("first"));
    source.cancel(Status::unavailable("second")); // no-op
    EXPECT_TRUE(token.cancelled());
    EXPECT_TRUE(token.poll());
    EXPECT_EQ(token.status().code(), StatusCode::kCancelled);
    EXPECT_EQ(token.status().message(), "first");
}

TEST(Cancel, DeadlineTripsOnFirstPollAtOrAfterIt)
{
    VirtualClock clock(0);
    CancelSource source;
    source.setDeadline(100, clock);
    const CancelToken token = source.token();
    EXPECT_FALSE(token.poll());
    clock.advanceToNs(99);
    EXPECT_FALSE(token.poll());
    clock.advanceToNs(100);
    EXPECT_TRUE(token.poll());
    EXPECT_EQ(token.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(Cancel, PollBumpsHeartbeatAndCount)
{
    std::atomic<uint64_t> heartbeat{0};
    CancelSource source;
    source.setProgressCounter(&heartbeat);
    const CancelToken token = source.token();
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(token.poll());
    EXPECT_EQ(heartbeat.load(), 5u);
    EXPECT_EQ(token.pollCount(), 5u);
    // cancelled() is the cheap flag check: no heartbeat side effect.
    (void)token.cancelled();
    EXPECT_EQ(heartbeat.load(), 5u);
}

TEST(Cancel, PollHookSeesPollIndexAndMayCancel)
{
    CancelSource source;
    std::vector<uint64_t> seen;
    source.setPollHook([&](uint64_t poll) {
        seen.push_back(poll);
        if (poll == 2)
            source.cancel(Status::cancelled("hook"));
    });
    const CancelToken token = source.token();
    EXPECT_FALSE(token.poll());
    EXPECT_FALSE(token.poll());
    EXPECT_TRUE(token.poll());
    EXPECT_EQ(seen, (std::vector<uint64_t>{0, 1, 2}));
}

TEST(ParallelFor, CoversRangeWithDisjointChunks)
{
    for (const unsigned threads : {1u, 2u, 3u, 8u}) {
        for (const uint64_t count : {0ull, 1ull, 7ull, 64ull, 1000ull}) {
            std::vector<std::atomic<int>> hits(count);
            parallelFor(count, threads, [&](uint64_t b, uint64_t e) {
                ASSERT_LT(b, e);
                for (uint64_t i = b; i < e; ++i)
                    ++hits[i];
            });
            for (uint64_t i = 0; i < count; ++i)
                ASSERT_EQ(hits[i].load(), 1)
                    << "threads=" << threads << " count=" << count
                    << " i=" << i;
        }
    }
}

} // namespace
} // namespace mixgemm
