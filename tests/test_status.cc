/**
 * @file
 * Status/Expected boundary tests: the checked entry points (tryMixGemm,
 * tryCompressA/B, tryComputeBsGeometry, makeQuantParams,
 * BlockingParams::validateStatus) must turn every class of bad external
 * input into a structured error — never a crash, never silent garbage —
 * while their success paths stay bitwise-identical to the throwing
 * APIs. Includes a randomized property sweep fuzzing the packing
 * round-trip with hostile shapes.
 */

#include <gtest/gtest.h>

#include <iterator>
#include <limits>
#include <vector>

#include "bs/geometry.h"
#include "common/random.h"
#include "common/status.h"
#include "gemm/mixgemm.h"
#include "quant/quantizer.h"
#include "tensor/packing.h"

namespace mixgemm
{
namespace
{

std::vector<int32_t>
randomNarrowMatrix(Rng &rng, uint64_t elems, unsigned bw, bool is_signed)
{
    std::vector<int32_t> data(elems);
    const int64_t lo = is_signed ? -(int64_t{1} << (bw - 1)) : 0;
    const int64_t hi = is_signed ? (int64_t{1} << (bw - 1)) - 1
                                 : (int64_t{1} << bw) - 1;
    for (auto &v : data)
        v = static_cast<int32_t>(rng.uniformInt(lo, hi));
    return data;
}

// ---------------------------------------------------------------------
// Status / Expected core semantics
// ---------------------------------------------------------------------

TEST(StatusTest, DefaultIsOkAndFactoriesCarryCodeAndMessage)
{
    const Status ok;
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.code(), StatusCode::kOk);
    EXPECT_EQ(ok.toString(), "ok");

    const Status bad = Status::invalidArgument("negative width");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(bad.message(), "negative width");
    EXPECT_EQ(bad.toString(), "invalid_argument: negative width");

    EXPECT_EQ(Status::outOfRange("x").code(), StatusCode::kOutOfRange);
    EXPECT_EQ(Status::failedPrecondition("x").code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(Status::dataLoss("x").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, ExpectedHoldsValueOrError)
{
    Expected<int> good(7);
    EXPECT_TRUE(good.ok());
    EXPECT_TRUE(static_cast<bool>(good));
    EXPECT_EQ(*good, 7);
    EXPECT_EQ(good.value(), 7);
    EXPECT_TRUE(good.status().ok());

    Expected<int> bad(Status::outOfRange("index 9 of 4"));
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
    // Reading the wrong alternative is a caller bug and panics.
    EXPECT_THROW(bad.value(), PanicError);
    // Constructing an error Expected from an ok Status is also a bug.
    EXPECT_THROW(Expected<int>{Status{}}, PanicError);
}

// ---------------------------------------------------------------------
// Checked boundary: blocking and GEMM
// ---------------------------------------------------------------------

TEST(CheckedBoundaryTest, BlockingValidateStatus)
{
    EXPECT_TRUE(BlockingParams::paperDefaults().validateStatus().ok());
    BlockingParams zero;
    zero.kc = 0;
    EXPECT_FALSE(zero.validateStatus().ok());
    BlockingParams micro;
    micro.mr = 8;
    micro.mc = 4;
    EXPECT_FALSE(micro.validateStatus().ok());
}

TEST(CheckedBoundaryTest, TryMixGemmRejectsMismatchedOperands)
{
    const BsGeometry g8 = computeBsGeometry(DataSizeConfig{8, 8, true,
                                                           true});
    const BsGeometry g4 = computeBsGeometry(DataSizeConfig{4, 4, true,
                                                           true});
    Rng rng(7);
    const auto a_data = randomNarrowMatrix(rng, 8 * 16, 8, true);
    const auto b16 = randomNarrowMatrix(rng, 16 * 4, 8, true);
    const auto b24 = randomNarrowMatrix(rng, 24 * 4, 8, true);
    const auto b16n4 = randomNarrowMatrix(rng, 16 * 4, 4, true);
    const CompressedA a(a_data, 8, 16, g8);

    // k mismatch.
    const auto k_mismatch =
        tryMixGemm(a, CompressedB(b24, 24, 4, g8));
    ASSERT_FALSE(k_mismatch.ok());
    EXPECT_EQ(k_mismatch.status().code(), StatusCode::kInvalidArgument);

    // Data-size configuration mismatch.
    const auto config_mismatch =
        tryMixGemm(a, CompressedB(b16n4, 16, 4, g4));
    ASSERT_FALSE(config_mismatch.ok());
    EXPECT_EQ(config_mismatch.status().code(),
              StatusCode::kInvalidArgument);

    // Bad blocking surfaces through the same boundary.
    BlockingParams bad;
    bad.mc = 0;
    EXPECT_FALSE(tryMixGemm(a, CompressedB(b16, 16, 4, g8), bad).ok());

    // And the success path matches the throwing API bitwise.
    const CompressedB b(b16, 16, 4, g8);
    const auto checked = tryMixGemm(a, b);
    ASSERT_TRUE(checked.ok());
    EXPECT_EQ(checked->c, mixGemm(a, b).c);
}

TEST(CheckedBoundaryTest, TryComputeBsGeometry)
{
    const auto good = tryComputeBsGeometry(DataSizeConfig{8, 4, true,
                                                          true});
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good->cw,
              computeBsGeometry(DataSizeConfig{8, 4, true, true}).cw);

    EXPECT_FALSE(
        tryComputeBsGeometry(DataSizeConfig{1, 8, true, true}).ok());
    EXPECT_FALSE(
        tryComputeBsGeometry(DataSizeConfig{8, 9, true, true}).ok());
    // A multiplier too narrow for even a single-element cluster.
    EXPECT_FALSE(tryComputeBsGeometry(DataSizeConfig{8, 8, true, true},
                                      /*mul_width=*/8)
                     .ok());
}

// ---------------------------------------------------------------------
// Checked boundary: quantizer parameters
// ---------------------------------------------------------------------

TEST(CheckedBoundaryTest, MakeQuantParams)
{
    const auto good = makeQuantParams(0.05, 3, 8, false);
    ASSERT_TRUE(good.ok());
    EXPECT_DOUBLE_EQ(good->scale, 0.05);
    EXPECT_EQ(good->zero_point, 3);

    EXPECT_FALSE(makeQuantParams(0.0, 0, 8, true).ok());
    EXPECT_FALSE(makeQuantParams(-1.0, 0, 8, true).ok());
    EXPECT_FALSE(makeQuantParams(
                     std::numeric_limits<double>::infinity(), 0, 8, true)
                     .ok());
    EXPECT_FALSE(makeQuantParams(
                     std::numeric_limits<double>::quiet_NaN(), 0, 8, true)
                     .ok());
    EXPECT_FALSE(makeQuantParams(1.0, 0, 0, true).ok());
    EXPECT_FALSE(makeQuantParams(1.0, 0, 17, true).ok());
    // Zero point outside the clamp range of the format.
    EXPECT_FALSE(makeQuantParams(1.0, 300, 8, false).ok());
    EXPECT_FALSE(makeQuantParams(1.0, -200, 8, true).ok());
}

// ---------------------------------------------------------------------
// Checked boundary: operand compression
// ---------------------------------------------------------------------

TEST(CheckedBoundaryTest, TryCompressRejectsBadOperands)
{
    const BsGeometry geometry =
        computeBsGeometry(DataSizeConfig{4, 4, true, true});
    const std::vector<int32_t> data(12, 1);

    // Empty shapes.
    EXPECT_EQ(tryCompressA({}, 0, 4, geometry).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(tryCompressA({}, 4, 0, geometry).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(tryCompressB({}, 0, 4, geometry).status().code(),
              StatusCode::kInvalidArgument);

    // Buffer size vs shape mismatch.
    EXPECT_EQ(tryCompressA(data, 3, 5, geometry).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(tryCompressB(data, 5, 3, geometry).status().code(),
              StatusCode::kInvalidArgument);

    // Shape product overflow must be caught, not wrapped.
    const uint64_t huge = uint64_t{1} << 63;
    EXPECT_EQ(tryCompressA(data, huge, huge, geometry).status().code(),
              StatusCode::kInvalidArgument);

    // Elements outside the narrow format.
    std::vector<int32_t> hot = data;
    hot[7] = 8; // int4 signed holds [-8, 7]
    EXPECT_EQ(tryCompressA(hot, 3, 4, geometry).status().code(),
              StatusCode::kOutOfRange);
    hot[7] = -9;
    EXPECT_EQ(tryCompressB(hot, 4, 3, geometry).status().code(),
              StatusCode::kOutOfRange);

    // Unsigned formats reject negatives.
    const BsGeometry ugeom =
        computeBsGeometry(DataSizeConfig{4, 4, false, false});
    hot[7] = -1;
    EXPECT_EQ(tryCompressA(hot, 3, 4, ugeom).status().code(),
              StatusCode::kOutOfRange);
}

/**
 * Property sweep: hostile shapes — k far from a multiple of the group
 * extent or the μ-vector element count, single rows/columns, k = 1 —
 * must either compress and decode back exactly, or fail with a
 * structured error. Valid-by-construction data must always succeed.
 */
TEST(CheckedBoundaryTest, PackingRoundTripFuzz)
{
    Rng rng(20260806);
    const std::vector<DataSizeConfig> configs = {
        {8, 8, true, true},  {8, 6, true, true},  {6, 4, false, true},
        {4, 4, false, false}, {3, 5, true, false}, {2, 2, true, true},
    };
    const uint64_t dims[] = {1, 2, 3, 5, 7, 9, 13, 17, 31, 33};

    for (const DataSizeConfig &config : configs) {
        const BsGeometry geometry = computeBsGeometry(config);
        for (unsigned iter = 0; iter < 24; ++iter) {
            const uint64_t rows = dims[rng.next() % std::size(dims)];
            const uint64_t cols = dims[rng.next() % std::size(dims)];

            const auto a_data = randomNarrowMatrix(
                rng, rows * cols, config.bwa, config.a_signed);
            const auto a = tryCompressA(a_data, rows, cols, geometry);
            ASSERT_TRUE(a.ok())
                << config.name() << " " << rows << "x" << cols << ": "
                << a.status().toString();
            for (uint64_t r = 0; r < rows; ++r)
                for (uint64_t c = 0; c < cols; ++c)
                    ASSERT_EQ(a->element(r, c), a_data[r * cols + c])
                        << config.name() << " A(" << r << "," << c << ")";

            const auto b_data = randomNarrowMatrix(
                rng, rows * cols, config.bwb, config.b_signed);
            const auto b = tryCompressB(b_data, rows, cols, geometry);
            ASSERT_TRUE(b.ok())
                << config.name() << " " << rows << "x" << cols << ": "
                << b.status().toString();
            for (uint64_t r = 0; r < rows; ++r)
                for (uint64_t c = 0; c < cols; ++c)
                    ASSERT_EQ(b->element(c, r), b_data[r * cols + c])
                        << config.name() << " B(" << r << "," << c << ")";

            // The same data with one element nudged out of range must
            // be rejected, never mis-packed.
            auto hostile = a_data;
            const size_t victim = rng.next() % hostile.size();
            hostile[victim] = config.a_signed
                ? (int32_t{1} << (config.bwa - 1))
                : -1;
            EXPECT_FALSE(
                tryCompressA(hostile, rows, cols, geometry).ok());
        }
    }
}

/** Extreme zero points at the format edges stay valid and round-trip. */
TEST(CheckedBoundaryTest, QuantParamsEdgeZeroPoints)
{
    for (const bool is_signed : {true, false}) {
        for (const unsigned bits : {2u, 8u, 16u}) {
            QuantParams probe;
            probe.bits = bits;
            probe.is_signed = is_signed;
            for (const int32_t zp : {probe.qmin(), probe.qmax()}) {
                const auto params =
                    makeQuantParams(0.125, zp, bits, is_signed);
                ASSERT_TRUE(params.ok());
                // quantize clamps into range around the extreme zero
                // point; dequantize(quantize(0)) stays near zero.
                const int32_t q = quantize(0.0, *params);
                EXPECT_GE(q, params->qmin());
                EXPECT_LE(q, params->qmax());
            }
            // One past either edge is invalid.
            QuantParams edges;
            edges.bits = bits;
            edges.is_signed = is_signed;
            EXPECT_FALSE(makeQuantParams(0.125, edges.qmax() + 1, bits,
                                         is_signed)
                             .ok());
            EXPECT_FALSE(makeQuantParams(0.125, edges.qmin() - 1, bits,
                                         is_signed)
                             .ok());
        }
    }
}

} // namespace
} // namespace mixgemm
