/**
 * @file
 * Tests for src/soc: cache-geometry validation, SoC presets, and the
 * configuration invariants the simulator relies on.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "soc/soc_config.h"

namespace mixgemm
{
namespace
{

TEST(CacheConfig, SetsAndValidation)
{
    CacheConfig c{32 * 1024, 64, 8, 2};
    EXPECT_NO_THROW(c.validate());
    EXPECT_EQ(c.sets(), 64u);

    c.size_bytes = 33 * 1024;
    EXPECT_THROW(c.validate(), FatalError);
    c = CacheConfig{32 * 1024, 48, 8, 2};
    EXPECT_THROW(c.validate(), FatalError);
    c = CacheConfig{32 * 1024, 64, 0, 2};
    EXPECT_THROW(c.validate(), FatalError);
    // 3-way with a non-power-of-two set count.
    c = CacheConfig{(3 * 64 * 64), 64, 3, 2};
    EXPECT_THROW(c.validate(), FatalError);
}

TEST(SoCConfig, SargantanaPresetMatchesPaperSetup)
{
    const auto soc = SoCConfig::sargantana();
    EXPECT_NO_THROW(soc.validate());
    EXPECT_DOUBLE_EQ(soc.freq_ghz, 1.2);
    EXPECT_EQ(soc.l1d.size_bytes, 32u * 1024);
    EXPECT_EQ(soc.l2.size_bytes, 512u * 1024);
    EXPECT_EQ(soc.uengine.srcbuf_depth, 16u);
    EXPECT_EQ(soc.uengine.accmem_slots, 16u);
    EXPECT_EQ(soc.uengine.multipliers, 1u);
}

TEST(SoCConfig, SmallCacheVariant)
{
    const auto soc = SoCConfig::sargantanaSmallCaches();
    EXPECT_EQ(soc.l1d.size_bytes, 16u * 1024);
    EXPECT_EQ(soc.l2.size_bytes, 64u * 1024);
    EXPECT_NO_THROW(soc.validate());
}

TEST(SoCConfig, ComparisonProcessorPresets)
{
    EXPECT_EQ(SoCConfig::sifiveU740().l2.size_bytes, 2048u * 1024);
    EXPECT_EQ(SoCConfig::cortexA53().name, "cortex-a53");
    EXPECT_NO_THROW(SoCConfig::sifiveU740().validate());
    EXPECT_NO_THROW(SoCConfig::cortexA53().validate());
}

TEST(SoCConfig, ValidationCatchesBadFields)
{
    SoCConfig soc = SoCConfig::sargantana();
    soc.freq_ghz = 0.0;
    EXPECT_THROW(soc.validate(), FatalError);
    soc = SoCConfig::sargantana();
    soc.uengine.srcbuf_depth = 0;
    EXPECT_THROW(soc.validate(), FatalError);
    soc = SoCConfig::sargantana();
    soc.l1d.line_bytes = 100;
    EXPECT_THROW(soc.validate(), FatalError);
}

TEST(CoreTimings, DefaultsModelNonPipelinedFpu)
{
    // The DGEMM pricing assumption documented in soc_config.h.
    const CoreTimings t;
    EXPECT_GT(t.fmul_interval, 1u);
    EXPECT_GE(t.fmul_latency, t.fmul_interval);
    EXPECT_EQ(t.alu_latency, 1u);
}

} // namespace
} // namespace mixgemm
