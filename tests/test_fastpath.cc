/**
 * @file
 * Bit-identity tests for the word-domain fast-path μ-kernel
 * (KernelMode::Fast) against the modeled μ-engine kernel
 * (KernelMode::Modeled): identical C and identical counter totals for
 * every supported data-size configuration, signed and unsigned, across
 * edge shapes and thread counts, plus a randomized property sweep. The
 * modeled path is the cycle-accurate arbiter; any divergence is a
 * fast-path bug by definition.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "gemm/mixgemm.h"
#include "gemm/reference.h"
#include "tensor/packing.h"

namespace mixgemm
{
namespace
{

DataSizeConfig
makeConfig(unsigned bwa, unsigned bwb, bool a_signed, bool b_signed)
{
    DataSizeConfig c;
    c.bwa = bwa;
    c.bwb = bwb;
    c.a_signed = a_signed;
    c.b_signed = b_signed;
    return c;
}

int32_t
randomNarrow(Rng &rng, unsigned bw, bool is_signed)
{
    if (is_signed)
        return static_cast<int32_t>(
            rng.uniformInt(-(int64_t{1} << (bw - 1)),
                           (int64_t{1} << (bw - 1)) - 1));
    return static_cast<int32_t>(rng.uniformInt(0, (int64_t{1} << bw) - 1));
}

std::vector<int32_t>
randomMatrix(Rng &rng, uint64_t elems, unsigned bw, bool is_signed)
{
    std::vector<int32_t> data(elems);
    for (auto &v : data)
        v = randomNarrow(rng, bw, is_signed);
    return data;
}

struct RunSpec
{
    uint64_t m, n, k;
    DataSizeConfig config;
    unsigned threads = 1;
    BlockingParams blocking = BlockingParams::paperDefaults();
};

/**
 * Run the same GEMM under both kernel modes and require bitwise-equal C
 * and bitwise-equal counter maps; also anchor C to the naive reference.
 */
void
expectModesIdentical(Rng &rng, const RunSpec &spec)
{
    const auto a = randomMatrix(rng, spec.m * spec.k, spec.config.bwa,
                                spec.config.a_signed);
    const auto b = randomMatrix(rng, spec.k * spec.n, spec.config.bwb,
                                spec.config.b_signed);
    const auto geometry =
        geometryForK(computeBsGeometry(spec.config), spec.k);

    BlockingParams blocking = spec.blocking;
    blocking.threads = spec.threads;
    blocking.kernel_mode = KernelMode::Fast;
    const auto fast =
        mixGemm(a, b, spec.m, spec.n, spec.k, geometry, blocking);
    blocking.kernel_mode = KernelMode::Modeled;
    const auto modeled =
        mixGemm(a, b, spec.m, spec.n, spec.k, geometry, blocking);

    const std::string label =
        "a" + std::to_string(spec.config.bwa) +
        (spec.config.a_signed ? "s" : "u") + "-w" +
        std::to_string(spec.config.bwb) +
        (spec.config.b_signed ? "s" : "u") + " " +
        std::to_string(spec.m) + "x" + std::to_string(spec.n) + "x" +
        std::to_string(spec.k) + " t" + std::to_string(spec.threads);
    ASSERT_EQ(fast.c, modeled.c) << label;
    EXPECT_EQ(fast.counters.all(), modeled.counters.all()) << label;
    EXPECT_EQ(fast.c,
              referenceGemmInt(a, b, spec.m, spec.n, spec.k))
        << label;
}

// ---------------------------------------------------------------------
// All 49 (bwa, bwb) configurations, signed and unsigned
// ---------------------------------------------------------------------

TEST(FastPath, AllConfigsSignedBitIdentical)
{
    Rng rng(20260801);
    for (const auto &cfg : allSupportedConfigs(true))
        expectModesIdentical(rng, {5, 3, 70, cfg});
}

TEST(FastPath, AllConfigsUnsignedBitIdentical)
{
    Rng rng(20260802);
    for (const auto &cfg : allSupportedConfigs(false))
        expectModesIdentical(rng, {5, 3, 70, cfg});
}

TEST(FastPath, MixedSignednessBitIdentical)
{
    // Asymmetric runtime quantization: unsigned activations against
    // signed weights, and the reverse.
    Rng rng(20260803);
    for (unsigned bwa = 2; bwa <= 8; ++bwa) {
        for (unsigned bwb = 2; bwb <= 8; ++bwb) {
            expectModesIdentical(
                rng, {4, 5, 40, makeConfig(bwa, bwb, false, true)});
            expectModesIdentical(
                rng, {4, 5, 40, makeConfig(bwa, bwb, true, false)});
        }
    }
}

// ---------------------------------------------------------------------
// Edge shapes
// ---------------------------------------------------------------------

TEST(FastPath, EdgeShapes)
{
    // 1x1x1, m/n not multiples of mr/nr, k shorter than one accumulation
    // group (depthwise-style), k crossing a group boundary mid-μ-vector.
    Rng rng(20260804);
    const DataSizeConfig configs[] = {
        makeConfig(8, 8, true, true),
        makeConfig(8, 4, false, true),
        makeConfig(3, 2, true, true),
        makeConfig(2, 2, false, false),
    };
    for (const auto &cfg : configs) {
        for (unsigned threads : {1u, 4u}) {
            expectModesIdentical(rng, {1, 1, 1, cfg, threads});
            expectModesIdentical(rng, {5, 3, 7, cfg, threads});
            expectModesIdentical(rng, {13, 11, 40, cfg, threads});
            expectModesIdentical(rng, {7, 9, 9, cfg, threads});
        }
    }
}

TEST(FastPath, MultiTileMultiPanelBlocking)
{
    // Small cache blocks force multiple macro tiles and multiple gc
    // k-panel passes, so the fast path's edge/interior split and panel
    // attribution are exercised together with threading.
    Rng rng(20260805);
    BlockingParams blocking = BlockingParams::paperDefaults();
    blocking.mc = 8;
    blocking.nc = 8;
    blocking.kc = 64;
    for (unsigned threads : {1u, 4u}) {
        expectModesIdentical(
            rng, {22, 19, 150, makeConfig(8, 8, true, true), threads,
                  blocking});
        expectModesIdentical(
            rng, {22, 19, 150, makeConfig(5, 3, true, false), threads,
                  blocking});
    }
}

// ---------------------------------------------------------------------
// Randomized property sweep
// ---------------------------------------------------------------------

TEST(FastPath, PropertyRandomShapesAndConfigs)
{
    Rng rng(20260806);
    const auto signed_cfgs = allSupportedConfigs(true);
    for (unsigned iter = 0; iter < 60; ++iter) {
        DataSizeConfig cfg =
            signed_cfgs[static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(signed_cfgs.size()) - 1))];
        cfg.a_signed = rng.uniformInt(0, 1) != 0;
        cfg.b_signed = rng.uniformInt(0, 1) != 0;
        RunSpec spec;
        spec.m = static_cast<uint64_t>(rng.uniformInt(1, 24));
        spec.n = static_cast<uint64_t>(rng.uniformInt(1, 24));
        spec.k = static_cast<uint64_t>(rng.uniformInt(1, 130));
        spec.config = cfg;
        spec.threads =
            static_cast<unsigned>(rng.uniformInt(1, 4));
        spec.blocking.mc = static_cast<uint64_t>(rng.uniformInt(4, 16));
        spec.blocking.nc = static_cast<uint64_t>(rng.uniformInt(4, 16));
        spec.blocking.kc = static_cast<uint64_t>(rng.uniformInt(32, 96));
        expectModesIdentical(rng, spec);
    }
}

// ---------------------------------------------------------------------
// Cluster-panel cache behavior
// ---------------------------------------------------------------------

TEST(FastPath, PanelsBuildOnceAndCopiesShare)
{
    Rng rng(20260807);
    const auto cfg = makeConfig(8, 8, true, true);
    const auto geometry = computeBsGeometry(cfg);
    const uint64_t m = 6, k = 64;
    const auto data = randomMatrix(rng, m * k, cfg.bwa, cfg.a_signed);
    const CompressedA a(data, m, k, geometry);
    a.ensureClusterPanels();
    const uint64_t *before = a.groupClusters(0, 0);
    a.ensureClusterPanels(); // idempotent: no rebuild, no reallocation
    EXPECT_EQ(before, a.groupClusters(0, 0));
    const CompressedA copy = a; // copies share the immutable panels
    EXPECT_EQ(before, copy.groupClusters(0, 0));
}

TEST(FastPath, ModeledModeNeedsNoPanels)
{
    // Modeled mode must not require (or build) cluster panels.
    Rng rng(20260808);
    const auto cfg = makeConfig(4, 4, true, true);
    const auto geometry = computeBsGeometry(cfg);
    const uint64_t m = 4, n = 4, k = 32;
    const auto a = randomMatrix(rng, m * k, cfg.bwa, cfg.a_signed);
    const auto b = randomMatrix(rng, k * n, cfg.bwb, cfg.b_signed);
    BlockingParams blocking = BlockingParams::paperDefaults();
    blocking.kernel_mode = KernelMode::Modeled;
    const auto result = mixGemm(a, b, m, n, k, geometry, blocking);
    EXPECT_EQ(result.c, referenceGemmInt(a, b, m, n, k));
}

} // namespace
} // namespace mixgemm
