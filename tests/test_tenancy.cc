/**
 * @file
 * Tests for the multi-tenant isolation plane (serve/tenancy.h): the
 * registry's deterministic id assignment and token buckets, the DWRR
 * scheduler's weight-proportional dispatch and within-lane eviction,
 * tenant-policy JSON parsing (including hostile documents), and the
 * server-level contracts — quota rejections with machine-readable
 * reasons, priority ceilings, accuracy floors, brownout ordering,
 * graceful drain, the 10:1 weighted fairness soak, the per-tenant
 * accounting identity, and same-seed decision-log determinism.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "runtime/qgraph.h"
#include "serve/server.h"
#include "serve/soak.h"
#include "serve/tenancy.h"

namespace mixgemm
{
namespace
{

// ---------------------------------------------------------------------
// TenantRegistry
// ---------------------------------------------------------------------

TEST(TenantRegistry, ConfiguredTenantsGetIdsInNameOrderThenFirstSeen)
{
    TenancyOptions options;
    options.enabled = true;
    options.tenants["bravo"] = {};
    options.tenants["alpha"] = {};
    TenantRegistry registry(options);
    // Map order: alpha before bravo, regardless of insertion order.
    EXPECT_EQ(registry.findId("alpha"), std::optional<uint32_t>(0));
    EXPECT_EQ(registry.findId("bravo"), std::optional<uint32_t>(1));
    EXPECT_EQ(registry.findId("charlie"), std::nullopt);
    // First-seen registration continues the dense sequence.
    EXPECT_EQ(registry.resolve("charlie"), std::optional<uint32_t>(2));
    EXPECT_EQ(registry.resolve("charlie"), std::optional<uint32_t>(2));
    EXPECT_EQ(registry.count(), 3u);
    EXPECT_EQ(registry.state(2).name, "charlie");
}

TEST(TenantRegistry, MaxTenantsCapsRegistrationNotLookups)
{
    TenancyOptions options;
    options.enabled = true;
    options.max_tenants = 2;
    options.tenants["a"] = {};
    options.tenants["b"] = {};
    TenantRegistry registry(options);
    EXPECT_EQ(registry.resolve("a"), std::optional<uint32_t>(0));
    // The table is full: a new name cannot register...
    EXPECT_EQ(registry.resolve("hostile-churn-1"), std::nullopt);
    EXPECT_EQ(registry.resolve("hostile-churn-2"), std::nullopt);
    EXPECT_EQ(registry.count(), 2u);
    // ...but known names keep resolving.
    EXPECT_EQ(registry.resolve("b"), std::optional<uint32_t>(1));
}

TEST(TenantRegistry, TokenBucketAdmitsBurstThenRefillsFromClock)
{
    TenancyOptions options;
    options.enabled = true;
    TenantPolicy policy;
    policy.rate_per_s = 2.0; // one token per 500 ms
    policy.burst = 2.0;
    options.tenants["metered"] = policy;
    TenantRegistry registry(options);
    TenantState &state = registry.state(*registry.findId("metered"));

    uint64_t now = 1'000'000'000;
    EXPECT_TRUE(registry.tryAcquireToken(state, now));
    EXPECT_TRUE(registry.tryAcquireToken(state, now));
    EXPECT_FALSE(registry.tryAcquireToken(state, now))
        << "burst of 2 must not admit a third back-to-back request";
    // 500 ms refills exactly one token at 2 req/s.
    now += 500'000'000;
    EXPECT_TRUE(registry.tryAcquireToken(state, now));
    EXPECT_FALSE(registry.tryAcquireToken(state, now));
    // A long idle period refills to the burst cap, no further.
    now += 60'000'000'000;
    EXPECT_TRUE(registry.tryAcquireToken(state, now));
    EXPECT_TRUE(registry.tryAcquireToken(state, now));
    EXPECT_FALSE(registry.tryAcquireToken(state, now));
}

TEST(TenantRegistry, ZeroRateMeansUnlimited)
{
    TenancyOptions options;
    options.enabled = true;
    TenantRegistry registry(options);
    TenantState &state = registry.state(*registry.resolve("free"));
    for (int i = 0; i < 1000; ++i)
        ASSERT_TRUE(registry.tryAcquireToken(state, 42));
}

// ---------------------------------------------------------------------
// TenantScheduler (DWRR)
// ---------------------------------------------------------------------

/** Minimal schedulable item: the scheduler only needs tenant_id. */
struct FakeItem
{
    uint32_t tenant_id = 0;
    int priority = 0;
    uint64_t seq = 0;
};

TEST(TenantScheduler, DwrrDispatchesInWeightProportion)
{
    // Two saturated lanes at 10:1 — across any window of 11
    // consecutive dispatches, tenant 0 receives exactly 10.
    TenantScheduler<FakeItem> sched(64, /*quantum=*/1);
    sched.ensureLane(0, /*weight=*/10, /*bound=*/0);
    sched.ensureLane(1, /*weight=*/1, /*bound=*/0);
    const auto less = [](const FakeItem &, const FakeItem &) {
        return false; // never evict
    };
    std::optional<FakeItem> evicted;
    for (uint64_t i = 0; i < 22; ++i) {
        ASSERT_EQ(sched.push(0, FakeItem{0, 0, i}, less, evicted),
                  QueuePush::kPushed);
        ASSERT_EQ(sched.push(1, FakeItem{1, 0, i}, less, evicted),
                  QueuePush::kPushed);
    }
    unsigned counts[2] = {0, 0};
    std::vector<uint32_t> order;
    for (int i = 0; i < 22; ++i) {
        const auto popped = sched.tryPop();
        ASSERT_TRUE(popped.has_value());
        ++counts[popped->tenant];
        order.push_back(popped->tenant);
    }
    EXPECT_EQ(counts[0], 20u);
    EXPECT_EQ(counts[1], 2u);
    // The dispatch pattern is the exact DWRR cycle, not merely the
    // right aggregate: ten of lane 0, one of lane 1, repeating.
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], (i % 11) == 10 ? 1u : 0u) << "at " << i;
}

TEST(TenantScheduler, EmptiedLaneForfeitsDeficitNoCreditHoarding)
{
    TenantScheduler<FakeItem> sched(64, /*quantum=*/4);
    sched.ensureLane(0, /*weight=*/8, 0);
    sched.ensureLane(1, /*weight=*/1, 0);
    const auto less = [](const FakeItem &, const FakeItem &) {
        return false;
    };
    std::optional<FakeItem> evicted;
    // Lane 0 holds one item but a 32-grain deficit allowance; popping
    // its only item must zero the leftover deficit.
    ASSERT_EQ(sched.push(0, FakeItem{0, 0, 0}, less, evicted),
              QueuePush::kPushed);
    ASSERT_EQ(sched.push(1, FakeItem{1, 0, 1}, less, evicted),
              QueuePush::kPushed);
    auto popped = sched.tryPop();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(popped->tenant, 0u);
    EXPECT_EQ(sched.laneDeficit(0), 0u)
        << "an emptied lane must not hoard deficit while idle";
    popped = sched.tryPop();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(popped->tenant, 1u);
    EXPECT_EQ(sched.tryPop(), std::nullopt);
}

TEST(TenantScheduler, LaneBoundEvictsWithinLaneOnly)
{
    // Global capacity 8, lane 0 bounded to 2. Its third push must
    // displace lane-0 work (or be rejected) even though the shared
    // queue has room, and lane 1's entries are never candidates.
    TenantScheduler<FakeItem> sched(8, 1);
    sched.ensureLane(0, 1, /*bound=*/2);
    sched.ensureLane(1, 1, /*bound=*/0);
    const auto less = [](const FakeItem &a, const FakeItem &b) {
        return a.priority < b.priority;
    };
    std::optional<FakeItem> evicted;
    ASSERT_EQ(sched.push(1, FakeItem{1, 0, 100}, less, evicted),
              QueuePush::kPushed);
    ASSERT_EQ(sched.push(0, FakeItem{0, 1, 0}, less, evicted),
              QueuePush::kPushed);
    ASSERT_EQ(sched.push(0, FakeItem{0, 2, 1}, less, evicted),
              QueuePush::kPushed);
    // Equal priority: rejected, nothing evicted anywhere.
    EXPECT_EQ(sched.push(0, FakeItem{0, 1, 2}, less, evicted),
              QueuePush::kRejected);
    EXPECT_EQ(sched.laneDepth(0), 2u);
    EXPECT_EQ(sched.laneDepth(1), 1u);
    // Higher priority: displaces lane 0's cheapest, not lane 1's
    // zero-priority entry.
    EXPECT_EQ(sched.push(0, FakeItem{0, 9, 3}, less, evicted),
              QueuePush::kPushedEvicted);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->tenant_id, 0u);
    EXPECT_EQ(evicted->priority, 1);
    EXPECT_EQ(sched.laneDepth(0), 2u);
    EXPECT_EQ(sched.laneDepth(1), 1u);
}

// ---------------------------------------------------------------------
// Tenant-policy JSON
// ---------------------------------------------------------------------

TEST(TenancyJson, ParsesFullDocument)
{
    const auto parsed = parseTenancyJson(R"({
        "default": {"weight": 2, "rate_per_s": 10.5, "burst": 3,
                    "max_queue": 4, "max_in_flight": 6,
                    "priority_ceiling": 1, "tier_floor": 2},
        "tenants": {"victim": {"weight": 10, "tier_floor": 0},
                    "aggressor": {"weight": 1, "rate_per_s": 200}},
        "brownout": {"enabled": true, "high_watermark": 0.6,
                     "low_watermark": 0.2, "over_share_factor": 1.5,
                     "max_steps": 3, "min_dwell_ns": 1000},
        "quantum": 2,
        "max_tenants": 32
    })");
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    const TenancyOptions &options = *parsed;
    EXPECT_TRUE(options.enabled);
    EXPECT_EQ(options.default_policy.weight, 2u);
    EXPECT_DOUBLE_EQ(options.default_policy.rate_per_s, 10.5);
    EXPECT_EQ(options.default_policy.max_queue, 4u);
    EXPECT_EQ(options.default_policy.max_in_flight, 6u);
    EXPECT_EQ(options.default_policy.priority_ceiling, 1);
    EXPECT_EQ(options.default_policy.tier_floor, 2);
    ASSERT_EQ(options.tenants.size(), 2u);
    EXPECT_EQ(options.tenants.at("victim").weight, 10u);
    EXPECT_EQ(options.tenants.at("victim").tier_floor, 0);
    EXPECT_DOUBLE_EQ(options.tenants.at("aggressor").rate_per_s, 200.0);
    EXPECT_DOUBLE_EQ(options.brownout.high_watermark, 0.6);
    EXPECT_EQ(options.brownout.max_steps, 3u);
    EXPECT_EQ(options.quantum, 2u);
    EXPECT_EQ(options.max_tenants, 32u);
}

TEST(TenancyJson, EmptyDocumentYieldsEnabledDefaults)
{
    const auto parsed = parseTenancyJson("{}");
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_TRUE(parsed->enabled);
    EXPECT_EQ(parsed->default_policy.weight, 1u);
    EXPECT_TRUE(parsed->tenants.empty());
}

TEST(TenancyJson, HostileDocumentsAreRejectedNotCrashed)
{
    const char *bad[] = {
        "",                                   // empty
        "not json",                           // garbage
        "[1,2,3]",                            // wrong root kind
        "{\"default\": 7}",                   // policy must be object
        "{\"default\": {\"weight\": 0}}",     // weight below 1
        "{\"default\": {\"weight\": -3}}",    // negative weight
        "{\"default\": {\"weight\": 1e300}}", // absurd weight
        "{\"default\": {\"rate_per_s\": -1}}",
        "{\"default\": {\"rate_per_s\": 1e400}}", // non-finite
        "{\"default\": {\"burst\": 0}}",          // burst below 1
        "{\"default\": {\"tier_floor\": 1000}}",  // past any ladder
        "{\"tenants\": {\"a\": 5}}",
        "{\"brownout\": {\"high_watermark\": \"high\"}}",
        "{\"quantum\": 0}",
        "{\"max_tenants\": 0}",
        "{\"default\": {\"weight\": 1}",     // truncated
        "{\"unknown_key\": 1}",              // unknown top-level key
    };
    for (const char *doc : bad) {
        const auto parsed = parseTenancyJson(doc);
        EXPECT_FALSE(parsed.ok()) << "accepted hostile doc: " << doc;
    }
}

TEST(TenancyScenarios, NamedScenariosResolveAndUnknownIsAnError)
{
    const auto noisy = tenantScenarioByName("noisy-neighbor");
    ASSERT_TRUE(noisy.ok());
    EXPECT_TRUE(noisy->options.enabled);
    EXPECT_EQ(noisy->options.tenants.at("victim").weight, 10u);
    EXPECT_EQ(noisy->options.tenants.at("aggressor").weight, 1u);
    ASSERT_EQ(noisy->arrival_mix.size(), 2u);

    const auto storm = tenantScenarioByName("quota-storm");
    ASSERT_TRUE(storm.ok());
    EXPECT_EQ(storm->options.tenants.size(), 4u);
    for (const auto &[name, policy] : storm->options.tenants) {
        EXPECT_GT(policy.rate_per_s, 0.0) << name;
        EXPECT_GT(policy.max_in_flight, 0u) << name;
    }

    const auto unknown = tenantScenarioByName("nope");
    ASSERT_FALSE(unknown.ok());
    EXPECT_NE(unknown.status().message().find("noisy-neighbor"),
              std::string::npos)
        << "the error should list the valid names";
}

// ---------------------------------------------------------------------
// Server-level quota / bulkhead / drain contracts (pump mode)
// ---------------------------------------------------------------------

constexpr uint64_t kK = 32;
constexpr uint64_t kN = 8;

QuantizedGraph
makeLinearGraph(uint64_t seed)
{
    Rng rng(seed);
    QNode lin;
    lin.kind = QNode::Kind::kLinear;
    lin.spec.in_c = static_cast<unsigned>(kK);
    lin.spec.out_c = static_cast<unsigned>(kN);
    lin.spec.kh = lin.spec.kw = 1;
    lin.spec.in_h = lin.spec.in_w = 1;
    lin.weights_q.resize(kK * kN);
    for (auto &w : lin.weights_q)
        w = static_cast<int32_t>(rng.uniformInt(-20, 20));
    lin.bias.assign(kN, 0.25);
    lin.a_params = QuantParams{0.05, 0, 8, true};
    lin.w_params = QuantParams{0.05, 0, 8, true};
    return QuantizedGraph({lin});
}

ServerOptions
pumpOptions(VirtualClock &clock)
{
    ServerOptions options;
    options.workers = 0;
    options.virtual_clock = &clock;
    options.degradation.enabled = false;
    options.queue_capacity = 8;
    return options;
}

uint64_t
registerLinear(InferenceServer &server, unsigned tiers = 1)
{
    std::vector<TierSpec> ladder;
    for (unsigned t = 0; t < tiers; ++t) {
        TierSpec tier;
        tier.graph = makeLinearGraph(7);
        tier.label = "t" + std::to_string(t);
        ladder.push_back(std::move(tier));
    }
    auto id = server.registerGraph("lin", std::move(ladder), {1, kK});
    EXPECT_TRUE(id.ok()) << id.status().toString();
    return *id;
}

ServeRequest
makeRequest(uint64_t graph_id, const std::string &tenant,
            int priority = 0)
{
    ServeRequest request;
    request.graph_id = graph_id;
    Rng rng(11);
    std::vector<double> data(kK);
    for (auto &v : data)
        v = rng.uniformReal(-1.0, 1.0);
    request.input = Tensor<double>({1, kK}, std::move(data));
    request.priority = priority;
    request.tenant = tenant;
    return request;
}

bool
logContains(const InferenceServer &server, const std::string &needle)
{
    for (const std::string &line : server.decisionLog())
        if (line.find(needle) != std::string::npos)
            return true;
    return false;
}

TEST(ServerTenancy, RateLimitRejectsWithMachineReadableReason)
{
    VirtualClock clock(1'000'000'000);
    ServerOptions options = pumpOptions(clock);
    options.tenancy.enabled = true;
    TenantPolicy metered;
    metered.rate_per_s = 2.0;
    metered.burst = 1.0;
    options.tenancy.tenants["metered"] = metered;
    InferenceServer server(options);
    const uint64_t id = registerLinear(server);

    auto ok = server.submit(makeRequest(id, "metered"));
    auto limited = server.submit(makeRequest(id, "metered"));
    const Status status = limited.get().status;
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(status.message().rfind("tenant_rate:", 0), 0u)
        << status.message();
    EXPECT_TRUE(logContains(server, "reject_rate seq=1"));
    EXPECT_TRUE(logContains(server, "tenant=metered"));

    // 500 ms refills one token; the tenant is admitted again.
    clock.advanceNs(500'000'000);
    auto refilled = server.submit(makeRequest(id, "metered"));
    server.pump(10);
    EXPECT_TRUE(ok.get().status.ok());
    EXPECT_TRUE(refilled.get().status.ok());

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.rejected_rate, 1u);
    EXPECT_EQ(stats.by_tenant.at("metered").rejected_rate, 1u);
    EXPECT_EQ(stats.by_priority.at(0).rejected_quota, 1u);
}

TEST(ServerTenancy, BulkheadCapsOutstandingAndReleasesOnCompletion)
{
    VirtualClock clock;
    ServerOptions options = pumpOptions(clock);
    options.tenancy.enabled = true;
    TenantPolicy bulk;
    bulk.max_in_flight = 2;
    options.tenancy.tenants["bulk"] = bulk;
    InferenceServer server(options);
    const uint64_t id = registerLinear(server);

    auto a = server.submit(makeRequest(id, "bulk"));
    auto b = server.submit(makeRequest(id, "bulk"));
    auto rejected = server.submit(makeRequest(id, "bulk"));
    const Status status = rejected.get().status;
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(status.message().rfind("tenant_bulkhead:", 0), 0u)
        << status.message();
    // Completions release the bulkhead: the tenant fits again.
    EXPECT_EQ(server.pump(10), 2u);
    EXPECT_TRUE(a.get().status.ok());
    EXPECT_TRUE(b.get().status.ok());
    auto after = server.submit(makeRequest(id, "bulk"));
    server.pump(10);
    EXPECT_TRUE(after.get().status.ok());

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.rejected_bulkhead, 1u);
    EXPECT_EQ(stats.by_tenant.at("bulk").rejected_bulkhead, 1u);
}

TEST(ServerTenancy, PriorityCeilingClampsAndLogs)
{
    VirtualClock clock;
    ServerOptions options = pumpOptions(clock);
    options.tenancy.enabled = true;
    TenantPolicy humble;
    humble.priority_ceiling = 1;
    options.tenancy.tenants["humble"] = humble;
    InferenceServer server(options);
    const uint64_t id = registerLinear(server);

    auto future = server.submit(makeRequest(id, "humble", 9));
    server.pump(10);
    const ServeResponse response = future.get();
    EXPECT_TRUE(response.status.ok());
    EXPECT_EQ(response.report.priority, 1);
    EXPECT_TRUE(
        logContains(server, "priority_clamp seq=0 prio=9->1"));
    EXPECT_EQ(server.stats().priority_clamps, 1u);
}

TEST(ServerTenancy, TenantTableOverflowRejectsWithLimitReason)
{
    VirtualClock clock;
    ServerOptions options = pumpOptions(clock);
    options.tenancy.enabled = true;
    options.tenancy.max_tenants = 1;
    InferenceServer server(options);
    const uint64_t id = registerLinear(server);

    auto first = server.submit(makeRequest(id, "only"));
    auto churn = server.submit(makeRequest(id, "hostile-churn"));
    const Status status = churn.get().status;
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(status.message().rfind("tenant_limit:", 0), 0u)
        << status.message();
    server.pump(10);
    EXPECT_TRUE(first.get().status.ok());

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.rejected_tenant_limit, 1u);
    EXPECT_EQ(
        stats.by_tenant.at(TenantRegistry::kOverflowName).rejected_limit,
        1u);
    EXPECT_EQ(stats.tenant_count, 1u);
}

TEST(ServerTenancy, TierFloorStopsDegradationForThatTenant)
{
    // Global degradation pinned at the deepest rung; the floored
    // tenant still executes no deeper than its floor while the
    // unfloored one rides the full ladder.
    VirtualClock clock;
    ServerOptions options = pumpOptions(clock);
    options.tenancy.enabled = true;
    options.degradation.enabled = true;
    options.degradation.high_watermark = 0.0; // permanently degraded
    options.degradation.low_watermark = 0.0;
    TenantPolicy floored;
    floored.tier_floor = 1;
    options.tenancy.tenants["floored"] = floored;
    InferenceServer server(options);
    const uint64_t id = registerLinear(server, /*tiers=*/3);

    // Push the global level to the bottom of the ladder.
    std::vector<std::future<ServeResponse>> futures;
    for (int i = 0; i < 6; ++i)
        futures.push_back(server.submit(makeRequest(id, "greedy")));
    futures.push_back(server.submit(makeRequest(id, "floored")));
    server.pump(20);
    unsigned floored_max = 0, greedy_max = 0;
    for (auto &future : futures) {
        const ServeResponse response = future.get();
        ASSERT_TRUE(response.status.ok());
        if (response.report.tenant == "floored")
            floored_max = std::max(floored_max, response.report.tier);
        else
            greedy_max = std::max(greedy_max, response.report.tier);
    }
    EXPECT_LE(floored_max, 1u) << "accuracy floor violated";
    EXPECT_EQ(greedy_max, 2u)
        << "the unfloored tenant should reach the deepest rung";
}

TEST(ServerTenancy, GracefulDrainRejectsNewWorkAndFinishesQueued)
{
    VirtualClock clock;
    ServerOptions options = pumpOptions(clock);
    options.tenancy.enabled = true;
    InferenceServer server(options);
    const uint64_t id = registerLinear(server);

    auto queued = server.submit(makeRequest(id, "t0"));
    server.beginDrain();
    EXPECT_FALSE(server.drained()) << "work is still queued";
    auto late = server.submit(makeRequest(id, "t1"));
    const Status status = late.get().status;
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
    EXPECT_EQ(status.message().rfind("tenant_drain:", 0), 0u)
        << status.message();

    EXPECT_TRUE(logContains(server, "drain_begin depth=1"));
    EXPECT_TRUE(logContains(server, "drain_tenant"));
    server.pump(10);
    EXPECT_TRUE(queued.get().status.ok());
    EXPECT_TRUE(server.drained());
    EXPECT_TRUE(server.awaitDrained(0));

    const ServerStats stats = server.stats();
    EXPECT_TRUE(stats.draining);
    EXPECT_EQ(stats.rejected_draining, 1u);
    EXPECT_EQ(stats.by_priority.at(0).rejected_draining, 1u);
    EXPECT_EQ(stats.drain_cancelled, 0u);
}

TEST(ServerTenancy, ShutdownDuringDrainCancelsLeftoversWithAccounting)
{
    VirtualClock clock;
    ServerOptions options = pumpOptions(clock);
    options.tenancy.enabled = true;
    InferenceServer server(options);
    const uint64_t id = registerLinear(server);
    auto a = server.submit(makeRequest(id, "t0"));
    auto b = server.submit(makeRequest(id, "t1"));
    server.beginDrain();
    server.shutdown(); // drain never pumped: queued work is dropped
    EXPECT_EQ(a.get().status.code(), StatusCode::kUnavailable);
    EXPECT_EQ(b.get().status.code(), StatusCode::kUnavailable);
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.drain_cancelled, 2u);
    EXPECT_EQ(stats.by_tenant.at("t0").drain_cancelled, 1u);
    EXPECT_EQ(stats.by_tenant.at("t1").drain_cancelled, 1u);
}

// ---------------------------------------------------------------------
// Fairness, identity, and determinism contracts (soak harness)
// ---------------------------------------------------------------------

/** Sum of the per-tenant terminal buckets that must equal submitted
 * (the identity documented on TenantStats). */
uint64_t
terminalSum(const TenantStats &ts)
{
    return ts.completed_ok + ts.shed + ts.rejected_full +
           ts.rejected_invalid + ts.rejected_closed + ts.rejected_rate +
           ts.rejected_bulkhead + ts.rejected_limit +
           ts.rejected_draining + ts.expired_submit +
           ts.deadline_exceeded + ts.cancelled + ts.failed;
}

SoakConfig
tenancySoak(uint64_t seed)
{
    SoakConfig config;
    config.seed = seed;
    config.duration_s = 0.5;
    config.ladder_tiers = 2;
    config.tenant_scenario = "noisy-neighbor";
    return config;
}

TEST(TenancySoak, SameSeedScenarioRunsAreByteIdentical)
{
    const SoakConfig config = tenancySoak(77);
    const SoakResult first = runServeSoak(config);
    const SoakResult second = runServeSoak(config);
    ASSERT_GT(first.decision_log.size(), 0u);
    EXPECT_EQ(first.decision_log, second.decision_log);
    EXPECT_EQ(first.decision_hash, second.decision_hash);
    EXPECT_GT(first.stats.completed_ok, 0u);
    // Tenancy decisions are part of the log: dispatch lines carry the
    // DWRR deficit, admissions the tenant.
    bool saw_dispatch = false;
    for (const std::string &line : first.decision_log)
        if (line.find(" dispatch seq=") != std::string::npos &&
            line.find(" deficit=") != std::string::npos &&
            line.find(" tenant=") != std::string::npos)
            saw_dispatch = true;
    EXPECT_TRUE(saw_dispatch)
        << "dispatch decisions must log tenant and deficit state";
}

TEST(TenancySoak, PerTenantAccountingIdentityHoldsAfterDrain)
{
    for (const char *scenario : {"noisy-neighbor", "quota-storm"}) {
        SoakConfig config = tenancySoak(13);
        config.tenant_scenario = scenario;
        const SoakResult result = runServeSoak(config);
        ASSERT_FALSE(result.stats.by_tenant.empty()) << scenario;
        uint64_t total_submitted = 0;
        for (const auto &[tenant, ts] : result.stats.by_tenant) {
            EXPECT_EQ(ts.submitted, terminalSum(ts))
                << scenario << " tenant " << tenant;
            total_submitted += ts.submitted;
        }
        EXPECT_EQ(total_submitted, result.stats.submitted) << scenario;
    }
}

TEST(TenancySoak, WeightedFairnessTenToOneWithinFivePercent)
{
    // Two tenants with equal offered load and 10:1 weights, driven
    // well past capacity with no deadlines: under a saturated queue
    // DWRR must split goodput 10:1 within ±5 % (the ISSUE acceptance
    // criterion).
    SoakConfig config;
    config.seed = 21;
    config.duration_s = 1.0;
    config.arrival_hz = 6000.0;
    config.burst_every_s = 0.0;
    config.oversized_prob = 0.0;
    config.bad_graph_prob = 0.0;
    config.no_deadline_prob = 1.0;
    config.priority_levels = 1;
    config.queue_capacity = 32;
    config.degradation.enabled = false;
    config.ladder_tiers = 1;
    config.tenants = 2;
    config.tenancy.enabled = true;
    config.tenancy.brownout.enabled = false;
    // Bounded sub-queues keep both lanes backlogged: without them the
    // rarely-served light lane would slowly monopolize the shared
    // storage and starve the heavy lane of queue slots.
    TenantPolicy heavy;
    heavy.weight = 10;
    heavy.max_queue = 16;
    TenantPolicy light;
    light.weight = 1;
    light.max_queue = 16;
    config.tenancy.tenants["tenant0"] = heavy;
    config.tenancy.tenants["tenant1"] = light;

    const SoakResult result = runServeSoak(config);
    const uint64_t heavy_ok =
        result.stats.by_tenant.at("tenant0").completed_ok;
    const uint64_t light_ok =
        result.stats.by_tenant.at("tenant1").completed_ok;
    ASSERT_GT(heavy_ok, 0u);
    ASSERT_GT(light_ok, 0u);
    const double share =
        static_cast<double>(heavy_ok) /
        static_cast<double>(heavy_ok + light_ok);
    const double expected = 10.0 / 11.0;
    EXPECT_GE(share, expected * 0.95)
        << "heavy=" << heavy_ok << " light=" << light_ok;
    EXPECT_LE(share, expected * 1.05)
        << "heavy=" << heavy_ok << " light=" << light_ok;
}

TEST(TenancySoak, NoisyNeighborBrownoutHitsAggressorFirst)
{
    SoakConfig config = tenancySoak(5);
    config.duration_s = 1.0;
    const SoakResult result = runServeSoak(config);
    const TenantStats &aggressor =
        result.stats.by_tenant.at("aggressor");
    const TenantStats &victim = result.stats.by_tenant.at("victim");
    EXPECT_GT(aggressor.brownout_steps, 0u)
        << "the over-share tenant must brown out under pressure";
    EXPECT_EQ(victim.brownout_steps, 0u)
        << "the in-quota victim must not brown out";
    EXPECT_GT(victim.completed_ok, 0u);
}

TEST(TenancySoak, DisabledTenancyKeepsTheDefaultPath)
{
    // Tenancy off: no tenant table, no quota buckets, and the log's
    // scheduling lines are the single-queue ones (no DWRR dispatch
    // entries) — the pre-tenancy path, still deterministic.
    SoakConfig config;
    config.seed = 99;
    config.duration_s = 0.25;
    config.ladder_tiers = 2;
    const SoakResult first = runServeSoak(config);
    const SoakResult second = runServeSoak(config);
    EXPECT_EQ(first.decision_hash, second.decision_hash);
    EXPECT_EQ(first.stats.tenant_count, 0u);
    EXPECT_EQ(first.stats.rejected_rate, 0u);
    EXPECT_EQ(first.stats.brownout_steps, 0u);
    for (const std::string &line : first.decision_log)
        EXPECT_EQ(line.find(" dispatch seq="), std::string::npos)
            << "disabled tenancy must not take the DWRR path: " << line;
    // Terminal accounting still labels the default tenant.
    ASSERT_EQ(first.stats.by_tenant.count("default"), 1u);
    EXPECT_EQ(first.stats.by_tenant.at("default").completed_ok,
              first.stats.completed_ok);
}

} // namespace
} // namespace mixgemm
