/**
 * @file
 * Tests for src/dnn: every model's layer table must reproduce the
 * published MAC counts within tolerance, layer shapes must chain
 * (spatial sizes consistent), and network timing must behave
 * (narrower configs faster, first/last-layer 8-bit policy honoured).
 */

#include <gtest/gtest.h>

#include "dnn/models.h"
#include "dnn/network_timing.h"
#include "soc/soc_config.h"

namespace mixgemm
{
namespace
{

struct MacsCase
{
    const char *model;
    double expected_gmacs;
    double tolerance; ///< relative
};

class ModelMacsTest : public ::testing::TestWithParam<MacsCase>
{
};

ModelSpec
byName(const std::string &name)
{
    for (auto &m : allModels())
        if (m.name == name)
            return m;
    throw std::runtime_error("unknown model " + name);
}

TEST_P(ModelMacsTest, MatchesPublishedMacCount)
{
    const auto p = GetParam();
    const auto model = byName(p.model);
    const double gmacs =
        static_cast<double>(model.totalMacs()) / 1e9;
    EXPECT_NEAR(gmacs, p.expected_gmacs,
                p.expected_gmacs * p.tolerance)
        << model.name << " computed " << gmacs << " GMACs";
}

INSTANTIATE_TEST_SUITE_P(
    PublishedCounts, ModelMacsTest,
    ::testing::Values(MacsCase{"AlexNet", 0.714, 0.05},
                      MacsCase{"VGG-16", 15.47, 0.05},
                      MacsCase{"ResNet-18", 1.82, 0.05},
                      MacsCase{"MobileNet-V1", 0.568, 0.06},
                      MacsCase{"RegNet-X-400MF", 0.41, 0.10},
                      MacsCase{"EfficientNet-B0", 0.39, 0.10}),
    [](const auto &info) {
        std::string n = info.param.model;
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(Models, SixModelsWithMarkedEnds)
{
    const auto models = allModels();
    ASSERT_EQ(models.size(), 6u);
    for (const auto &m : models) {
        EXPECT_GE(m.layers.size(), 8u) << m.name;
        EXPECT_TRUE(m.layers.front().is_first) << m.name;
        EXPECT_TRUE(m.layers.back().is_last) << m.name;
        unsigned firsts = 0;
        unsigned lasts = 0;
        for (const auto &l : m.layers) {
            firsts += l.is_first;
            lasts += l.is_last;
            EXPECT_NO_THROW(l.conv.validate()) << m.name << " " << l.name;
            EXPECT_GT(l.macs(), 0u) << m.name << " " << l.name;
        }
        EXPECT_EQ(firsts, 1u);
        EXPECT_EQ(lasts, 1u);
    }
}

TEST(Models, DepthwiseLayersAreGrouped)
{
    const auto mb = byName("MobileNet-V1");
    unsigned depthwise = 0;
    for (const auto &l : mb.layers)
        depthwise += l.conv.groups > 1;
    EXPECT_EQ(depthwise, 13u);
}

TEST(Models, KnownLayerShapes)
{
    const auto alex = byName("AlexNet");
    EXPECT_EQ(alex.layers[0].conv.outH(), 55u);
    EXPECT_EQ(alex.layers[1].conv.in_h, 27u);
    const auto res = byName("ResNet-18");
    EXPECT_EQ(res.layers[0].conv.outH(), 112u);
    const auto eff = byName("EfficientNet-B0");
    EXPECT_EQ(eff.layers.back().conv.in_c, 1280u);
}

TEST(NetworkTiming, NarrowerConfigsRunFaster)
{
    GemmTimingModel timing(SoCConfig::sargantana());
    const auto model = byName("ResNet-18");
    const auto t88 =
        timeNetworkMixGemm(model, timing, {8, 8, true, true});
    const auto t44 =
        timeNetworkMixGemm(model, timing, {4, 4, true, true});
    const auto t22 =
        timeNetworkMixGemm(model, timing, {2, 2, true, true});
    EXPECT_LT(t44.total_cycles, t88.total_cycles);
    EXPECT_LT(t22.total_cycles, t44.total_cycles);
    EXPECT_GT(t88.gops, 1.0);
    EXPECT_GT(t22.gops, t88.gops);
}

TEST(NetworkTiming, CnnThroughputInPaperBand)
{
    // Section IV: Mix-GEMM reaches 4.8-13.6 GOPS across the six CNNs.
    GemmTimingModel timing(SoCConfig::sargantana());
    for (const auto &model : allModels()) {
        const auto t88 =
            timeNetworkMixGemm(model, timing, {8, 8, true, true});
        const auto t22 =
            timeNetworkMixGemm(model, timing, {2, 2, true, true});
        EXPECT_GT(t88.gops, 2.5) << model.name;
        EXPECT_LT(t88.gops, 9.0) << model.name;
        EXPECT_GT(t22.gops, 6.0) << model.name;
        EXPECT_LT(t22.gops, 18.0) << model.name;
    }
}

TEST(NetworkTiming, SpeedupOverDgemmBaseline)
{
    // Fig. 7: Mix-GEMM outperforms the FP32/FP64 baseline by 5.3x-15.1x.
    GemmTimingModel timing(SoCConfig::sargantana());
    const auto model = byName("VGG-16");
    const auto dgemm = timeNetworkDgemm(model, timing);
    const auto mix22 =
        timeNetworkMixGemm(model, timing, {2, 2, true, true});
    const auto mix88 =
        timeNetworkMixGemm(model, timing, {8, 8, true, true});
    const double up88 = static_cast<double>(dgemm.total_cycles) /
                        mix88.total_cycles;
    const double up22 = static_cast<double>(dgemm.total_cycles) /
                        mix22.total_cycles;
    EXPECT_GT(up88, 4.0);
    EXPECT_GT(up22, up88);
    EXPECT_LT(up22, 35.0);
}

TEST(NetworkTiming, FirstLastLayersStayAt8Bit)
{
    GemmTimingModel timing(SoCConfig::sargantana());
    const auto model = byName("AlexNet");
    // With the policy on, a2-w2 inner layers but 8-bit ends: the first
    // layer's cycles must match the pure-8-bit run's first layer.
    const auto t22 =
        timeNetworkMixGemm(model, timing, {2, 2, true, true}, true);
    const auto t88 =
        timeNetworkMixGemm(model, timing, {8, 8, true, true}, true);
    EXPECT_EQ(t22.layers.front().cycles, t88.layers.front().cycles);
    EXPECT_EQ(t22.layers.back().cycles, t88.layers.back().cycles);
    // With the policy off they differ.
    const auto t22_all =
        timeNetworkMixGemm(model, timing, {2, 2, true, true}, false);
    EXPECT_LT(t22_all.layers.front().cycles,
              t22.layers.front().cycles);
}

TEST(NetworkTiming, LatencyConsistentWithCycles)
{
    GemmTimingModel timing(SoCConfig::sargantana());
    const auto t = timeNetworkMixGemm(byName("AlexNet"), timing,
                                      {8, 8, true, true});
    EXPECT_NEAR(t.latency_ms,
                static_cast<double>(t.total_cycles) / 1.2e6, 1e-9);
    uint64_t sum = 0;
    for (const auto &l : t.layers)
        sum += l.cycles;
    EXPECT_EQ(sum, t.total_cycles);
}

} // namespace
} // namespace mixgemm
