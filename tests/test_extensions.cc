/**
 * @file
 * Tests for the scalability and mixed-precision extensions: the
 * SIMD-widened μ-engine timing, the multi-core scaling model, and the
 * greedy per-layer mixed-precision optimizer.
 */

#include <gtest/gtest.h>

#include <set>

#include "accuracy/qat_database.h"
#include "common/logging.h"
#include "dnn/mixed_precision.h"
#include "dnn/network_timing.h"
#include "sim/gemm_timing.h"
#include "sim/multicore.h"
#include "sim/uengine_timing.h"
#include "soc/soc_config.h"

namespace mixgemm
{
namespace
{

// ---------------------------------------------------------------------
// SIMD-widened μ-engine
// ---------------------------------------------------------------------

TEST(SimdEngine, WiderEnginesDrainFaster)
{
    const auto g = computeBsGeometry({8, 8, true, true});
    uint64_t busy[3];
    unsigned idx = 0;
    for (const unsigned mult : {1u, 2u, 4u}) {
        UEngineConfig cfg;
        cfg.multipliers = mult;
        UEngineTiming eng(g, cfg);
        uint64_t t = 0;
        for (unsigned i = 0; i < 64; ++i)
            t = eng.issueIp(t) + 1;
        busy[idx++] = eng.busyCycles();
    }
    EXPECT_EQ(busy[0], 2 * busy[1]);
    EXPECT_EQ(busy[1], 2 * busy[2]);
}

TEST(SimdEngine, GemmThroughputScalesThenSaturates)
{
    const auto g = computeBsGeometry({8, 8, true, true});
    double gops[3];
    unsigned idx = 0;
    for (const unsigned mult : {1u, 2u, 4u}) {
        SoCConfig soc = SoCConfig::sargantana();
        soc.uengine.multipliers = mult;
        const GemmTimingModel model(soc);
        gops[idx++] = model.mixGemm(256, 256, 256, g).gops;
    }
    EXPECT_GT(gops[1], gops[0] * 1.3) << "2x engine must help a lot";
    EXPECT_GE(gops[2], gops[1]) << "4x never slower";
    // Saturation: the scalar core issues at most one bs.ip per cycle.
    EXPECT_LT(gops[2], gops[0] * 4.0);
}

TEST(SimdEngine, RejectsZeroMultipliers)
{
    const auto g = computeBsGeometry({8, 8, true, true});
    UEngineConfig cfg;
    cfg.multipliers = 0;
    EXPECT_THROW(UEngineTiming(g, cfg), FatalError);
}

// ---------------------------------------------------------------------
// Multi-core model
// ---------------------------------------------------------------------

TEST(Multicore, NearLinearScaling)
{
    const auto g = computeBsGeometry({8, 8, true, true});
    const SoCConfig soc = SoCConfig::sargantana();
    double prev_gops = 0.0;
    for (const unsigned cores : {1u, 2u, 4u, 8u}) {
        const auto t = multicoreMixGemm(512, 512, 512, g, soc, cores);
        EXPECT_GT(t.gops, prev_gops) << cores << " cores";
        EXPECT_LE(t.efficiency, 1.02) << cores << " cores";
        if (cores > 1) {
            EXPECT_GT(t.efficiency, 0.80)
                << "the paper claims near-constant per-core "
                   "performance";
        }
        prev_gops = t.gops;
    }
}

TEST(Multicore, SingleCoreMatchesHybridModel)
{
    const auto g = computeBsGeometry({4, 4, true, true});
    const SoCConfig soc = SoCConfig::sargantana();
    const auto multi = multicoreMixGemm(256, 256, 256, g, soc, 1);
    const GemmTimingModel single(soc);
    EXPECT_EQ(multi.cycles, single.mixGemm(256, 256, 256, g).cycles);
    EXPECT_DOUBLE_EQ(multi.speedup, 1.0);
}

TEST(Multicore, RejectsZeroCores)
{
    const auto g = computeBsGeometry({8, 8, true, true});
    EXPECT_THROW(
        multicoreMixGemm(64, 64, 64, g, SoCConfig::sargantana(), 0),
        FatalError);
}

// ---------------------------------------------------------------------
// Per-layer mixed precision
// ---------------------------------------------------------------------

TEST(MixedPrecision, RespectsAccuracyBudget)
{
    const GemmTimingModel timing(SoCConfig::sargantana());
    const auto &db = AccuracyDatabase::paperQat();
    const auto model = resNet18();
    for (const double budget : {0.3, 1.0, 5.0}) {
        MixedPrecisionOptions opt;
        opt.max_loss = budget;
        const auto plan = optimizeMixedPrecision(model, timing, db, opt);
        EXPECT_LE(plan.estimated_loss, budget + 1e-9);
        EXPECT_EQ(plan.layer_configs.size(), model.layers.size());
        EXPECT_NEAR(plan.estimated_loss,
                    estimatePlanLoss(model, plan.layer_configs, db),
                    1e-9);
    }
}

TEST(MixedPrecision, LargerBudgetNeverSlower)
{
    const GemmTimingModel timing(SoCConfig::sargantana());
    const auto &db = AccuracyDatabase::paperQat();
    const auto model = vgg16();
    uint64_t prev = ~uint64_t{0};
    for (const double budget : {0.2, 0.5, 1.0, 2.0, 4.0}) {
        MixedPrecisionOptions opt;
        opt.max_loss = budget;
        const auto plan = optimizeMixedPrecision(model, timing, db, opt);
        EXPECT_LE(plan.total_cycles, prev) << "budget " << budget;
        prev = plan.total_cycles;
    }
}

TEST(MixedPrecision, BeatsOrMatchesBestUniform)
{
    const GemmTimingModel timing(SoCConfig::sargantana());
    const auto &db = AccuracyDatabase::paperQat();
    const auto model = alexNet();
    MixedPrecisionOptions opt;
    opt.max_loss = 0.5;
    const auto plan = optimizeMixedPrecision(model, timing, db, opt);

    uint64_t best_uniform = ~uint64_t{0};
    for (const auto &cfg : allSupportedConfigs()) {
        std::vector<DataSizeConfig> uniform(model.layers.size(), cfg);
        for (size_t i = 0; i < model.layers.size(); ++i)
            if (model.layers[i].is_first || model.layers[i].is_last)
                uniform[i] = DataSizeConfig{8, 8, true, true};
        if (estimatePlanLoss(model, uniform, db) > opt.max_loss)
            continue;
        best_uniform = std::min(best_uniform,
                                planCycles(model, timing, uniform));
    }
    EXPECT_LE(plan.total_cycles, best_uniform);
}

TEST(MixedPrecision, PinsFirstAndLastLayers)
{
    const GemmTimingModel timing(SoCConfig::sargantana());
    const auto &db = AccuracyDatabase::paperQat();
    const auto model = mobileNetV1();
    MixedPrecisionOptions opt;
    opt.max_loss = 10.0;
    const auto plan = optimizeMixedPrecision(model, timing, db, opt);
    EXPECT_EQ(plan.layer_configs.front().bwa, 8u);
    EXPECT_EQ(plan.layer_configs.front().bwb, 8u);
    EXPECT_EQ(plan.layer_configs.back().bwa, 8u);
    EXPECT_EQ(plan.layer_configs.back().bwb, 8u);
    // With a generous budget, inner layers get downgraded.
    std::set<std::string> names;
    for (const auto &c : plan.layer_configs)
        names.insert(c.name());
    EXPECT_GE(names.size(), 2u);
}

TEST(MixedPrecision, RespectsMinBits)
{
    const GemmTimingModel timing(SoCConfig::sargantana());
    const auto &db = AccuracyDatabase::paperQat();
    const auto model = alexNet();
    MixedPrecisionOptions opt;
    opt.max_loss = 50.0;
    opt.min_bits = 4;
    const auto plan = optimizeMixedPrecision(model, timing, db, opt);
    for (const auto &c : plan.layer_configs) {
        EXPECT_GE(c.bwa, 4u);
        EXPECT_GE(c.bwb, 4u);
    }
}

TEST(MixedPrecision, ValidationErrors)
{
    const GemmTimingModel timing(SoCConfig::sargantana());
    const auto &db = AccuracyDatabase::paperQat();
    const auto model = alexNet();
    EXPECT_THROW(estimatePlanLoss(model, {}, db), FatalError);
    EXPECT_THROW(planCycles(model, timing, {}), FatalError);
    MixedPrecisionOptions opt;
    opt.min_bits = 1;
    EXPECT_THROW(optimizeMixedPrecision(model, timing, db, opt),
                 FatalError);
    EXPECT_THROW(db.diagonalLoss("AlexNet", 9), FatalError);
}

} // namespace
} // namespace mixgemm
