/**
 * @file
 * Tests for the depthwise-separable path: the DepthwiseConv2d layer's
 * gradients and QAT behaviour, the MobileNet-style demo network, and
 * the depthwise runtime node (backend agreement, serialization,
 * direct-conv equivalence).
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "nn/dataset.h"
#include "nn/qat.h"
#include "runtime/backend.h"
#include "runtime/ptq.h"
#include "runtime/qgraph.h"
#include "tensor/conv.h"

namespace mixgemm
{
namespace
{

TEST(DepthwiseLayer, MatchesDirectGroupedConvolution)
{
    Rng rng(17);
    const unsigned ch = 4;
    DepthwiseConv2d layer(ch, 3, 1, QatConfig{}, rng);
    Tensor<double> x({1, ch, 6, 6});
    for (auto &v : x.flat())
        v = rng.normal();
    const auto out = layer.forward(x, false);

    // Reference: directConv with groups == channels.
    ConvSpec spec;
    spec.in_c = spec.out_c = spec.groups = ch;
    spec.in_h = spec.in_w = 6;
    spec.kh = spec.kw = 3;
    spec.pad = 1;
    const auto ref = directConv(x, layer.weights(), spec);
    ASSERT_EQ(out.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i)
        ASSERT_NEAR(out[i], ref[i] + layer.bias()[i / 36], 1e-12);
}

TEST(DepthwiseLayer, InputGradientNumericallyCorrect)
{
    Rng rng(18);
    DepthwiseConv2d layer(3, 3, 1, QatConfig{}, rng);
    Tensor<double> x({1, 3, 5, 5});
    for (auto &v : x.flat())
        v = rng.normal();
    auto out = layer.forward(x, false);
    Tensor<double> proj(out.shape());
    for (auto &v : proj.flat())
        v = rng.uniformReal(-1.0, 1.0);
    const auto analytic = layer.backward(proj);

    const double eps = 1e-5;
    for (size_t i = 0; i < x.size(); i += 11) {
        Tensor<double> xp = x;
        xp[i] += eps;
        Tensor<double> xm = x;
        xm[i] -= eps;
        const auto op = layer.forward(xp, false);
        const auto om = layer.forward(xm, false);
        double lp = 0.0;
        double lm = 0.0;
        for (size_t j = 0; j < op.size(); ++j) {
            lp += proj[j] * op[j];
            lm += proj[j] * om[j];
        }
        EXPECT_NEAR(analytic[i], (lp - lm) / (2 * eps), 1e-6);
    }
}

TEST(DepthwiseLayer, RejectsChannelMismatch)
{
    Rng rng(19);
    DepthwiseConv2d layer(4, 3, 1, QatConfig{}, rng);
    Tensor<double> x({1, 3, 5, 5});
    EXPECT_THROW(layer.forward(x, false), FatalError);
}

/** One trained depthwise QAT network, shared across tests. */
struct DwFixture
{
    PatternDataset train{480, 123};
    PatternDataset test{160, 777};
    Network net = makeDepthwiseCnn(QatConfig{true, 4, 4});
    double acc = 0.0;

    DwFixture()
    {
        TrainConfig tc;
        ::mixgemm::train(net, train, tc);
        acc = evaluate(net, test);
    }
};

DwFixture &
dw()
{
    static DwFixture f;
    return f;
}

TEST(DepthwiseNetwork, LearnsTheTaskUnderQat)
{
    EXPECT_GT(dw().acc, 0.80);
}

TEST(DepthwiseNetwork, ExportsAndBackendsAgree)
{
    const auto graph = QuantizedGraph::fromNetwork(dw().net);
    // Node 3 is the depthwise conv.
    ASSERT_EQ(graph.nodes()[3].kind, QNode::Kind::kDepthwise);
    EXPECT_EQ(graph.nodes()[3].spec.groups, 8u);

    NaiveBackend naive;
    MixGemmBackend mix;
    for (size_t i = 0; i < 12; ++i) {
        const auto &img = dw().test.samples()[i].image;
        const auto ln = graph.run(img, naive);
        const auto lm = graph.run(img, mix);
        for (size_t j = 0; j < ln.size(); ++j)
            ASSERT_DOUBLE_EQ(ln[j], lm[j]);
    }
}

TEST(DepthwiseNetwork, DeployedAccuracyTracksQat)
{
    const auto graph = QuantizedGraph::fromNetwork(dw().net);
    MixGemmBackend mix;
    EXPECT_NEAR(graph.evaluate(dw().test, mix), dw().acc, 0.08);
}

TEST(DepthwiseNetwork, SerializationRoundTrip)
{
    const auto graph = QuantizedGraph::fromNetwork(dw().net);
    const auto back = QuantizedGraph::deserialize(graph.serialize());
    ASSERT_EQ(back.nodes().size(), graph.nodes().size());
    EXPECT_EQ(back.nodes()[3].kind, QNode::Kind::kDepthwise);
    EXPECT_EQ(back.nodes()[3].spec.groups, 8u);
    NaiveBackend backend;
    for (size_t i = 0; i < 6; ++i) {
        const auto &img = dw().test.samples()[i].image;
        const auto la = graph.run(img, backend);
        const auto lb = back.run(img, backend);
        for (size_t j = 0; j < la.size(); ++j)
            ASSERT_DOUBLE_EQ(la[j], lb[j]);
    }
}

TEST(DepthwiseNetwork, PtqPipelineSupportsDepthwise)
{
    PatternDataset calib(64, 999);
    Network float_net = makeDepthwiseCnn(QatConfig{false, 8, 8});
    TrainConfig tc;
    train(float_net, dw().train, tc);
    const double float_acc = evaluate(float_net, dw().test);
    ASSERT_GT(float_acc, 0.80);
    const auto graph = buildPtqGraph(float_net, calib);
    NaiveBackend backend;
    EXPECT_GT(graph.evaluate(dw().test, backend), float_acc - 0.06);
}

TEST(DepthwiseNetwork, WarmStartCopiesDepthwiseParameters)
{
    Network a = makeDepthwiseCnn(QatConfig{true, 4, 4}, 1);
    Network b = makeDepthwiseCnn(QatConfig{true, 2, 2}, 2);
    copyParameters(a, b);
    const auto *da =
        dynamic_cast<const DepthwiseConv2d *>(a.layers()[3].get());
    const auto *db =
        dynamic_cast<const DepthwiseConv2d *>(b.layers()[3].get());
    ASSERT_NE(da, nullptr);
    ASSERT_NE(db, nullptr);
    for (size_t i = 0; i < da->weights().size(); ++i)
        ASSERT_DOUBLE_EQ(da->weights()[i], db->weights()[i]);
}

} // namespace
} // namespace mixgemm
