/**
 * @file
 * Tests for the QLinear asymmetric/per-channel GEMM lowering: the
 * zero-point expansion must be exact against a direct
 * (qa - za)(qb - zb) computation, dequantized results must approximate
 * the float product within quantization-error bounds, and the naive
 * and Mix-GEMM backends must agree bit-exactly — including unsigned
 * μ-engine configurations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "gemm/reference.h"
#include "quant/calibration.h"
#include "runtime/qlinear.h"

namespace mixgemm
{
namespace
{

/** Direct evaluation of sum_k (qa - za)(qb - zb). */
std::vector<int64_t>
directAsymmetric(std::span<const int32_t> a, std::span<const int32_t> b,
                 uint64_t m, uint64_t n, uint64_t k, int64_t za,
                 int64_t zb)
{
    std::vector<int64_t> c(m * n, 0);
    for (uint64_t i = 0; i < m; ++i)
        for (uint64_t l = 0; l < k; ++l)
            for (uint64_t j = 0; j < n; ++j)
                c[i * n + j] += (a[i * k + l] - za) * (b[l * n + j] - zb);
    return c;
}

struct QlinearCase
{
    unsigned a_bits;
    unsigned b_bits;
    bool a_signed;
    bool b_signed;
    int32_t za;
    int32_t zb;
    const char *label;
};

class QlinearGemmTest : public ::testing::TestWithParam<QlinearCase>
{
};

TEST_P(QlinearGemmTest, ZeroPointExpansionExact)
{
    const auto p = GetParam();
    const uint64_t m = 9, n = 11, k = 40;
    Rng rng(100 + p.a_bits + p.b_bits);
    QuantParams ap;
    ap.bits = p.a_bits;
    ap.is_signed = p.a_signed;
    ap.zero_point = p.za;
    QuantParams bp;
    bp.bits = p.b_bits;
    bp.is_signed = p.b_signed;
    bp.zero_point = p.zb;

    std::vector<int32_t> a(m * k);
    std::vector<int32_t> b(k * n);
    for (auto &v : a)
        v = static_cast<int32_t>(rng.uniformInt(ap.qmin(), ap.qmax()));
    for (auto &v : b)
        v = static_cast<int32_t>(rng.uniformInt(bp.qmin(), bp.qmax()));

    const auto expected =
        directAsymmetric(a, b, m, n, k, p.za, p.zb);

    NaiveBackend naive;
    MixGemmBackend mix;
    const auto c_naive = qlinearGemm(a, b, m, n, k, ap, bp, naive);
    const auto c_mix = qlinearGemm(a, b, m, n, k, ap, bp, mix);
    for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(c_naive[i], expected[i]) << p.label << " elem " << i;
        ASSERT_EQ(c_mix[i], expected[i]) << p.label << " elem " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, QlinearGemmTest,
    ::testing::Values(
        QlinearCase{8, 8, true, true, 0, 0, "symmetric_s8"},
        QlinearCase{8, 8, false, true, 128, 0, "uint8_act"},
        QlinearCase{8, 8, false, false, 128, 100, "uint8_both"},
        QlinearCase{4, 4, false, true, 8, 0, "uint4_act"},
        QlinearCase{6, 3, false, true, 31, 0, "u6_s3_mixed"},
        QlinearCase{2, 2, false, false, 2, 1, "uint2_both"}),
    [](const auto &info) { return info.param.label; });

TEST(QlinearGemm, NonzeroZeroPointExactAcrossPaddedTailGroups)
{
    // The compressed format pads partial accumulation groups with the
    // integer code 0 (not the zero-point code). This is only correct if
    // the zero-point expansion stays exact when k is NOT a multiple of
    // the group extent — the padded positions must contribute nothing.
    // Sweep signed and unsigned geometries with aggressive zero points
    // and k values that straddle group boundaries.
    struct Case
    {
        unsigned bits;
        bool is_signed;
        int32_t za, zb;
    };
    for (const auto &c : {Case{8, true, -37, 55}, Case{8, false, 128, 3},
                          Case{5, true, -7, 9}, Case{4, false, 8, 5}}) {
        const auto probe = computeBsGeometry(
            {c.bits, c.bits, c.is_signed, c.is_signed});
        for (const uint64_t k :
             {uint64_t{1}, uint64_t{probe.group_extent - 1},
              uint64_t{probe.group_extent + 1},
              uint64_t{2 * probe.group_extent + 3}}) {
            const uint64_t m = 6, n = 5;
            Rng rng(700 + c.bits + k);
            QuantParams ap;
            ap.bits = c.bits;
            ap.is_signed = c.is_signed;
            ap.zero_point = c.za;
            QuantParams bp;
            bp.bits = c.bits;
            bp.is_signed = c.is_signed;
            bp.zero_point = c.zb;
            std::vector<int32_t> a(m * k);
            std::vector<int32_t> b(k * n);
            for (auto &v : a)
                v = static_cast<int32_t>(
                    rng.uniformInt(ap.qmin(), ap.qmax()));
            for (auto &v : b)
                v = static_cast<int32_t>(
                    rng.uniformInt(bp.qmin(), bp.qmax()));
            const auto expected =
                directAsymmetric(a, b, m, n, k, c.za, c.zb);
            MixGemmBackend mix;
            const auto got = qlinearGemm(a, b, m, n, k, ap, bp, mix);
            for (size_t i = 0; i < expected.size(); ++i)
                ASSERT_EQ(got[i], expected[i])
                    << "bits=" << c.bits << " signed=" << c.is_signed
                    << " k=" << k << " elem " << i;
        }
    }
}

TEST(QlinearGemm, ThreadedBackendBitwiseIdentical)
{
    // The whole-network path: a multi-threaded Mix-GEMM backend (GEMM
    // tiles + parallel zero-point corrections) must be bit-identical to
    // the serial backend.
    const uint64_t m = 45, n = 38, k = 70;
    Rng rng(900);
    QuantParams ap;
    ap.bits = 8;
    ap.is_signed = false;
    ap.zero_point = 117;
    QuantParams bp;
    bp.bits = 8;
    bp.is_signed = true;
    bp.zero_point = -19;
    std::vector<int32_t> a(m * k);
    std::vector<int32_t> b(k * n);
    for (auto &v : a)
        v = static_cast<int32_t>(rng.uniformInt(ap.qmin(), ap.qmax()));
    for (auto &v : b)
        v = static_cast<int32_t>(rng.uniformInt(bp.qmin(), bp.qmax()));

    MixGemmBackend serial(1);
    MixGemmBackend threaded(4);
    EXPECT_EQ(serial.threads(), 1u);
    EXPECT_EQ(threaded.threads(), 4u);
    const auto c1 = qlinearGemm(a, b, m, n, k, ap, bp, serial);
    const auto c4 = qlinearGemm(a, b, m, n, k, ap, bp, threaded);
    ASSERT_EQ(c1, c4);
    const auto expected = directAsymmetric(a, b, m, n, k,
                                           ap.zero_point, bp.zero_point);
    ASSERT_EQ(c4, expected);

    // Per-channel variant through the same threaded plumbing.
    std::vector<QuantParams> bps(n, bp);
    for (uint64_t j = 0; j < n; ++j)
        bps[j].zero_point = static_cast<int32_t>(j % 5) - 2;
    const auto pc1 =
        qlinearGemmPerChannel(a, b, m, n, k, ap, bps, serial);
    const auto pc4 =
        qlinearGemmPerChannel(a, b, m, n, k, ap, bps, threaded);
    ASSERT_EQ(pc1, pc4);
}

TEST(QlinearGemm, DequantizedResultApproximatesFloatProduct)
{
    const uint64_t m = 8, n = 8, k = 64;
    Rng rng(7);
    std::vector<double> a_f(m * k);
    std::vector<double> b_f(k * n);
    for (auto &v : a_f)
        v = std::abs(rng.normal()); // non-negative, like post-ReLU
    for (auto &v : b_f)
        v = rng.normal(0.0, 0.3);

    // Unsigned asymmetric activations, signed symmetric weights.
    QuantParams ap;
    ap.bits = 8;
    ap.is_signed = false;
    double amax = 0.0;
    for (const double v : a_f)
        amax = std::max(amax, v);
    ap.scale = amax / ap.qmax();
    ap.zero_point = 0;
    const auto bp = calibrateAbsmax(b_f, 8, true);

    const auto a_q = quantize(a_f, ap);
    const auto b_q = quantize(b_f, bp);

    MixGemmBackend mix;
    const auto c = qlinearGemm(a_q, b_q, m, n, k, ap, bp, mix);
    const auto c_f = referenceGemmDouble(a_f, b_f, m, n, k);
    // Error bound: k terms, each with quantization error <= sa*|b| +
    // sb*|a| + sa*sb (loose but sufficient).
    const double bound = k * (ap.scale * 1.2 + bp.scale * 4.0);
    for (size_t i = 0; i < c_f.size(); ++i)
        ASSERT_NEAR(ap.scale * bp.scale * static_cast<double>(c[i]),
                    c_f[i], bound)
            << "elem " << i;
}

TEST(QlinearGemm, RejectsMismatchedShapes)
{
    NaiveBackend naive;
    QuantParams p;
    const std::vector<int32_t> a(10, 0);
    const std::vector<int32_t> b(10, 0);
    EXPECT_THROW(qlinearGemm(a, b, 3, 3, 4, p, p, naive), FatalError);
}

TEST(QlinearPerChannel, MatchesPerChannelDirectComputation)
{
    const uint64_t m = 6, n = 4, k = 30;
    Rng rng(21);
    std::vector<double> a_f(m * k);
    std::vector<double> b_f(k * n);
    for (auto &v : a_f)
        v = rng.normal();
    for (auto &v : b_f)
        v = rng.normal();
    // Scale column j by wildly different factors to make per-channel
    // quantization matter.
    for (uint64_t l = 0; l < k; ++l)
        for (uint64_t j = 0; j < n; ++j)
            b_f[l * n + j] *= std::pow(10.0, static_cast<double>(j) - 1);

    const auto ap = calibrateAbsmax(a_f, 8, true);
    // Per-channel weight params.
    std::vector<QuantParams> bps;
    std::vector<int32_t> b_q(k * n);
    for (uint64_t j = 0; j < n; ++j) {
        std::vector<double> col(k);
        for (uint64_t l = 0; l < k; ++l)
            col[l] = b_f[l * n + j];
        const auto p = calibrateAbsmax(col, 4, true);
        bps.push_back(p);
        for (uint64_t l = 0; l < k; ++l)
            b_q[l * n + j] = quantize(col[l], p);
    }
    const auto a_q = quantize(a_f, ap);

    NaiveBackend naive;
    MixGemmBackend mix;
    const auto out_naive =
        qlinearGemmPerChannel(a_q, b_q, m, n, k, ap, bps, naive);
    const auto out_mix =
        qlinearGemmPerChannel(a_q, b_q, m, n, k, ap, bps, mix);
    const auto c_f = referenceGemmDouble(a_f, b_f, m, n, k);
    for (size_t i = 0; i < c_f.size(); ++i) {
        ASSERT_DOUBLE_EQ(out_naive[i], out_mix[i]);
        // 4-bit per-channel: generous bound scaled by column magnitude.
        const double col_scale = bps[i % n].scale;
        ASSERT_NEAR(out_naive[i], c_f[i],
                    k * (ap.scale * 8 * col_scale + col_scale * 4 +
                         ap.scale))
            << "elem " << i;
    }
}

TEST(QlinearPerChannel, PerChannelBeatsPerTensorOnSkewedWeights)
{
    // The reason the paper quantizes weights per-channel: one shared
    // scale wrecks small-magnitude channels.
    const uint64_t m = 4, n = 3, k = 32;
    Rng rng(33);
    std::vector<double> a_f(m * k);
    std::vector<double> b_f(k * n);
    for (auto &v : a_f)
        v = rng.normal();
    for (uint64_t l = 0; l < k; ++l) {
        b_f[l * n + 0] = rng.normal(0.0, 100.0);
        b_f[l * n + 1] = rng.normal(0.0, 1.0);
        b_f[l * n + 2] = rng.normal(0.0, 0.01);
    }
    const auto ap = calibrateAbsmax(a_f, 8, true);
    const auto a_q = quantize(a_f, ap);
    const auto c_f = referenceGemmDouble(a_f, b_f, m, n, k);

    NaiveBackend backend;
    // Per-tensor path.
    const auto bp_tensor = calibrateAbsmax(b_f, 4, true);
    const auto b_q_tensor = quantize(b_f, bp_tensor);
    const std::vector<QuantParams> bps_tensor(n, bp_tensor);
    const auto out_tensor = qlinearGemmPerChannel(
        a_q, b_q_tensor, m, n, k, ap, bps_tensor, backend);
    // Per-channel path.
    std::vector<QuantParams> bps;
    std::vector<int32_t> b_q(k * n);
    for (uint64_t j = 0; j < n; ++j) {
        std::vector<double> col(k);
        for (uint64_t l = 0; l < k; ++l)
            col[l] = b_f[l * n + j];
        const auto p = calibrateAbsmax(col, 4, true);
        bps.push_back(p);
        for (uint64_t l = 0; l < k; ++l)
            b_q[l * n + j] = quantize(col[l], p);
    }
    const auto out_channel =
        qlinearGemmPerChannel(a_q, b_q, m, n, k, ap, bps, backend);

    // Compare error on the small-magnitude column (j = 2).
    double err_tensor = 0.0;
    double err_channel = 0.0;
    for (uint64_t i = 0; i < m; ++i) {
        err_tensor += std::abs(out_tensor[i * n + 2] - c_f[i * n + 2]);
        err_channel += std::abs(out_channel[i * n + 2] - c_f[i * n + 2]);
    }
    // The shared activation-quantization error floors the gain; a 3x
    // improvement on the small channel is the robust expectation.
    EXPECT_LT(err_channel, err_tensor / 3)
        << "per-channel must be far more accurate on small channels";
}

TEST(QlinearPerChannel, RejectsMixedChannelDataSizes)
{
    NaiveBackend naive;
    QuantParams ap;
    std::vector<QuantParams> bps(2);
    bps[1].bits = 4;
    const std::vector<int32_t> a(4, 0);
    const std::vector<int32_t> b(4, 0);
    EXPECT_THROW(
        qlinearGemmPerChannel(a, b, 2, 2, 2, ap, bps, naive),
        FatalError);
}

} // namespace
} // namespace mixgemm
